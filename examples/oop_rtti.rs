//! The paper's Section 3 example: object-oriented C with subtype
//! polymorphism, dynamic dispatch, and checked downcasts. Shows how the
//! inference classifies every cast and which pointers carry RTTI.
//!
//! ```sh
//! cargo run -p ccured-examples --bin oop_rtti
//! ```

use ccured::Curer;
use ccured_rt::{ExecMode, Interp};

const PROGRAM: &str = r#"
extern int printf(char *fmt, ...);

struct Figure { double (*area)(struct Figure *obj); int kind; };
struct Circle { double (*area)(struct Figure *obj); int kind; int radius; };
struct Square { double (*area)(struct Figure *obj); int kind; int side; };

double circle_area(struct Figure *obj) {
    struct Circle *cir = (struct Circle *)obj;   /* checked downcast */
    return 3 * cir->radius * cir->radius;
}

double square_area(struct Figure *obj) {
    struct Square *sq = (struct Square *)obj;    /* checked downcast */
    return (double)(sq->side * sq->side);
}

int main(void) {
    struct Circle c;
    c.area = circle_area; c.kind = 1; c.radius = 2;
    struct Square s;
    s.area = square_area; s.kind = 2; s.side = 3;

    struct Figure *figs[2];
    figs[0] = (struct Figure *)&c;               /* upcasts */
    figs[1] = (struct Figure *)&s;

    double total = 0.0;
    for (int i = 0; i < 2; i++)
        total = total + figs[i]->area(figs[i]);  /* dynamic dispatch */
    printf("total area = %f\n", total);
    return total > 20.0 ? 0 : 1;
}
"#;

fn main() {
    let cured = Curer::new().cure_source(PROGRAM).expect("cure");
    let census = cured.report.census;
    println!(
        "cast census: {} upcasts, {} downcasts, {} bad",
        census.upcast, census.downcast, census.bad
    );
    let (sf, sq, w, rt) = cured.report.kind_counts.percentages();
    println!("pointer kinds: {sf}% SAFE, {sq}% SEQ, {w}% WILD, {rt}% RTTI");
    println!(
        "subtype hierarchy: {} nodes, depth {}",
        cured.hierarchy.len(),
        cured.hierarchy.max_depth()
    );

    let mut interp = Interp::new(&cured.program, ExecMode::cured(&cured));
    let exit = interp.run().expect("run");
    print!("{}", String::from_utf8_lossy(interp.output()));
    println!(
        "exit = {exit}; RTTI checks executed: {}",
        interp.counters.rtti_checks
    );

    // And the comparison the paper makes: the same program under the
    // original CCured (no physical subtyping, no RTTI) drowns in WILD.
    let old = ccured::Curer::original_ccured()
        .cure_source(PROGRAM)
        .expect("cure");
    let (_, _, w_old, _) = old.report.kind_counts.percentages();
    println!("under the original CCured this program is {w_old}% WILD");
}
