//! The paper's Section 4.2 example: `struct hostent` returned by the
//! (uncured) resolver library. The compatible SPLIT representation lets the
//! cured program read library data directly — no deep copies, no wrappers —
//! and this example also prints the `Meta(t)` metadata type the paper's
//! Figure 6 defines.
//!
//! ```sh
//! cargo run -p ccured-examples --bin split_hostent
//! ```

use ccured::split::SplitTypes;
use ccured::Curer;
use ccured_cil::types::{Type, TypeId};
use ccured_rt::{ExecMode, Interp};

const PROGRAM: &str = r#"
struct hostent {
    char *h_name;
    char **h_aliases;
    int h_addrtype;
};

extern struct hostent *gethostbyname(char *name);
extern int printf(char *fmt, ...);

int main(void) {
    struct hostent *h = gethostbyname("example.org");
    if (h == 0) return 1;
    printf("name: %s\n", h->h_name);
    for (int i = 0; i < 2; i++)
        printf("alias %d: %s\n", i, h->h_aliases[i]);
    printf("addrtype: %d\n", h->h_addrtype);
    return 0;
}
"#;

fn main() {
    let mut curer = Curer::new();
    curer.split_at_boundaries(true);
    let cured = curer.cure_source(PROGRAM).expect("cure");
    println!("split qualifiers: {}", cured.report.split_quals);

    // Show Meta(struct hostent) per Figure 6.
    let mut prog = cured.program.clone();
    let cid = prog.types.find_comp("hostent", false).expect("hostent");
    let t = prog.types.mk_comp(cid);
    let mut st = SplitTypes::new(&prog.types, &cured.solution);
    match st.meta_type(&mut prog.types, t) {
        Some(m) => {
            println!("Meta(struct hostent) exists:");
            if let Type::Comp(mc) = prog.types.get(m) {
                for f in &prog.types.comp(*mc).fields {
                    println!("  .{}: {}", f.name, prog.types.display(f.ty));
                }
            }
            let _ = TypeId(0);
        }
        None => println!("Meta(struct hostent) = void"),
    }

    let mut interp = Interp::new(&cured.program, ExecMode::cured(&cured));
    let exit = interp.run().expect("run");
    print!("{}", String::from_utf8_lossy(interp.output()));
    println!(
        "exit = {exit}; metadata operations: {}",
        interp.counters.meta_ops
    );
}
