//! Library wrappers (paper Section 4.1): the program calls `strcpy` and
//! `strchr`; CCured routes the calls through checked wrappers that strip
//! and rebuild fat pointers at the library boundary. The link audit shows
//! what would happen without them.
//!
//! ```sh
//! cargo run -p ccured-examples --bin wrapper_demo
//! ```

use ccured::Curer;
use ccured_rt::{ExecMode, Interp};

const PROGRAM: &str = r#"
extern int printf(char *fmt, ...);

int main(void) {
    char path[32];
    strcpy(path, "/usr/local/bin");
    char *slash = strchr(path + 1, '/');
    if (slash == 0) return 1;
    /* The pointer returned by the wrapper carries the buffer's bounds,
       so this write is checked against `path`, not blindly trusted. */
    slash[1] = 'X';
    printf("%s\n", path);
    return 0;
}
"#;

fn main() {
    // Without wrappers, the strict link audit refuses the program: its
    // pointers are fat (SEQ) and the raw library cannot receive them.
    let bare = format!(
        "extern char *strcpy(char *d, char *s);\n\
         extern char *strchr(char *s, int c);\n{PROGRAM}"
    );
    match Curer::new().strict_link(true).cure_source(&bare) {
        Err(e) => println!("without wrappers the link audit rejects it:\n{e}"),
        Ok(_) => println!("unexpectedly linked"),
    }

    // With the stdlib wrappers it links, runs, and is checked.
    let cured = Curer::new()
        .strict_link(true)
        .with_stdlib_wrappers()
        .cure_source(PROGRAM)
        .expect("wrapped program links");
    println!(
        "\nwith wrappers: {} applied ({} casts trusted)",
        cured.report.wrappers_applied.len(),
        cured.report.trusted_casts
    );
    let mut interp = Interp::new(&cured.program, ExecMode::cured(&cured));
    let exit = interp.run().expect("run");
    print!("{}", String::from_utf8_lossy(interp.output()));
    println!("exit = {exit}");

    // And the reason the wrappers exist: an overflowing strcpy is caught.
    let overflow = r#"
int main(void) {
    char small[4];
    strcpy(small, "far too long for four bytes");
    return 0;
}
"#;
    let cured = Curer::new()
        .with_stdlib_wrappers()
        .cure_source(overflow)
        .expect("cure");
    let mut interp = Interp::new(&cured.program, ExecMode::cured(&cured));
    match interp.run() {
        Err(e) => println!("\noverflowing strcpy: {e}"),
        Ok(x) => println!("\noverflowing strcpy unexpectedly exited {x}"),
    }
}
