/* Sequential pointer arithmetic: `p` is advanced through a heap buffer,
 * so inference makes it SEQ (bounds-carrying) while `buf` stays SAFE at
 * its uses. Good for watching CHECK_BOUNDS placement:
 *
 *   cargo run -p ccured-cli --bin ccured -- examples/c/seq_walk.c --report --run
 */
extern void *malloc(unsigned long n);

int main(void) {
    int *buf = (int *)malloc(16 * sizeof(int));
    for (int i = 0; i < 16; i++) buf[i] = i;
    int sum = 0;
    int *p = buf;
    for (int i = 0; i < 16; i++) {
        sum += *p;
        p = p + 1;
    }
    return sum == 120 ? 0 : 1;
}
