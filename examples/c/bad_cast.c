/* A pointer poisoned by a bad cast, for the blame explainer:
 *
 *   cargo run -p ccured-cli --bin ccured -- explain examples/c/bad_cast.c
 *
 * `q` (and everything it flows into) is WILD because of the (int *) cast
 * from a double*; `explain` walks the provenance back to that cast.
 */
extern int printf(char *fmt, ...);

double store;

int peek(double *d) {
    int *q;
    int *r;
    q = (int *)d;          /* the poisoning cast */
    r = q;                 /* WILD spreads by assignment */
    return *r;
}

int main(void) {
    store = 1.0;
    printf("low word = %d\n", peek(&store) != 0);
    return 0;
}
