/* A heap matrix behind an int** row table: the row table and each row are
 * indexed, so both levels become SEQ and every access is bounds-checked:
 *
 *   cargo run -p ccured-cli --bin ccured -- examples/c/matrix.c --report --run
 */
extern void *malloc(unsigned long n);

int main(void) {
    int **m = (int **)malloc(4 * sizeof(int *));
    for (int r = 0; r < 4; r++) {
        m[r] = (int *)malloc(4 * sizeof(int));
        for (int c = 0; c < 4; c++) m[r][c] = r * 4 + c;
    }
    int trace = 0;
    for (int r = 0; r < 4; r++) trace += m[r][r];
    return trace == 30 ? 0 : 1;
}
