/* A small Shape hierarchy with checked downcasts: the (struct Circle *)
 * and (struct Square *) casts from the common prefix type make the
 * pointers RTTI instead of WILD (the paper's ijpeg pattern):
 *
 *   cargo run -p ccured-cli --bin ccured -- examples/c/rtti_shapes.c --report --run
 */
struct Shape { int kind; int tag; };
struct Circle { int kind; int tag; int radius; };
struct Square { int kind; int tag; int side; };

int area(struct Shape *s) {
    if (s->kind == 1) {
        struct Circle *c = (struct Circle *)s;
        return 3 * c->radius * c->radius;
    }
    struct Square *q = (struct Square *)s;
    return q->side * q->side;
}

int main(void) {
    struct Circle c; c.kind = 1; c.tag = 0; c.radius = 2;
    struct Square q; q.kind = 2; q.tag = 0; q.side = 3;
    int total = area((struct Shape *)&c) + area((struct Shape *)&q);
    return total == 21 ? 0 : 1;
}
