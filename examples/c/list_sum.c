/* A heap-allocated singly linked list, built and summed through SAFE
 * pointers — the no-arithmetic, no-cast case where curing only needs
 * null checks:
 *
 *   cargo run -p ccured-cli --bin ccured -- examples/c/list_sum.c --report --run
 */
extern void *malloc(unsigned long n);

struct Cell {
    int value;
    struct Cell *next;
};

struct Cell *push(struct Cell *head, int value) {
    struct Cell *cell = (struct Cell *)malloc(sizeof(struct Cell));
    cell->value = value;
    cell->next = head;
    return cell;
}

int main(void) {
    struct Cell *head = 0;
    for (int i = 1; i <= 10; i++) head = push(head, i);
    int sum = 0;
    for (struct Cell *c = head; c != 0; c = c->next) sum += c->value;
    return sum == 55 ? 0 : 1;
}
