/* Standalone copy of the quickstart program, for driving the `ccured`
 * CLI directly:
 *
 *   cargo run -p ccured-cli --bin ccured -- examples/c/quickstart.c --report --run
 */
extern int printf(char *fmt, ...);

int sum(int *a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += a[i];
    return s;
}

int main(void) {
    int data[8];
    for (int i = 0; i < 8; i++) data[i] = i * i;
    printf("sum = %d\n", sum(data, 8));
    return 0;
}
