//! The bug classes the paper reports finding "simply by running the
//! instrumented programs": array bounds violations in Spec95, a printf
//! passed the wrong argument type, and a stack pointer escaping its frame.
//! Each exhibit runs in plain C (silent corruption or crash) and then
//! cured (precise check failure).
//!
//! ```sh
//! cargo run -p ccured-examples --bin bug_museum
//! ```

use ccured::Curer;
use ccured_rt::{ExecMode, Interp, RtError};

struct Exhibit {
    name: &'static str,
    paper: &'static str,
    source: &'static str,
}

const EXHIBITS: &[Exhibit] = &[
    Exhibit {
        name: "array bounds violation",
        paper: "\"we discovered a number of bugs in these benchmarks, including several array bounds violations\"",
        source: r#"
struct Table { int data[8]; int checksum; };
int main(void) {
    struct Table t;
    t.checksum = 999;
    /* off-by-one: writes data[8], silently clobbering the checksum */
    for (int i = 0; i <= 8; i++) t.data[i] = i;
    return t.checksum;
}
"#,
    },
    Exhibit {
        name: "printf type confusion",
        paper: "\"a printf that is passed a FILE* when expecting a char*\"",
        source: r#"
extern int printf(char *fmt, ...);
int main(void) {
    int fd = 42;
    printf("opened %s\n", fd); /* %s expects a string */
    return 0;
}
"#,
    },
    Exhibit {
        name: "stack pointer escape",
        paper: "\"moving to the heap some local variables whose address is itself stored into the heap\"",
        source: r#"
extern void *malloc(unsigned long n);
int main(void) {
    int **cell = (int **)malloc(sizeof(int *));
    int local = 7;
    *cell = &local; /* a stack address escapes into the heap */
    return **cell;
}
"#,
    },
];

fn run(src: &str, cured: bool) -> (Result<i64, RtError>, Vec<u8>) {
    if cured {
        let c = Curer::new().cure_source(src).expect("cure");
        let mut i = Interp::new(&c.program, ExecMode::cured(&c));
        let r = i.run();
        (r, i.output().to_vec())
    } else {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let p = ccured_cil::lower_translation_unit(&tu).expect("lower");
        let mut i = Interp::new(&p, ExecMode::Original);
        let r = i.run();
        (r, i.output().to_vec())
    }
}

fn main() {
    for e in EXHIBITS {
        println!("== {} ==", e.name);
        println!("   paper: {}", e.paper);
        let (orig, _) = run(e.source, false);
        match &orig {
            Ok(code) => {
                println!("   plain C: ran to completion, exit {code} (corruption unnoticed)")
            }
            Err(err) => println!("   plain C: {err}"),
        }
        let (cured, _) = run(e.source, true);
        match &cured {
            Err(err) if err.is_check_failure() => println!("   cured:   caught -> {err}"),
            Err(err) => println!("   cured:   {err}"),
            Ok(code) => println!("   cured:   exit {code}"),
        }
        println!();
    }
}
