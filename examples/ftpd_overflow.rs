//! The paper's security story, live: the ftpd `replydirname` buffer
//! overflow. In plain C the oversized path silently overruns `cwd[24]` into
//! the adjacent `is_admin` flag — privilege escalation with no crash. Under
//! CCured, the `strcpy` wrapper's bounds check stops the attack cold.
//!
//! ```sh
//! cargo run -p ccured-examples --bin ftpd_overflow
//! ```

use ccured_infer::InferOptions;
use ccured_workloads::daemons;
use ccured_workloads::runner;

fn main() {
    let benign = daemons::ftpd(2, false);
    let exploit = daemons::ftpd(2, true);

    println!("== benign session ==");
    let o = runner::run_original(&benign).expect("frontend");
    println!(
        "plain C: exit {} ({} bytes of replies)",
        o.exit,
        o.output.len()
    );
    let c = runner::run_cured(&benign, &InferOptions::default()).expect("cure");
    println!(
        "cured:   exit {} — outputs identical: {}",
        c.stats.exit,
        o.output == c.stats.output
    );

    println!("\n== exploit session (oversized CWD path) ==");
    let o = runner::run_original(&exploit).expect("frontend");
    match o.exit {
        42 => println!("plain C: EXPLOITED — overflow silently set is_admin (exit 42)"),
        other => println!("plain C: exit {other}"),
    }
    let reply = String::from_utf8_lossy(&o.output);
    if let Some(line) = reply.lines().find(|l| l.contains("ADMIN")) {
        println!("plain C reply shows the escalation: {line:?}");
    }

    let c = runner::run_cured(&exploit, &InferOptions::default()).expect("cure");
    match c.stats.error {
        Some(e) if e.is_check_failure() => {
            println!("cured:   PREVENTED — {e}");
        }
        Some(e) => println!("cured:   failed differently: {e}"),
        None => println!("cured:   exit {} (?!)", c.stats.exit),
    }
}
