//! Quickstart: cure a small C program, inspect the report, and run both the
//! original and the cured version.
//!
//! ```sh
//! cargo run -p ccured-examples --bin quickstart
//! ```

use ccured::Curer;
use ccured_rt::{ExecMode, Interp};

const PROGRAM: &str = r#"
extern int printf(char *fmt, ...);

int sum(int *a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += a[i];
    return s;
}

int main(void) {
    int data[8];
    for (int i = 0; i < 8; i++) data[i] = i * i;
    printf("sum = %d\n", sum(data, 8));
    return 0;
}
"#;

fn main() {
    // 1. Cure: parse, infer pointer kinds, instrument.
    let cured = Curer::new().cure_source(PROGRAM).expect("cure");
    let r = &cured.report;
    let (sf, sq, w, rt) = r.kind_counts.percentages();
    println!("pointer kinds: {sf}% SAFE, {sq}% SEQ, {w}% WILD, {rt}% RTTI");
    println!(
        "checks inserted: {} total ({} null, {} seq-bounds, {} index)",
        r.checks_inserted.total(),
        r.checks_inserted.null,
        r.checks_inserted.seq_bounds,
        r.checks_inserted.index_bound
    );

    // 2. Run the cured program.
    let mut interp = Interp::new(&cured.program, ExecMode::cured(&cured));
    let exit = interp.run().expect("run");
    print!("{}", String::from_utf8_lossy(interp.output()));
    println!("exit = {exit}");
    println!(
        "dynamic checks executed: {}",
        interp.counters.total_checks()
    );
}
