//! Shared helpers for the ccured-rs examples.
