#!/usr/bin/env python3
"""End-to-end smoke test for `ccured serve` driven through `ccured client`.

Starts a daemon with fault injection enabled, fires 200 mixed requests at
it (cure / status / explain, including 3 poisoned units that panic the
serving worker and 1 deadline-exceeding cure against a second daemon),
and asserts that

  * every single request gets a terminal one-line JSON reply (no hangs,
    no dropped connections, exit codes only ever ok/error/busy),
  * the daemon survives the injected worker panics (healthy cures keep
    succeeding afterwards and the supervisor reports respawns),
  * the deadline-exceeding cure comes back `resource-exhausted` while
    the daemon stays up,
  * the warm unit-cache hit rate over the run is high (the mix re-cures
    the same units, so almost everything after the first pass must be
    served from the content-addressed cache).

Usage: ci/serve_smoke.py [path/to/ccured]
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

CCURED = sys.argv[1] if len(sys.argv) > 1 else "target/release/ccured"
POISON = "ci_poison_token"
TOTAL_REQUESTS = 200
POISONED = 3

GOOD_TEMPLATE = """\
int work_{i}(int n) {{
  int buf[8];
  int acc = 0;
  for (int j = 0; j < 8; j = j + 1) {{
    buf[j] = j * {i};
    acc = acc + buf[j];
  }}
  return acc + n;
}}

int main(void) {{
  return work_{i}(3) > 0 ? 0 : 1;
}}
"""


def client(sock, *words, timeout=120):
    """One `ccured client` call; returns (exit_code, reply_line)."""
    proc = subprocess.run(
        [CCURED, "client", sock, *words],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    return proc.returncode, proc.stdout.strip()


def wait_for_socket(sock, proc, deadline=30.0):
    start = time.time()
    while time.time() - start < deadline:
        if os.path.exists(sock):
            return
        if proc.poll() is not None:
            raise SystemExit(f"daemon exited early: {proc.returncode}")
        time.sleep(0.05)
    raise SystemExit(f"daemon socket {sock} never appeared")


def assert_terminal(code, reply, what):
    assert code in (0, 1, 6), f"{what}: non-terminal exit code {code}: {reply!r}"
    assert reply and "\n" not in reply, f"{what}: reply is not one line: {reply!r}"
    status = json.loads(reply).get("status")
    assert status in ("ok", "error", "busy"), f"{what}: bad status {status!r}"
    return status


def main():
    tmp = tempfile.mkdtemp(prefix="ccured-serve-smoke-")
    try:
        run(tmp)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def run(tmp):
    sock = os.path.join(tmp, "cc.sock")
    cache = os.path.join(tmp, "cache")

    good = []
    for i in range(5):
        path = os.path.join(tmp, f"good_{i}.c")
        with open(path, "w") as f:
            f.write(GOOD_TEMPLATE.format(i=i))
        good.append(path)

    poisoned = []
    for i in range(POISONED):
        path = os.path.join(tmp, f"poisoned_{i}.c")
        with open(path, "w") as f:
            f.write(f"int {POISON}_{i}(void) {{ return {i}; }}\n")
        poisoned.append(path)

    daemon = subprocess.Popen(
        [CCURED, "serve", sock, "--workers", "2", "--cache-dir", cache,
         "--fault-poison", POISON],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    wait_for_socket(sock, daemon)

    sent = 0
    outcomes = {"ok": 0, "error": 0, "busy": 0}

    # 1 deadline-exceeding cure against a second daemon whose per-unit
    # budget is zero, so the deadline deterministically trips at the
    # first stage boundary. The reply must be terminal and the daemon
    # must still answer `status` afterwards.
    dsock = os.path.join(tmp, "deadline.sock")
    ddaemon = subprocess.Popen(
        [CCURED, "serve", dsock, "--workers", "1", "--no-cache",
         "--deadline-ms", "0"],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    wait_for_socket(dsock, ddaemon)
    code, reply = client(dsock, "cure", good[0])
    outcomes[assert_terminal(code, reply, "deadline cure")] += 1
    sent += 1
    assert "resource-exhausted" in reply, f"expected deadline verdict: {reply!r}"
    code, reply = client(dsock, "status")
    assert code == 0, f"deadline daemon down after timeout: {reply!r}"
    client(dsock, "shutdown")
    ddaemon.wait(timeout=30)

    # 3 poisoned cures: each panics the serving worker. The reply must
    # still be terminal (the handler notices the dropped channel) and
    # the supervisor must respawn the worker.
    for path in poisoned:
        code, reply = client(sock, "cure", path)
        status = assert_terminal(code, reply, f"poisoned cure {path}")
        assert status == "error", f"poisoned cure was not an error: {reply!r}"
        sent += 1
        outcomes[status] += 1

    # The remaining mixed traffic: cures over a small rotating unit set
    # (so the warm unit cache dominates), with status and explain
    # requests interleaved.
    while sent < TOTAL_REQUESTS:
        slot = sent % 8
        if slot < 5:
            words = ("cure", good[slot])
        elif slot == 5:
            words = ("status",)
        elif slot == 6:
            words = ("explain", good[0])
        else:
            words = ("cure", good[sent % len(good)])
        code, reply = client(sock, *words)
        outcomes[assert_terminal(code, reply, f"request #{sent}")] += 1
        sent += 1

    assert sent == TOTAL_REQUESTS, sent

    # The daemon must have survived the panics: healthy cures after the
    # poison must vastly outnumber the 3 injected failures.
    assert outcomes["ok"] >= TOTAL_REQUESTS - POISONED - 10, outcomes
    assert outcomes["error"] >= POISONED, outcomes

    # Pull the final stats. The supervisor poll runs every 20ms, so give
    # the respawn counter a moment to catch up.
    stats = None
    for _ in range(100):
        code, reply = client(sock, "status")
        assert code == 0, f"status failed: {reply!r}"
        stats = json.loads(reply)
        if stats.get("respawns", 0) >= POISONED:
            break
        time.sleep(0.05)
    assert stats["respawns"] >= 1, stats
    hits = stats["unit_cache"]["hits"]
    misses = stats["unit_cache"]["misses"]
    hit_rate = hits / max(1, hits + misses)
    assert hit_rate >= 0.9, f"warm hit rate too low: {hits}/{hits + misses}"

    code, reply = client(sock, "shutdown")
    assert code == 0, f"shutdown failed: {reply!r}"
    daemon.wait(timeout=30)
    assert daemon.returncode == 0, daemon.returncode

    print(
        f"serve-smoke ok: {sent} requests "
        f"({outcomes['ok']} ok / {outcomes['error']} error / "
        f"{outcomes['busy']} busy), "
        f"{stats['respawns']} respawns, "
        f"unit-cache hit rate {hit_rate:.2f}"
    )


if __name__ == "__main__":
    main()
