//! A self-contained, registry-free stand-in for the `criterion` crate.
//!
//! The workspace must build with **no network access**, so the real
//! `criterion` cannot be downloaded. This shim implements the subset of its
//! API the `ccured-bench` benches use — `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!` — with plain wall-clock timing and stdout reporting
//! (no statistics, plots, or baselines).

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut samples = 0u32;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters == 0 {
                continue;
            }
            let per_iter = b.elapsed / b.iters as u32;
            best = best.min(per_iter);
            total += per_iter;
            samples += 1;
        }
        if samples > 0 {
            let mean = total / samples;
            println!(
                "{}/{}: mean {:?}, best {:?} ({} samples)",
                self.name, id, mean, best, samples
            );
        }
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 3);
    }
}
