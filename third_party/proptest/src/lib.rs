//! A self-contained, registry-free stand-in for the `proptest` crate.
//!
//! The workspace must build and test with **no network access**, so the real
//! `proptest` cannot be downloaded. This shim implements the subset of its
//! API that the `ccured-integration` property tests use — `proptest!`,
//! `prop_assert*`, `prop_oneof!`, `any`, ranges, tuples,
//! `prop::collection::vec`, `prop::sample::select`, `prop_map`,
//! `prop_recursive` — on top of a deterministic SplitMix64 generator.
//!
//! Differences from the real crate, on purpose:
//! - no shrinking: a failing case reports its inputs-by-seed, not a minimal
//!   counterexample;
//! - string "regex" strategies generate arbitrary printable text rather than
//!   matching the pattern (the only pattern used in-tree is `"\PC*"`, i.e.
//!   arbitrary non-control characters, which this honours);
//! - case generation is fully deterministic per (test, case index), so runs
//!   are reproducible without a persistence file.

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

// ------------------------------------------------------------------ rng

/// Deterministic SplitMix64 stream used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

// -------------------------------------------------------------- failures

/// A failed `prop_assert*` — carried as a value so the runner can attach
/// the case number before panicking (the real crate shrinks instead).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property: a fresh deterministic RNG per case.
pub fn run_proptest<F>(config: ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    for case in 0..config.cases as u64 {
        let seed = 0x0cc0_5eed_u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        if let Err(e) = body(&mut rng) {
            panic!("property failed at case {case} (seed {seed:#x}): {e}");
        }
    }
}

// -------------------------------------------------------------- strategy

/// A generator of values; the shim's analogue of `proptest::Strategy`.
pub trait Strategy: Clone + 'static {
    type Value: 'static;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: 'static,
        F: Fn(Self::Value) -> O + Clone + 'static,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `f` receives a strategy for subtrees and builds
    /// one level. Depth is capped at `depth`; the size/branch hints are
    /// accepted for API compatibility and otherwise unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            // Each level sees a 50/50 mix of leaves and the previous level,
            // so generated trees have varied depth up to the cap.
            let inner = Union::new(vec![base.clone(), strat]).boxed();
            strat = f(inner).boxed();
        }
        Union::new(vec![base, strat]).boxed()
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: 'static,
    F: Fn(S::Value) -> O + Clone + 'static,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ------------------------------------------------------------- arbitrary

pub trait Arbitrary: Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// `any::<T>()` — the canonical strategy for a type.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// --------------------------------------------------------------- ranges

/// Numeric types usable as `lo..hi` strategies.
pub trait RangedNum: Copy + 'static {
    fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! ranged_num {
    ($($t:ty),*) => {
        $(impl RangedNum for $t {
            fn sample(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                let width = (hi as i128) - (lo as i128);
                if width <= 0 {
                    return lo;
                }
                let off = (rng.next_u64() as u128 % width as u128) as i128;
                (lo as i128 + off) as $t
            }
        })*
    };
}

ranged_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: RangedNum> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng, self.start, self.end)
    }
}

// --------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

// -------------------------------------------------------------- strings

/// String-literal strategies. The pattern is *not* interpreted as a regex:
/// every literal yields arbitrary printable text of length 0..64, which is
/// what the in-tree `"\PC*"` robustness tests need.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(64) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(20) {
                // Mostly printable ASCII…
                0..=16 => (0x20 + rng.below(0x5f) as u8) as char,
                // …with some multi-byte characters mixed in.
                17 => 'λ',
                18 => '中',
                _ => '‽',
            };
            s.push(c);
        }
        s
    }
}

// ---------------------------------------------------------- collections

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    #[derive(Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

// --------------------------------------------------------------- macros

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest($cfg, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    #[allow(unused_mut)]
                    let mut case = move || -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                    case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(l == r, "{} ({:?} vs {:?})", format!($($fmt)+), l, r);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-8i64..8), &mut rng);
            assert!((-8..8).contains(&v));
            let u = Strategy::generate(&(3usize..4), &mut rng);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn select_and_vec_compose() {
        let mut rng = crate::TestRng::new(99);
        let strat = crate::collection::vec(crate::sample::select(vec![1u64, 2, 4, 8]), 0..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 6);
            assert!(v.iter().all(|x| [1, 2, 4, 8].contains(x)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(#[allow(dead_code)] i8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = any::<i8>().prop_map(T::Leaf);
        let strat = leaf.prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(a.into(), b.into()))
        });
        let mut rng = crate::TestRng::new(3);
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_strategies(x in 0u32..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert_eq!(flip, flip);
        }
    }
}
