# Convenience targets for ccured-rs.

.PHONY: all test lint tables bench bench-interp bench-profile bench-opt2 bench-serve bench-synth bench-hot bench-temporal bless doc examples smoke profile-smoke serve-smoke synth-smoke stress clean

all: test

test:
	cargo test --workspace

lint:
	cargo clippy --workspace --all-targets -- -D warnings
	cargo fmt --check

# Quick sanity pass: cure + explain + crash-test + batch the example C
# sources, on both execution engines (vm is the default; the tree run is
# the reference-semantics cross-check).
smoke:
	cargo run -q -p ccured-cli --bin ccured -- examples/c/quickstart.c --report --run --engine vm
	cargo run -q -p ccured-cli --bin ccured -- examples/c/quickstart.c --run --engine tree
	cargo run -q -p ccured-cli --bin ccured -- explain examples/c/bad_cast.c
	cargo run -q -p ccured-cli --bin ccured -- crash-test examples/c/quickstart.c --mutants 25
	cargo run -q -p ccured-cli --bin ccured -- batch examples/c --jobs 4
	cargo run -q -p ccured-cli --bin ccured -- examples/c/seq_walk.c --report --run --counters
	cargo run -q -p ccured-cli --bin ccured -- examples/c/seq_walk.c --no-loop-opt --run --counters
	cargo run -q -p ccured-cli --bin ccured -- profile examples/c/seq_walk.c --json > target/seq_walk.profile.json
	cargo run -q -p ccured-cli --bin ccured -- examples/c/seq_walk.c --run --counters --pgo target/seq_walk.profile.json
	cargo run -q -p ccured-cli --bin ccured -- examples/c/seq_walk.c --run --counters --no-tier
	cargo run -q -p ccured-cli --bin ccured -- examples/c/quickstart.c --run --counters --temporal
	cargo run -q -p ccured-cli --bin ccured -- crash-test examples/c/quickstart.c --mutants 25 --temporal
	cargo test -q -p ccured-integration --test opt2
	$(MAKE) synth-smoke

# Hot-site profiling on two examples, under both engines (the rankings
# must be identical; the tree run is the cross-check).
profile-smoke:
	cargo run -q -p ccured-cli --bin ccured -- profile examples/c/quickstart.c --engine vm
	cargo run -q -p ccured-cli --bin ccured -- profile examples/c/quickstart.c --engine tree
	cargo run -q -p ccured-cli --bin ccured -- profile examples/c/seq_walk.c --top 5 --engine vm
	cargo run -q -p ccured-cli --bin ccured -- profile examples/c/seq_walk.c --top 5 --engine tree
	cargo run -q -p ccured-cli --bin ccured -- batch examples/c --jobs 4 --no-cache --profile

# Regenerate the pretty-printer golden files after an intentional change
# (review the diff before committing; see tests/tests/golden.rs).
bless:
	BLESS=1 cargo test -q -p ccured-integration --test golden

# Regenerate every table/figure of the paper (see EXPERIMENTS.md).
tables:
	cargo run --release -p ccured-bench --bin tables

bench:
	cargo bench --workspace

# E13: tree-vs-VM throughput table; writes BENCH_interp.json.
bench-interp:
	cargo run --release -p ccured-bench --bin tables -- fig-interp

# E14: hot-site check profiles; writes BENCH_profile.json.
bench-profile:
	cargo run --release -p ccured-bench --bin tables -- fig-profile

# E15: loop-optimizer executed-check cost; writes BENCH_opt2.json.
bench-opt2:
	cargo run --release -p ccured-bench --bin tables -- fig-opt2

# E16: cure-service warm vs cold recure; writes BENCH_serve.json.
bench-serve:
	cargo run --release -p ccured-bench --bin tables -- fig-serve

# E17: generative differential soundness campaign; writes BENCH_synth.json.
bench-synth:
	cargo run --release -p ccured-bench --bin tables -- fig-synth

# E18: profile-guided tiered VM, tree vs untiered vs tiered; writes
# BENCH_hot.json.
bench-hot:
	cargo run --release -p ccured-bench --bin tables -- fig-hot

# E19: temporal lock-and-key check overhead; writes BENCH_temporal.json.
bench-temporal:
	cargo run --release -p ccured-bench --bin tables -- fig-temporal

# Generative soundness smoke: synthesize a small corpus across every
# profile, then run a campaign (cure + tree-vs-VM differential + seeded
# faults on both engines). Exit 5 = escape, 8 = divergence (also in CI).
synth-smoke:
	cargo run -q -p ccured-cli --bin ccured -- synth target/synth-smoke/corpus --units 10 --seed 1
	cargo run -q -p ccured-cli --bin ccured -- batch target/synth-smoke/corpus --jobs 4 --no-cache
	cargo run -q -p ccured-cli --bin ccured -- campaign target/synth-smoke/campaign --units 50 --mutants-per-unit 2 --seed 1 --json > BENCH_campaign_smoke.json
	rm -rf target/synth-smoke

# Cure-service end-to-end smoke: daemon + CLI client, 200 mixed requests
# including injected worker panics and a deadline-exceeding cure (also
# run in CI; see ci/serve_smoke.py).
serve-smoke:
	cargo build --release -p ccured-cli
	python3 ci/serve_smoke.py target/release/ccured

doc:
	cargo doc --workspace --no-deps

examples:
	cargo run -p ccured-examples --bin quickstart
	cargo run -p ccured-examples --bin oop_rtti
	cargo run -p ccured-examples --bin ftpd_overflow
	cargo run -p ccured-examples --bin split_hostent
	cargo run -p ccured-examples --bin wrapper_demo
	cargo run -p ccured-examples --bin bug_museum

# Large-scale workload runs (not part of `cargo test`).
stress:
	cargo test --release -p ccured-integration --test stress -- --ignored

clean:
	cargo clean
