//! Lowering from the `ccured-ast` syntax tree to the typed CIL-like IR.
//!
//! Lowering performs full C type checking, inserts implicit conversions as
//! cast nodes, simplifies expressions (temporaries for calls, short-circuit
//! operators and conditionals), normalizes loops, flattens initializers for
//! locals, and allocates one qualifier variable per syntactic pointer-type
//! occurrence (plus one per variable/field address), as CCured's inference
//! requires.

use crate::ir::*;
use crate::types::*;
use ccured_ast::ast::{self, PtrKindAnnot};
use ccured_ast::{Diag, Span};
use std::collections::HashMap;

/// Lowers a parsed translation unit into a typed [`Program`].
///
/// # Errors
///
/// Returns the first type error or unsupported construct as a [`Diag`].
///
/// # Examples
///
/// ```
/// let tu = ccured_ast::parse_translation_unit("int x = 1 + 2;").unwrap();
/// let prog = ccured_cil::lower::lower_translation_unit(&tu).unwrap();
/// assert_eq!(prog.globals.len(), 1);
/// ```
pub fn lower_translation_unit(tu: &ast::TranslationUnit) -> Result<Program, Diag> {
    let mut lw = Lowerer::new();
    lw.unit(tu)?;
    Ok(lw.finish())
}

#[derive(Debug, Clone)]
enum Binding {
    Local(LocalId),
    Global(GlobalId),
    Func(FuncId),
    Ext(ExternId),
    EnumConst(i128),
    Typedef(TypeId),
}

struct BlockBuilder {
    stmts: Vec<Stmt>,
    instrs: Vec<Instr>,
}

impl BlockBuilder {
    fn new() -> Self {
        BlockBuilder {
            stmts: Vec::new(),
            instrs: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if !self.instrs.is_empty() {
            self.stmts
                .push(Stmt::Instr(std::mem::take(&mut self.instrs)));
        }
    }

    fn finish(mut self) -> Vec<Stmt> {
        self.flush();
        self.stmts
    }
}

/// Context inside a loop, for `continue` lowering.
#[derive(Debug, Clone)]
enum LoopCtx {
    /// `continue` maps to `Continue` directly (while loops).
    Plain,
    /// `continue` maps to `goto label` (for/do-while loops).
    GotoLabel(String),
}

struct Lowerer {
    types: TypeTable,
    globals: Vec<Global>,
    functions: Vec<Function>,
    externals: Vec<ExternDecl>,
    casts: Vec<CastSite>,
    pragmas: Vec<CcuredPragma>,
    annots: Annotations,
    scopes: Vec<HashMap<String, Binding>>,
    blocks: Vec<BlockBuilder>,
    /// Locals of the function currently being lowered.
    cur_locals: Vec<Local>,
    cur_func: Option<FuncId>,
    cur_ret: Option<TypeId>,
    loop_stack: Vec<LoopCtx>,
    next_temp: u32,
    next_label: u32,
    next_anon: u32,
    next_str: u32,
    /// Externals later found to be defined in the program (forward calls).
    ext_defined: HashMap<u32, FuncId>,
    /// Types of functions whose bodies are not yet pushed (recursion).
    fn_types: HashMap<u32, TypeId>,
    /// Names of functions being lowered (for static-local mangling).
    fn_names: HashMap<u32, String>,
    /// When true, lowering an expression may not emit instructions.
    const_ctx: bool,
    /// String literal interning: bytes -> global id.
    str_globals: HashMap<Vec<u8>, GlobalId>,
}

impl Lowerer {
    fn new() -> Self {
        Lowerer {
            types: TypeTable::default(),
            globals: Vec::new(),
            functions: Vec::new(),
            externals: Vec::new(),
            casts: Vec::new(),
            pragmas: Vec::new(),
            annots: Annotations::default(),
            scopes: vec![HashMap::new()],
            blocks: Vec::new(),
            cur_locals: Vec::new(),
            cur_func: None,
            cur_ret: None,
            loop_stack: Vec::new(),
            next_temp: 0,
            next_label: 0,
            next_anon: 0,
            next_str: 0,
            ext_defined: HashMap::new(),
            fn_types: HashMap::new(),
            fn_names: HashMap::new(),
            const_ctx: false,
            str_globals: HashMap::new(),
        }
    }

    fn finish(mut self) -> Program {
        // Rewrite calls/addresses of externals that turned out to be defined.
        if !self.ext_defined.is_empty() {
            let map = std::mem::take(&mut self.ext_defined);
            for f in &mut self.functions {
                for s in &mut f.body {
                    rewrite_stmt(s, &map);
                }
            }
            for g in &mut self.globals {
                if let Some(init) = &mut g.init {
                    rewrite_init(init, &map);
                }
            }
            // Drop now-defined externals by marking; keep ids stable by
            // leaving tombstones with empty names (never called after the
            // rewrite above).
            for (ext, _) in map {
                self.externals[ext as usize].name = String::new();
            }
        }
        Program {
            types: self.types,
            globals: self.globals,
            functions: self.functions,
            externals: self.externals,
            casts: self.casts,
            pragmas: self.pragmas,
            annots: self.annots,
        }
    }

    fn err<T>(&self, span: Span, msg: impl Into<String>) -> Result<T, Diag> {
        Err(Diag::error(span, msg))
    }

    // ------------------------------------------------------------- scoping

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn define(&mut self, name: &str, b: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), b);
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    // --------------------------------------------------------------- types

    fn type_from_specs(&mut self, specs: &ast::DeclSpecs) -> Result<TypeId, Diag> {
        let ty = match &specs.type_spec {
            ast::TypeSpec::Void => self.types.mk_void(),
            ast::TypeSpec::Char { signed } => self.types.mk_int(match signed {
                None => IntKind::Char,
                Some(true) => IntKind::SChar,
                Some(false) => IntKind::UChar,
            }),
            ast::TypeSpec::Int { signed, size } => self.types.mk_int(match (signed, size) {
                (true, ast::IntSize::Short) => IntKind::Short,
                (false, ast::IntSize::Short) => IntKind::UShort,
                (true, ast::IntSize::Int) => IntKind::Int,
                (false, ast::IntSize::Int) => IntKind::UInt,
                (true, ast::IntSize::Long) => IntKind::Long,
                (false, ast::IntSize::Long) => IntKind::ULong,
                (true, ast::IntSize::LongLong) => IntKind::LongLong,
                (false, ast::IntSize::LongLong) => IntKind::ULongLong,
            }),
            ast::TypeSpec::Float => self.types.mk_float(FloatKind::Float),
            ast::TypeSpec::Double => self.types.mk_float(FloatKind::Double),
            ast::TypeSpec::Comp(cs) => {
                let cid = self.comp_from_spec(cs)?;
                self.types.mk_comp(cid)
            }
            ast::TypeSpec::Enum(es) => {
                if let Some(items) = &es.items {
                    let mut next = 0i128;
                    for item in items {
                        if let Some(v) = &item.value {
                            next = self.const_eval(v)?;
                        }
                        self.define(&item.name, Binding::EnumConst(next));
                        next += 1;
                    }
                }
                self.types.mk_int(IntKind::Int)
            }
            ast::TypeSpec::Name(name) => match self.lookup(name) {
                Some(Binding::Typedef(t)) => *t,
                _ => return self.err(specs.span, format!("unknown type name `{name}`")),
            },
        };
        Ok(ty)
    }

    fn comp_from_spec(&mut self, cs: &ast::CompSpec) -> Result<CompId, Diag> {
        let name = match &cs.tag {
            Some(t) => t.clone(),
            None => {
                let n = format!("__anon{}", self.next_anon);
                self.next_anon += 1;
                n
            }
        };
        let cid = match self.types.find_comp(&name, cs.is_union) {
            Some(c) => c,
            None => self.types.declare_comp(name.clone(), cs.is_union),
        };
        if let Some(groups) = &cs.fields {
            if self.types.comp(cid).defined {
                return self.err(cs.span, format!("redefinition of `{name}`"));
            }
            let mut fields = Vec::new();
            for g in groups {
                let base = self.type_from_specs(&g.specs)?;
                for d in &g.declarators {
                    let (fname, fty) = self.apply_declarator(base, d, g.specs.split)?;
                    let fname = match fname {
                        Some(n) => n,
                        None => return self.err(d.span, "field requires a name"),
                    };
                    let q = self.types.fresh_qual();
                    fields.push((fname, fty, q));
                }
            }
            self.types
                .define_comp(cid, fields)
                .map_err(|e| Diag::error(cs.span, format!("cannot lay out struct: {e}")))?;
        }
        Ok(cid)
    }

    /// Applies a declarator's derived parts to `base`, returning the declared
    /// name and the complete type. `split` is the base-type `__SPLIT`.
    fn apply_declarator(
        &mut self,
        base: TypeId,
        d: &ast::Declarator,
        _split: Option<bool>,
    ) -> Result<(Option<String>, TypeId), Diag> {
        let mut ty = base;
        for step in d.derived.iter().rev() {
            ty = match step {
                ast::Derived::Pointer(q) => {
                    let qual = self.types.fresh_qual();
                    if let Some(k) = q.kind {
                        self.annots.qual_kinds.push((
                            qual,
                            match k {
                                PtrKindAnnot::Safe => KindAnnot::Safe,
                                PtrKindAnnot::Seq => KindAnnot::Seq,
                                PtrKindAnnot::Wild => KindAnnot::Wild,
                                PtrKindAnnot::Rtti => KindAnnot::Rtti,
                            },
                        ));
                    }
                    if let Some(s) = q.split {
                        self.annots.qual_splits.push((qual, s));
                    }
                    self.types.mk_ptr_with_qual(ty, qual)
                }
                ast::Derived::Array(len) => {
                    let n = match len {
                        Some(e) => {
                            let v = self.const_eval(e)?;
                            if v < 0 {
                                return self.err(d.span, "negative array length");
                            }
                            Some(v as u64)
                        }
                        None => None,
                    };
                    self.types.mk_array(ty, n)
                }
                ast::Derived::Function(params, varargs) => {
                    let mut ptypes = Vec::new();
                    for p in params {
                        let pbase = self.type_from_specs(&p.specs)?;
                        let (_, pty) =
                            self.apply_declarator(pbase, &p.declarator, p.specs.split)?;
                        ptypes.push(self.decay_param_type(pty));
                    }
                    self.types.mk_func(FuncSig {
                        ret: ty,
                        params: ptypes,
                        varargs: *varargs,
                    })
                }
            };
        }
        Ok((d.name.clone(), ty))
    }

    /// Array and function parameter types decay to pointers.
    fn decay_param_type(&mut self, ty: TypeId) -> TypeId {
        match self.types.get(ty).clone() {
            Type::Array(elem, _) => self.types.mk_ptr(elem),
            Type::Func(_) => self.types.mk_ptr(ty),
            _ => ty,
        }
    }

    // ----------------------------------------------------------- const eval

    fn const_eval(&mut self, e: &ast::Expr) -> Result<i128, Diag> {
        use ast::ExprKind as K;
        Ok(match &e.kind {
            K::IntLit(v, _) => *v as i128,
            K::CharLit(c) => *c as i128,
            K::Ident(name) => match self.lookup(name) {
                Some(Binding::EnumConst(v)) => *v,
                _ => return self.err(e.span, format!("`{name}` is not a constant")),
            },
            K::Unary(ast::UnOp::Neg, x) => -self.const_eval(x)?,
            K::Unary(ast::UnOp::Plus, x) => self.const_eval(x)?,
            K::Unary(ast::UnOp::BitNot, x) => !self.const_eval(x)?,
            K::Unary(ast::UnOp::Not, x) => (self.const_eval(x)? == 0) as i128,
            K::Binary(op, l, r) => {
                let a = self.const_eval(l)?;
                let b = self.const_eval(r)?;
                use ast::BinOp::*;
                match op {
                    Add => a.wrapping_add(b),
                    Sub => a.wrapping_sub(b),
                    Mul => a.wrapping_mul(b),
                    Div => {
                        if b == 0 {
                            return self.err(e.span, "division by zero in constant");
                        }
                        a / b
                    }
                    Rem => {
                        if b == 0 {
                            return self.err(e.span, "division by zero in constant");
                        }
                        a % b
                    }
                    Shl => a.wrapping_shl(b as u32),
                    Shr => a.wrapping_shr(b as u32),
                    Lt => (a < b) as i128,
                    Gt => (a > b) as i128,
                    Le => (a <= b) as i128,
                    Ge => (a >= b) as i128,
                    Eq => (a == b) as i128,
                    Ne => (a != b) as i128,
                    BitAnd => a & b,
                    BitXor => a ^ b,
                    BitOr => a | b,
                    LogAnd => ((a != 0) && (b != 0)) as i128,
                    LogOr => ((a != 0) || (b != 0)) as i128,
                }
            }
            K::Cond(c, t, f) => {
                if self.const_eval(c)? != 0 {
                    self.const_eval(t)?
                } else {
                    self.const_eval(f)?
                }
            }
            K::Cast(_, inner) => self.const_eval(inner)?,
            K::SizeofType(tn) => {
                let base = self.type_from_specs(&tn.specs)?;
                let (_, ty) = self.apply_declarator(base, &tn.declarator, None)?;
                self.types
                    .size_of(ty)
                    .map_err(|err| Diag::error(e.span, format!("sizeof: {err}")))?
                    as i128
            }
            _ => return self.err(e.span, "expression is not an integer constant"),
        })
    }

    // ------------------------------------------------------------- top level

    fn unit(&mut self, tu: &ast::TranslationUnit) -> Result<(), Diag> {
        for d in &tu.decls {
            match d {
                ast::ExtDecl::Pragma(p) => self.pragma(p),
                ast::ExtDecl::Decl(decl) => self.global_declaration(decl)?,
                ast::ExtDecl::Function(f) => self.function(f)?,
            }
        }
        Ok(())
    }

    fn pragma(&mut self, p: &ast::PragmaDirective) {
        let raw = p.raw.trim();
        let parsed = if let Some(rest) = raw.strip_prefix("ccuredWrapperOf") {
            parse_two_strings(rest)
                .map(|(wrapper, external)| CcuredPragma::WrapperOf { wrapper, external })
        } else if let Some(rest) = raw.strip_prefix("ccured_split") {
            parse_ident_arg(rest).map(CcuredPragma::SplitVar)
        } else if let Some(rest) = raw.strip_prefix("ccured_trusted") {
            parse_ident_arg(rest).map(CcuredPragma::TrustedFn)
        } else {
            None
        };
        self.pragmas
            .push(parsed.unwrap_or_else(|| CcuredPragma::Unknown(raw.to_string())));
    }

    fn global_declaration(&mut self, decl: &ast::Declaration) -> Result<(), Diag> {
        let base = self.type_from_specs(&decl.specs)?;
        let is_typedef = decl.specs.storage == Some(ast::Storage::Typedef);
        for init in &decl.inits {
            let (name, ty) = self.apply_declarator(base, &init.declarator, decl.specs.split)?;
            let name = match name {
                Some(n) => n,
                None => return self.err(init.declarator.span, "declaration requires a name"),
            };
            if is_typedef {
                self.define(&name, Binding::Typedef(ty));
                continue;
            }
            if matches!(self.types.get(ty), Type::Func(_)) {
                // A function prototype: an external until defined.
                if self.lookup(&name).is_none() {
                    let id = ExternId(self.externals.len() as u32);
                    self.externals.push(ExternDecl {
                        name: name.clone(),
                        ty,
                        span: init.declarator.span,
                    });
                    self.define(&name, Binding::Ext(id));
                }
                continue;
            }
            let lowered_init = match &init.init {
                Some(i) => {
                    self.const_ctx = true;
                    let r = self.lower_initializer(i, ty);
                    self.const_ctx = false;
                    Some(r?)
                }
                None => None,
            };
            let id = GlobalId(self.globals.len() as u32);
            let addr_qual = self.types.fresh_qual();
            let is_extern =
                decl.specs.storage == Some(ast::Storage::Extern) && lowered_init.is_none();
            self.globals.push(Global {
                name: name.clone(),
                ty,
                addr_qual,
                init: lowered_init,
                is_extern,
                span: init.declarator.span,
            });
            if let Some(s) = decl.specs.split {
                self.annots.split_seeds.push((SplitSeed::Global(id), s));
            }
            self.define(&name, Binding::Global(id));
        }
        Ok(())
    }

    fn function(&mut self, f: &ast::FunctionDef) -> Result<(), Diag> {
        let base = self.type_from_specs(&f.specs)?;
        let (name, fty) = self.apply_declarator(base, &f.declarator, f.specs.split)?;
        let name = match name {
            Some(n) => n,
            None => return self.err(f.span, "function definition requires a name"),
        };
        let sig = match self.types.get(fty) {
            Type::Func(sig) => sig.clone(),
            _ => return self.err(f.span, "declarator does not declare a function"),
        };
        if sig.varargs {
            return self.err(
                f.span,
                "defining variadic functions is not supported (declare them extern)",
            );
        }
        if matches!(self.types.get(sig.ret), Type::Comp(_)) {
            return self.err(
                f.span,
                "returning structures by value is not supported; return a pointer instead",
            );
        }

        let fid = FuncId(self.functions.len() as u32);
        self.fn_types.insert(fid.0, fty);
        self.fn_names.insert(fid.0, name.clone());
        // If previously declared as an external, remember the fixup.
        if let Some(Binding::Ext(e)) = self.lookup(&name).cloned() {
            self.ext_defined.insert(e.0, fid);
        }
        self.define(&name, Binding::Func(fid));

        // Parameter names come from the declarator's outermost function part.
        let params = match f.declarator.derived.first() {
            Some(ast::Derived::Function(params, _)) => params,
            _ => return self.err(f.span, "function definition requires a parameter list"),
        };

        self.cur_locals = Vec::new();
        self.cur_func = Some(fid);
        self.cur_ret = Some(sig.ret);
        self.next_temp = 0;
        self.next_label = 0;
        self.push_scope();
        for (i, p) in params.iter().enumerate() {
            let pname = match &p.declarator.name {
                Some(n) => n.clone(),
                None => format!("__arg{i}"),
            };
            let pty = sig.params[i];
            let q = self.types.fresh_qual();
            let lid = LocalId(self.cur_locals.len() as u32);
            self.cur_locals.push(Local {
                name: pname.clone(),
                ty: pty,
                addr_qual: q,
                is_param: true,
                is_temp: false,
            });
            self.define(&pname, Binding::Local(lid));
        }
        let param_count = self.cur_locals.len();

        self.blocks.push(BlockBuilder::new());
        for s in &f.body {
            self.stmt(s)?;
        }
        self.pop_scope();
        let body = self.blocks.pop().expect("function block").finish();

        self.functions.push(Function {
            name,
            ty: fty,
            param_count,
            locals: std::mem::take(&mut self.cur_locals),
            body,
            span: f.span,
        });
        self.cur_func = None;
        self.cur_ret = None;
        Ok(())
    }

    // ------------------------------------------------------------ emission

    fn emit(&mut self, i: Instr) {
        debug_assert!(!self.const_ctx, "instruction emitted in constant context");
        self.blocks
            .last_mut()
            .expect("emission outside a block")
            .instrs
            .push(i);
    }

    fn emit_stmt(&mut self, s: Stmt) {
        let b = self.blocks.last_mut().expect("emission outside a block");
        b.flush();
        b.stmts.push(s);
    }

    /// Lowers statements into a fresh sub-block and returns them.
    fn in_block<F>(&mut self, f: F) -> Result<Vec<Stmt>, Diag>
    where
        F: FnOnce(&mut Self) -> Result<(), Diag>,
    {
        self.blocks.push(BlockBuilder::new());
        let r = f(self);
        let b = self.blocks.pop().expect("sub-block");
        r?;
        Ok(b.finish())
    }

    fn fresh_temp(&mut self, ty: TypeId) -> LocalId {
        let name = format!("__t{}", self.next_temp);
        self.next_temp += 1;
        let q = self.types.fresh_qual();
        let id = LocalId(self.cur_locals.len() as u32);
        self.cur_locals.push(Local {
            name,
            ty,
            addr_qual: q,
            is_param: false,
            is_temp: true,
        });
        id
    }

    fn fresh_label(&mut self, prefix: &str) -> String {
        let l = format!("__{prefix}{}", self.next_label);
        self.next_label += 1;
        l
    }

    // ------------------------------------------------------------ statements

    fn stmt(&mut self, s: &ast::Stmt) -> Result<(), Diag> {
        use ast::StmtKind as K;
        match &s.kind {
            K::Expr(None) => Ok(()),
            K::Expr(Some(e)) => {
                self.lower_expr_discard(e)?;
                Ok(())
            }
            K::Decl(d) => self.local_declaration(d),
            K::Block(stmts) => {
                self.push_scope();
                let body = self.in_block(|lw| {
                    for st in stmts {
                        lw.stmt(st)?;
                    }
                    Ok(())
                })?;
                self.pop_scope();
                self.emit_stmt(Stmt::Block(body));
                Ok(())
            }
            K::If(c, t, e) => {
                let cond = self.lower_cond(c)?;
                let then_b = self.in_block(|lw| lw.stmt(t))?;
                let else_b = match e {
                    Some(e) => self.in_block(|lw| lw.stmt(e))?,
                    None => Vec::new(),
                };
                self.emit_stmt(Stmt::If(cond, then_b, else_b));
                Ok(())
            }
            K::While(c, body) => {
                self.loop_stack.push(LoopCtx::Plain);
                let lowered = self.in_block(|lw| {
                    let cond = lw.lower_cond(c)?;
                    lw.emit_stmt(Stmt::If(cond, Vec::new(), vec![Stmt::Break]));
                    lw.stmt(body)
                })?;
                self.loop_stack.pop();
                self.emit_stmt(Stmt::Loop(lowered));
                Ok(())
            }
            K::DoWhile(body, c) => {
                let cont = self.fresh_label("cont");
                self.loop_stack.push(LoopCtx::GotoLabel(cont.clone()));
                let lowered = self.in_block(|lw| {
                    lw.stmt(body)?;
                    lw.emit_stmt(Stmt::Label(cont.clone()));
                    let cond = lw.lower_cond(c)?;
                    lw.emit_stmt(Stmt::If(cond, Vec::new(), vec![Stmt::Break]));
                    Ok(())
                })?;
                self.loop_stack.pop();
                self.emit_stmt(Stmt::Loop(lowered));
                Ok(())
            }
            K::For(init, cond, step, body) => {
                self.push_scope();
                match init {
                    Some(ast::ForInit::Expr(e)) => {
                        self.lower_expr_discard(e)?;
                    }
                    Some(ast::ForInit::Decl(d)) => self.local_declaration(d)?,
                    None => {}
                }
                let cont = self.fresh_label("cont");
                self.loop_stack.push(LoopCtx::GotoLabel(cont.clone()));
                let lowered = self.in_block(|lw| {
                    if let Some(c) = cond {
                        let cexp = lw.lower_cond(c)?;
                        lw.emit_stmt(Stmt::If(cexp, Vec::new(), vec![Stmt::Break]));
                    }
                    lw.stmt(body)?;
                    lw.emit_stmt(Stmt::Label(cont.clone()));
                    if let Some(stp) = step {
                        lw.lower_expr_discard(stp)?;
                    }
                    Ok(())
                })?;
                self.loop_stack.pop();
                self.pop_scope();
                self.emit_stmt(Stmt::Loop(lowered));
                Ok(())
            }
            K::Switch(scrut, body) => {
                let e = self.lower_rvalue(scrut)?;
                if !self.types.is_integer(e.ty()) {
                    return self.err(scrut.span, "switch scrutinee must have integer type");
                }
                let arms = self.lower_switch_body(body)?;
                self.emit_stmt(Stmt::Switch(e, arms));
                Ok(())
            }
            K::Case(_, _) | K::Default(_) => self.err(
                s.span,
                "case/default labels must appear at the top level of a switch body",
            ),
            K::Break => {
                self.emit_stmt(Stmt::Break);
                Ok(())
            }
            K::Continue => {
                match self.loop_stack.last().cloned() {
                    Some(LoopCtx::Plain) => self.emit_stmt(Stmt::Continue),
                    Some(LoopCtx::GotoLabel(l)) => self.emit_stmt(Stmt::Goto(l)),
                    None => return self.err(s.span, "continue outside a loop"),
                }
                Ok(())
            }
            K::Return(v) => {
                let ret = self.cur_ret.expect("return inside a function");
                let e = match v {
                    Some(e) => {
                        if matches!(self.types.get(ret), Type::Void) {
                            self.lower_expr_discard(e)?;
                            None
                        } else {
                            let x = self.lower_rvalue(e)?;
                            Some(self.coerce(x, ret, e.span)?)
                        }
                    }
                    None => None,
                };
                self.emit_stmt(Stmt::Return(e));
                Ok(())
            }
            K::Goto(l) => {
                self.emit_stmt(Stmt::Goto(l.clone()));
                Ok(())
            }
            K::Label(l, inner) => {
                self.emit_stmt(Stmt::Label(l.clone()));
                self.stmt(inner)
            }
        }
    }

    fn lower_switch_body(&mut self, body: &ast::Stmt) -> Result<Vec<SwitchArm>, Diag> {
        let stmts: &[ast::Stmt] = match &body.kind {
            ast::StmtKind::Block(stmts) => stmts,
            _ => std::slice::from_ref(body),
        };
        self.push_scope();
        let mut arms: Vec<SwitchArm> = Vec::new();
        for st in stmts {
            // Peel any stack of case/default labels.
            let mut values: Vec<i128> = Vec::new();
            let mut is_arm_start = false;
            let mut is_default = false;
            let mut cur = st;
            loop {
                match &cur.kind {
                    ast::StmtKind::Case(v, inner) => {
                        values.push(self.const_eval(v)?);
                        is_arm_start = true;
                        cur = inner;
                    }
                    ast::StmtKind::Default(inner) => {
                        is_default = true;
                        is_arm_start = true;
                        cur = inner;
                    }
                    _ => break,
                }
            }
            if is_arm_start {
                arms.push(SwitchArm {
                    values: if is_default { Vec::new() } else { values },
                    body: Vec::new(),
                });
            }
            let target = match arms.last_mut() {
                Some(arm) => arm,
                None => {
                    return self.err(st.span, "statement before the first case label in switch")
                }
            };
            // Lower the (label-stripped) statement into the current arm.
            let lowered = self.in_block(|lw| lw.stmt(cur))?;
            target.body.extend(lowered);
        }
        self.pop_scope();
        Ok(arms)
    }

    fn local_declaration(&mut self, d: &ast::Declaration) -> Result<(), Diag> {
        let base = self.type_from_specs(&d.specs)?;
        let is_typedef = d.specs.storage == Some(ast::Storage::Typedef);
        let is_static = d.specs.storage == Some(ast::Storage::Static);
        for init in &d.inits {
            let (name, ty) = self.apply_declarator(base, &init.declarator, d.specs.split)?;
            let name = match name {
                Some(n) => n,
                None => return self.err(init.declarator.span, "declaration requires a name"),
            };
            if is_typedef {
                self.define(&name, Binding::Typedef(ty));
                continue;
            }
            if is_static {
                // A function-scoped static: storage lives for the whole
                // program. Promote to a mangled global; the initializer must
                // be constant (evaluated once, as in C).
                let fname = self
                    .cur_func
                    .map(|f| self.fn_names.get(&f.0).cloned().unwrap_or_default())
                    .unwrap_or_default();
                let mangled = format!("__static_{fname}_{name}");
                let lowered_init = match &init.init {
                    Some(i) => {
                        self.const_ctx = true;
                        let r = self.lower_initializer(i, ty);
                        self.const_ctx = false;
                        Some(r?)
                    }
                    None => None,
                };
                let id = GlobalId(self.globals.len() as u32);
                let addr_qual = self.types.fresh_qual();
                self.globals.push(Global {
                    name: mangled,
                    ty,
                    addr_qual,
                    init: lowered_init,
                    is_extern: false,
                    span: init.declarator.span,
                });
                self.define(&name, Binding::Global(id));
                continue;
            }
            if matches!(self.types.get(ty), Type::Func(_)) {
                if self.lookup(&name).is_none() {
                    let id = ExternId(self.externals.len() as u32);
                    self.externals.push(ExternDecl {
                        name: name.clone(),
                        ty,
                        span: init.declarator.span,
                    });
                    self.define(&name, Binding::Ext(id));
                }
                continue;
            }
            // Complete array length from the initializer if needed.
            let ty = match (self.types.get(ty).clone(), &init.init) {
                (Type::Array(elem, None), Some(ast::Initializer::List(items, _))) => {
                    self.types.mk_array(elem, Some(items.len() as u64))
                }
                (Type::Array(elem, None), Some(ast::Initializer::Expr(e))) => {
                    if let ast::ExprKind::StrLit(bytes) = &e.kind {
                        self.types.mk_array(elem, Some(bytes.len() as u64 + 1))
                    } else {
                        ty
                    }
                }
                _ => ty,
            };
            let q = self.types.fresh_qual();
            let lid = LocalId(self.cur_locals.len() as u32);
            self.cur_locals.push(Local {
                name: name.clone(),
                ty,
                addr_qual: q,
                is_param: false,
                is_temp: false,
            });
            if let Some(s) = d.specs.split {
                let f = self.cur_func.expect("local decl inside function");
                self.annots.split_seeds.push((SplitSeed::Local(f, lid), s));
            }
            self.define(&name, Binding::Local(lid));
            if let Some(i) = &init.init {
                self.assign_initializer(Lval::local(lid), ty, i)?;
            }
        }
        Ok(())
    }

    /// Flattens a local initializer into `Set` instructions.
    fn assign_initializer(
        &mut self,
        lv: Lval,
        ty: TypeId,
        init: &ast::Initializer,
    ) -> Result<(), Diag> {
        match init {
            ast::Initializer::Expr(e) => {
                // Special-case `char buf[] = "str"` / `char buf[n] = "str"`.
                if let (Type::Array(elem, Some(n)), ast::ExprKind::StrLit(bytes)) =
                    (self.types.get(ty).clone(), &e.kind)
                {
                    if self.types.is_integer(elem) {
                        let char_ty = elem;
                        for i in 0..n {
                            let b = bytes.get(i as usize).copied().unwrap_or(0);
                            let mut l = lv.clone();
                            let int_ty = self.types.mk_int(IntKind::Int);
                            l.offsets.push(Offset::Index(Exp::int(
                                i as i128,
                                IntKind::Int,
                                int_ty,
                            )));
                            self.emit(Instr::Set(
                                l,
                                Exp::int(b as i128, IntKind::Char, char_ty),
                                e.span,
                            ));
                        }
                        return Ok(());
                    }
                }
                let x = self.lower_rvalue(e)?;
                let x = self.coerce(x, ty, e.span)?;
                self.emit(Instr::Set(lv, x, e.span));
                Ok(())
            }
            ast::Initializer::List(items, span) => match self.types.get(ty).clone() {
                Type::Array(elem, len) => {
                    let n = len.unwrap_or(items.len() as u64);
                    if items.len() as u64 > n {
                        return self.err(*span, "too many initializers for array");
                    }
                    let int_ty = self.types.mk_int(IntKind::Int);
                    for (i, item) in items.iter().enumerate() {
                        let mut l = lv.clone();
                        l.offsets
                            .push(Offset::Index(Exp::int(i as i128, IntKind::Int, int_ty)));
                        self.assign_initializer(l, elem, item)?;
                    }
                    // Zero-fill the rest.
                    for i in items.len() as u64..n {
                        let mut l = lv.clone();
                        l.offsets
                            .push(Offset::Index(Exp::int(i as i128, IntKind::Int, int_ty)));
                        self.zero_fill(l, elem, *span)?;
                    }
                    Ok(())
                }
                Type::Comp(cid) => {
                    let fields = self.types.comp(cid).fields.clone();
                    if items.len() > fields.len() {
                        return self.err(*span, "too many initializers for struct");
                    }
                    for (i, item) in items.iter().enumerate() {
                        let mut l = lv.clone();
                        l.offsets.push(Offset::Field(cid, i));
                        self.assign_initializer(l, fields[i].ty, item)?;
                    }
                    for (i, f) in fields.iter().enumerate().skip(items.len()) {
                        let mut l = lv.clone();
                        l.offsets.push(Offset::Field(cid, i));
                        self.zero_fill(l, f.ty, *span)?;
                    }
                    Ok(())
                }
                _ if items.len() == 1 => self.assign_initializer(lv, ty, &items[0]),
                _ => self.err(*span, "brace initializer for scalar type"),
            },
        }
    }

    fn zero_fill(&mut self, lv: Lval, ty: TypeId, span: Span) -> Result<(), Diag> {
        match self.types.get(ty).clone() {
            Type::Int(k) => {
                self.emit(Instr::Set(lv, Exp::int(0, k, ty), span));
                Ok(())
            }
            Type::Float(k) => {
                self.emit(Instr::Set(lv, Exp::Const(Const::Float(0.0, k), ty), span));
                Ok(())
            }
            Type::Ptr(..) => {
                let zero = self.null_ptr(ty, span);
                self.emit(Instr::Set(lv, zero, span));
                Ok(())
            }
            Type::Array(elem, Some(n)) => {
                let int_ty = self.types.mk_int(IntKind::Int);
                for i in 0..n {
                    let mut l = lv.clone();
                    l.offsets
                        .push(Offset::Index(Exp::int(i as i128, IntKind::Int, int_ty)));
                    self.zero_fill(l, elem, span)?;
                }
                Ok(())
            }
            Type::Comp(cid) => {
                let fields = self.types.comp(cid).fields.clone();
                if self.types.comp(cid).is_union {
                    if let Some(f) = fields.first() {
                        let mut l = lv.clone();
                        l.offsets.push(Offset::Field(cid, 0));
                        return self.zero_fill(l, f.ty, span);
                    }
                    return Ok(());
                }
                for (i, f) in fields.iter().enumerate() {
                    let mut l = lv.clone();
                    l.offsets.push(Offset::Field(cid, i));
                    self.zero_fill(l, f.ty, span)?;
                }
                Ok(())
            }
            _ => self.err(span, "cannot zero-initialize this type"),
        }
    }

    /// Lowers a global initializer into an [`Init`] tree (constant context).
    fn lower_initializer(&mut self, init: &ast::Initializer, ty: TypeId) -> Result<Init, Diag> {
        match init {
            ast::Initializer::Expr(e) => {
                if let (Type::Array(elem, _), ast::ExprKind::StrLit(bytes)) =
                    (self.types.get(ty).clone(), &e.kind)
                {
                    if self.types.is_integer(elem) {
                        let mut b = bytes.clone();
                        b.push(0);
                        return Ok(Init::String(b));
                    }
                }
                let x = self.lower_rvalue(e)?;
                let x = self.coerce(x, ty, e.span)?;
                Ok(Init::Scalar(x))
            }
            ast::Initializer::List(items, span) => match self.types.get(ty).clone() {
                Type::Array(elem, _) => {
                    let mut out = Vec::new();
                    for item in items {
                        out.push(self.lower_initializer(item, elem)?);
                    }
                    Ok(Init::Compound(out))
                }
                Type::Comp(cid) => {
                    let fields = self.types.comp(cid).fields.clone();
                    if items.len() > fields.len() {
                        return self.err(*span, "too many initializers for struct");
                    }
                    let mut out = Vec::new();
                    for (i, item) in items.iter().enumerate() {
                        out.push(self.lower_initializer(item, fields[i].ty)?);
                    }
                    Ok(Init::Compound(out))
                }
                _ if items.len() == 1 => self.lower_initializer(&items[0], ty),
                _ => self.err(*span, "brace initializer for scalar type"),
            },
        }
    }

    // ---------------------------------------------------------- expressions

    /// Lowers an expression for its side effects, discarding the value.
    fn lower_expr_discard(&mut self, e: &ast::Expr) -> Result<(), Diag> {
        use ast::ExprKind as K;
        match &e.kind {
            // A call in statement position does not need a result temp.
            K::Call(..) => {
                self.lower_call(e, true)?;
                Ok(())
            }
            K::Assign(..)
            | K::PostIncDec(..)
            | K::Unary(ast::UnOp::PreInc | ast::UnOp::PreDec, _) => {
                self.lower_rvalue(e)?;
                Ok(())
            }
            K::Comma(l, r) => {
                self.lower_expr_discard(l)?;
                self.lower_expr_discard(r)
            }
            _ => {
                // Pure value in statement position: lower (for type errors)
                // and drop.
                self.lower_rvalue(e)?;
                Ok(())
            }
        }
    }

    /// Lowers an expression used as a branch condition (any scalar type).
    fn lower_cond(&mut self, e: &ast::Expr) -> Result<Exp, Diag> {
        let x = self.lower_rvalue(e)?;
        let t = x.ty();
        if self.types.is_arith(t) || self.types.is_ptr(t) {
            Ok(x)
        } else {
            self.err(e.span, "condition must have scalar type")
        }
    }

    /// Lowers an expression to an rvalue, applying array/function decay.
    fn lower_rvalue(&mut self, e: &ast::Expr) -> Result<Exp, Diag> {
        let x = self.lower_expr(e)?;
        Ok(self.decay(x))
    }

    /// Array-to-pointer and function-to-pointer decay.
    fn decay(&mut self, x: Exp) -> Exp {
        match self.types.get(x.ty()).clone() {
            Type::Array(elem, _) => match x {
                Exp::Load(lv, _) => {
                    let pty = self.types.mk_ptr(elem);
                    Exp::StartOf(lv, pty)
                }
                other => other,
            },
            _ => x,
        }
    }

    fn lower_expr(&mut self, e: &ast::Expr) -> Result<Exp, Diag> {
        use ast::ExprKind as K;
        match &e.kind {
            K::IntLit(v, suffix) => {
                let kind = if suffix.unsigned && suffix.long {
                    IntKind::ULong
                } else if suffix.unsigned {
                    IntKind::UInt
                } else if suffix.long {
                    IntKind::Long
                } else if *v <= i32::MAX as u64 {
                    IntKind::Int
                } else {
                    IntKind::Long
                };
                let ty = self.types.mk_int(kind);
                Ok(Exp::int(*v as i128, kind, ty))
            }
            K::FloatLit(v) => {
                let ty = self.types.mk_float(FloatKind::Double);
                Ok(Exp::Const(Const::Float(*v, FloatKind::Double), ty))
            }
            K::CharLit(c) => {
                let ty = self.types.mk_int(IntKind::Int);
                Ok(Exp::int(*c as i128, IntKind::Int, ty))
            }
            K::StrLit(bytes) => {
                let gid = self.string_global(bytes);
                let elem = match self.types.get(self.globals[gid.idx()].ty) {
                    Type::Array(elem, _) => *elem,
                    _ => unreachable!("string global is an array"),
                };
                let pty = self.types.mk_ptr(elem);
                Ok(Exp::StartOf(Box::new(Lval::global(gid)), pty))
            }
            K::Ident(name) => match self.lookup(name).cloned() {
                Some(Binding::Local(l)) => {
                    let ty = self.cur_locals[l.idx()].ty;
                    Ok(Exp::Load(Box::new(Lval::local(l)), ty))
                }
                Some(Binding::Global(g)) => {
                    let ty = self.globals[g.idx()].ty;
                    Ok(Exp::Load(Box::new(Lval::global(g)), ty))
                }
                Some(Binding::Func(f)) => {
                    let fty = self.fn_types[&f.0];
                    let pty = self.types.mk_ptr(fty);
                    Ok(Exp::FnAddr(FnRef::Def(f), pty))
                }
                Some(Binding::Ext(x)) => {
                    let fty = self.externals[x.idx()].ty;
                    let pty = self.types.mk_ptr(fty);
                    Ok(Exp::FnAddr(FnRef::Ext(x), pty))
                }
                Some(Binding::EnumConst(v)) => {
                    let ty = self.types.mk_int(IntKind::Int);
                    Ok(Exp::int(v, IntKind::Int, ty))
                }
                Some(Binding::Typedef(..)) | None => {
                    self.err(e.span, format!("unknown identifier `{name}`"))
                }
            },
            K::Unary(op, inner) => self.lower_unary(*op, inner, e.span),
            K::PostIncDec(inc, inner) => {
                let (lv, ty) = self.lower_lval(inner)?;
                if !self.types.is_arith(ty) && !self.types.is_ptr(ty) {
                    return self.err(e.span, "++/-- requires scalar type");
                }
                let old = self.fresh_temp(ty);
                self.emit(Instr::Set(
                    Lval::local(old),
                    Exp::Load(Box::new(lv.clone()), ty),
                    e.span,
                ));
                let updated = self.incdec_value(&lv, ty, *inc, e.span)?;
                self.emit(Instr::Set(lv, updated, e.span));
                Ok(Exp::Load(Box::new(Lval::local(old)), ty))
            }
            K::Binary(op, l, r) => self.lower_binary(*op, l, r, e.span),
            K::Assign(op, l, r) => {
                let (lv, lty) = self.lower_lval(l)?;
                let value = match op {
                    None => {
                        let x = self.lower_rvalue(r)?;
                        self.coerce(x, lty, e.span)?
                    }
                    Some(op) => {
                        let cur = Exp::Load(Box::new(lv.clone()), lty);
                        let rhs = self.lower_rvalue(r)?;
                        let combined = self.build_binop(*op, cur, rhs, e.span)?;
                        self.coerce(combined, lty, e.span)?
                    }
                };
                self.emit(Instr::Set(lv.clone(), value, e.span));
                Ok(Exp::Load(Box::new(lv), lty))
            }
            K::Cond(c, t, f) => {
                let cond = self.lower_cond(c)?;
                // Lower both arms into sub-blocks writing a shared temp.
                let (t_exp, t_block) = {
                    self.blocks.push(BlockBuilder::new());
                    let r = self.lower_rvalue(t);
                    let b = self.blocks.pop().expect("cond arm");
                    (r?, b)
                };
                let (f_exp, f_block) = {
                    self.blocks.push(BlockBuilder::new());
                    let r = self.lower_rvalue(f);
                    let b = self.blocks.pop().expect("cond arm");
                    (r?, b)
                };
                let result_ty = self.common_type(t_exp.ty(), f_exp.ty(), e.span)?;
                let tmp = self.fresh_temp(result_ty);
                // `coerce` builds cast nodes but never emits instructions, so
                // it is safe to call outside the arm blocks.
                let t_exp = self.coerce(t_exp, result_ty, e.span)?;
                let f_exp = self.coerce(f_exp, result_ty, e.span)?;
                let mut tb = t_block;
                tb.instrs.push(Instr::Set(Lval::local(tmp), t_exp, e.span));
                let mut fb = f_block;
                fb.instrs.push(Instr::Set(Lval::local(tmp), f_exp, e.span));
                self.emit_stmt(Stmt::If(cond, tb.finish(), fb.finish()));
                Ok(Exp::Load(Box::new(Lval::local(tmp)), result_ty))
            }
            K::Cast(tn, inner) => {
                let base = self.type_from_specs(&tn.specs)?;
                let (_, to_ty) = self.apply_declarator(base, &tn.declarator, tn.specs.split)?;
                let x = self.lower_rvalue(inner)?;
                self.cast(x, to_ty, tn.trusted, false, e.span)
            }
            K::SizeofExpr(inner) => {
                // C does not evaluate the operand; lower into a discarded
                // scratch block purely to compute its type.
                self.blocks.push(BlockBuilder::new());
                let r = self.lower_expr(inner);
                self.blocks.pop();
                let x = r?;
                let size = self
                    .types
                    .size_of(x.ty())
                    .map_err(|err| Diag::error(e.span, format!("sizeof: {err}")))?;
                let ty = self.types.mk_int(IntKind::ULong);
                Ok(Exp::SizeOf(x.ty(), size, ty))
            }
            K::SizeofType(tn) => {
                let base = self.type_from_specs(&tn.specs)?;
                let (_, t) = self.apply_declarator(base, &tn.declarator, tn.specs.split)?;
                let size = self
                    .types
                    .size_of(t)
                    .map_err(|err| Diag::error(e.span, format!("sizeof: {err}")))?;
                let ty = self.types.mk_int(IntKind::ULong);
                Ok(Exp::SizeOf(t, size, ty))
            }
            K::Call(..) => {
                let r = self.lower_call(e, false)?;
                Ok(r.expect("non-discarded call returns a value"))
            }
            K::Index(a, i) => {
                let (lv, ty) = self.index_lval(a, i, e.span)?;
                Ok(Exp::Load(Box::new(lv), ty))
            }
            K::Member(obj, field) => {
                let (lv, ty) = self.member_lval(obj, field, false, e.span)?;
                Ok(Exp::Load(Box::new(lv), ty))
            }
            K::Arrow(obj, field) => {
                let (lv, ty) = self.member_lval(obj, field, true, e.span)?;
                Ok(Exp::Load(Box::new(lv), ty))
            }
            K::Comma(l, r) => {
                self.lower_expr_discard(l)?;
                self.lower_rvalue(r)
            }
        }
    }

    fn incdec_value(&mut self, lv: &Lval, ty: TypeId, inc: bool, span: Span) -> Result<Exp, Diag> {
        let cur = Exp::Load(Box::new(lv.clone()), ty);
        let int_ty = self.types.mk_int(IntKind::Int);
        let one = Exp::int(1, IntKind::Int, int_ty);
        if self.types.is_ptr(ty) {
            let op = if inc { BinOp::PlusPI } else { BinOp::MinusPI };
            Ok(Exp::Binop(op, Box::new(cur), Box::new(one), ty))
        } else {
            let op = if inc {
                ast::BinOp::Add
            } else {
                ast::BinOp::Sub
            };
            let v = self.build_binop(op, cur, one, span)?;
            self.coerce(v, ty, span)
        }
    }

    fn lower_unary(&mut self, op: ast::UnOp, inner: &ast::Expr, span: Span) -> Result<Exp, Diag> {
        use ast::UnOp as U;
        match op {
            U::Plus => self.lower_rvalue(inner),
            U::Neg => {
                let x = self.lower_rvalue(inner)?;
                let t = self.promote(x)?;
                let ty = t.ty();
                if !self.types.is_arith(ty) {
                    return self.err(span, "unary minus requires arithmetic type");
                }
                Ok(Exp::Unop(UnOp::Neg, Box::new(t), ty))
            }
            U::BitNot => {
                let x = self.lower_rvalue(inner)?;
                let t = self.promote(x)?;
                let ty = t.ty();
                if !self.types.is_integer(ty) {
                    return self.err(span, "bitwise not requires integer type");
                }
                Ok(Exp::Unop(UnOp::BitNot, Box::new(t), ty))
            }
            U::Not => {
                let x = self.lower_rvalue(inner)?;
                let ty = x.ty();
                if !self.types.is_arith(ty) && !self.types.is_ptr(ty) {
                    return self.err(span, "logical not requires scalar type");
                }
                let int_ty = self.types.mk_int(IntKind::Int);
                Ok(Exp::Unop(UnOp::Not, Box::new(x), int_ty))
            }
            U::Deref => {
                let x = self.lower_rvalue(inner)?;
                let (base, _q) = match self.types.ptr_parts(x.ty()) {
                    Some(p) => p,
                    None => return self.err(span, "dereference of non-pointer"),
                };
                Ok(Exp::Load(Box::new(Lval::deref(x)), base))
            }
            U::Addr => {
                // `&f` for functions is just the function value.
                if let ast::ExprKind::Ident(name) = &inner.kind {
                    match self.lookup(name).cloned() {
                        Some(Binding::Func(_)) | Some(Binding::Ext(_)) => {
                            return self.lower_expr(inner);
                        }
                        _ => {}
                    }
                }
                let (lv, ty) = self.lower_lval(inner)?;
                self.addr_of(lv, ty, span)
            }
            U::PreInc | U::PreDec => {
                let (lv, ty) = self.lower_lval(inner)?;
                if !self.types.is_arith(ty) && !self.types.is_ptr(ty) {
                    return self.err(span, "++/-- requires scalar type");
                }
                let updated = self.incdec_value(&lv, ty, op == U::PreInc, span)?;
                self.emit(Instr::Set(lv.clone(), updated, span));
                Ok(Exp::Load(Box::new(lv), ty))
            }
        }
    }

    /// Builds `&lval`, choosing the paper-mandated qualifier variable: the
    /// variable's address qualifier, the field's address qualifier, or — for
    /// `&a[i]` — pointer arithmetic on the array's decayed pointer.
    fn addr_of(&mut self, lv: Lval, ty: TypeId, span: Span) -> Result<Exp, Diag> {
        // `&a[i]` => decay(a) + i ; `&p[i]` is handled by index_lval which
        // already produced Deref(p + i), covered by the Deref case below.
        if let Some(Offset::Index(_)) = lv.offsets.last() {
            let mut base_lv = lv.clone();
            let idx = match base_lv.offsets.pop() {
                Some(Offset::Index(i)) => i,
                _ => unreachable!("just checked"),
            };
            let base_ty = self.lval_type(&base_lv)?;
            let elem = match self.types.get(base_ty) {
                Type::Array(elem, _) => *elem,
                _ => return self.err(span, "index offset on non-array"),
            };
            let pty = self.types.mk_ptr(elem);
            let start = Exp::StartOf(Box::new(base_lv), pty);
            return Ok(Exp::Binop(
                BinOp::PlusPI,
                Box::new(start),
                Box::new(idx),
                pty,
            ));
        }
        // `&*p` == p.
        if lv.offsets.is_empty() {
            if let LvBase::Deref(e) = lv.base {
                return Ok(*e);
            }
        }
        let qual = match lv.offsets.last() {
            Some(Offset::Field(cid, idx)) => self.types.comp(*cid).fields[*idx].addr_qual,
            Some(Offset::Index(_)) => unreachable!("handled above"),
            None => match &lv.base {
                LvBase::Local(l) => self.cur_locals[l.idx()].addr_qual,
                LvBase::Global(g) => self.globals[g.idx()].addr_qual,
                LvBase::Deref(_) => unreachable!("handled above"),
            },
        };
        let pty = self.types.mk_ptr_with_qual(ty, qual);
        Ok(Exp::AddrOf(Box::new(lv), pty))
    }

    fn lower_binary(
        &mut self,
        op: ast::BinOp,
        l: &ast::Expr,
        r: &ast::Expr,
        span: Span,
    ) -> Result<Exp, Diag> {
        use ast::BinOp as B;
        if matches!(op, B::LogAnd | B::LogOr) {
            // Short-circuit: int tmp; if (l) tmp = (r != 0); else tmp = 0;
            let int_ty = self.types.mk_int(IntKind::Int);
            let tmp = self.fresh_temp(int_ty);
            let cond = self.lower_cond(l)?;
            let rhs_block = self.in_block(|lw| {
                let rx = lw.lower_cond(r)?;
                let zero = Exp::int(0, IntKind::Int, int_ty);
                let as_bool = Exp::Binop(BinOp::Ne, Box::new(rx), Box::new(zero), int_ty);
                lw.emit(Instr::Set(Lval::local(tmp), as_bool, span));
                Ok(())
            })?;
            let const_block = |v: i128| {
                vec![Stmt::Instr(vec![Instr::Set(
                    Lval::local(tmp),
                    Exp::int(v, IntKind::Int, int_ty),
                    span,
                )])]
            };
            let (then_b, else_b) = if op == B::LogAnd {
                (rhs_block, const_block(0))
            } else {
                (const_block(1), rhs_block)
            };
            self.emit_stmt(Stmt::If(cond, then_b, else_b));
            return Ok(Exp::Load(Box::new(Lval::local(tmp)), int_ty));
        }
        let lx = self.lower_rvalue(l)?;
        let rx = self.lower_rvalue(r)?;
        self.build_binop(op, lx, rx, span)
    }

    /// Builds a (non-short-circuit) binary operation with C conversions.
    fn build_binop(&mut self, op: ast::BinOp, lx: Exp, rx: Exp, span: Span) -> Result<Exp, Diag> {
        use ast::BinOp as B;
        let lt = lx.ty();
        let rt = rx.ty();
        let l_ptr = self.types.is_ptr(lt);
        let r_ptr = self.types.is_ptr(rt);

        match op {
            B::Add if l_ptr && self.types.is_integer(rt) => {
                return Ok(Exp::Binop(BinOp::PlusPI, Box::new(lx), Box::new(rx), lt));
            }
            B::Add if r_ptr && self.types.is_integer(lt) => {
                return Ok(Exp::Binop(BinOp::PlusPI, Box::new(rx), Box::new(lx), rt));
            }
            B::Sub if l_ptr && self.types.is_integer(rt) => {
                return Ok(Exp::Binop(BinOp::MinusPI, Box::new(lx), Box::new(rx), lt));
            }
            B::Sub if l_ptr && r_ptr => {
                let ty = self.types.mk_int(IntKind::Long);
                return Ok(Exp::Binop(BinOp::MinusPP, Box::new(lx), Box::new(rx), ty));
            }
            _ => {}
        }

        if op.is_comparison() {
            let int_ty = self.types.mk_int(IntKind::Int);
            let bop = comparison_op(op);
            if l_ptr || r_ptr {
                // Pointer comparisons (possibly against the null constant).
                let (lx, rx) = if l_ptr && !r_ptr {
                    let rx = self.coerce(rx, lt, span)?;
                    (lx, rx)
                } else if r_ptr && !l_ptr {
                    let lx = self.coerce(lx, rt, span)?;
                    (lx, rx)
                } else {
                    (lx, rx)
                };
                return Ok(Exp::Binop(bop, Box::new(lx), Box::new(rx), int_ty));
            }
            let (lx, rx) = self.arith_pair(lx, rx, span)?;
            return Ok(Exp::Binop(bop, Box::new(lx), Box::new(rx), int_ty));
        }

        // Shifts: usual promotion of each operand separately.
        if matches!(op, B::Shl | B::Shr) {
            let lx = self.promote(lx)?;
            let rx = self.promote(rx)?;
            let ty = lx.ty();
            if !self.types.is_integer(ty) || !self.types.is_integer(rx.ty()) {
                return self.err(span, "shift requires integer operands");
            }
            let bop = if op == B::Shl { BinOp::Shl } else { BinOp::Shr };
            return Ok(Exp::Binop(bop, Box::new(lx), Box::new(rx), ty));
        }

        let (lx, rx) = self.arith_pair(lx, rx, span)?;
        let ty = lx.ty();
        let bop = match op {
            B::Add => BinOp::Add,
            B::Sub => BinOp::Sub,
            B::Mul => BinOp::Mul,
            B::Div => BinOp::Div,
            B::Rem => BinOp::Rem,
            B::BitAnd => BinOp::BitAnd,
            B::BitXor => BinOp::BitXor,
            B::BitOr => BinOp::BitOr,
            B::Shl | B::Shr | B::LogAnd | B::LogOr => unreachable!("handled above"),
            _ => return self.err(span, "invalid operand types"),
        };
        if matches!(
            bop,
            BinOp::Rem | BinOp::BitAnd | BinOp::BitXor | BinOp::BitOr
        ) && !self.types.is_integer(ty)
        {
            return self.err(span, "operator requires integer operands");
        }
        Ok(Exp::Binop(bop, Box::new(lx), Box::new(rx), ty))
    }

    /// Integer promotion of a single operand.
    fn promote(&mut self, x: Exp) -> Result<Exp, Diag> {
        let ty = x.ty();
        if let Type::Int(k) = self.types.get(ty) {
            let promoted = match k {
                IntKind::Char
                | IntKind::SChar
                | IntKind::UChar
                | IntKind::Short
                | IntKind::UShort => Some(IntKind::Int),
                _ => None,
            };
            if let Some(pk) = promoted {
                let pt = self.types.mk_int(pk);
                return self.numeric_cast(x, pt);
            }
        }
        Ok(x)
    }

    /// Usual arithmetic conversions for a pair of operands.
    fn arith_pair(&mut self, lx: Exp, rx: Exp, span: Span) -> Result<(Exp, Exp), Diag> {
        let lx = self.promote(lx)?;
        let rx = self.promote(rx)?;
        let lt = lx.ty();
        let rt = rx.ty();
        if !self.types.is_arith(lt) || !self.types.is_arith(rt) {
            return self.err(span, "operator requires arithmetic operands");
        }
        let common = self.common_arith(lt, rt);
        let lx = self.numeric_cast(lx, common)?;
        let rx = self.numeric_cast(rx, common)?;
        Ok((lx, rx))
    }

    fn common_arith(&mut self, a: TypeId, b: TypeId) -> TypeId {
        use FloatKind::*;
        let at = self.types.get(a).clone();
        let bt = self.types.get(b).clone();
        match (at, bt) {
            (Type::Float(Double), _) | (_, Type::Float(Double)) => self.types.mk_float(Double),
            (Type::Float(Float), _) | (_, Type::Float(Float)) => self.types.mk_float(Float),
            (Type::Int(x), Type::Int(y)) => {
                let sx = self.types.machine.int_size(x);
                let sy = self.types.machine.int_size(y);
                let k = if sx > sy {
                    x
                } else if sy > sx {
                    y
                } else if !x.is_signed() {
                    x
                } else {
                    y
                };
                self.types.mk_int(k)
            }
            _ => a,
        }
    }

    /// The common type for the two arms of `?:`.
    fn common_type(&mut self, a: TypeId, b: TypeId, span: Span) -> Result<TypeId, Diag> {
        if self.types.same_type(a, b) {
            return Ok(a);
        }
        if self.types.is_arith(a) && self.types.is_arith(b) {
            return Ok(self.common_arith(a, b));
        }
        if self.types.is_ptr(a) && self.types.is_ptr(b) {
            // Prefer the non-void side; otherwise the first.
            let av = matches!(
                self.types
                    .ptr_parts(a)
                    .map(|(b, _)| self.types.get(b).clone()),
                Some(Type::Void)
            );
            return Ok(if av { b } else { a });
        }
        if self.types.is_ptr(a) && self.types.is_integer(b) {
            return Ok(a);
        }
        if self.types.is_integer(a) && self.types.is_ptr(b) {
            return Ok(b);
        }
        self.err(span, "incompatible types in conditional expression")
    }

    /// A numeric (arith-to-arith) conversion; no cast site recorded.
    fn numeric_cast(&mut self, x: Exp, to: TypeId) -> Result<Exp, Diag> {
        if self.types.same_type(x.ty(), to) {
            return Ok(x);
        }
        let id = CastId(self.casts.len() as u32);
        self.casts.push(CastSite {
            from: x.ty(),
            to,
            trusted: false,
            implicit: true,
            from_zero: x.is_zero(),
            alloc: false,
            span: Span::DUMMY,
        });
        Ok(Exp::Cast(id, Box::new(x), to))
    }

    fn null_ptr(&mut self, ptr_ty: TypeId, span: Span) -> Exp {
        let int_ty = self.types.mk_int(IntKind::Int);
        let zero = Exp::int(0, IntKind::Int, int_ty);
        let id = CastId(self.casts.len() as u32);
        self.casts.push(CastSite {
            from: int_ty,
            to: ptr_ty,
            trusted: false,
            implicit: true,
            from_zero: true,
            alloc: false,
            span,
        });
        Exp::Cast(id, Box::new(zero), ptr_ty)
    }

    /// Records and builds a cast from `x` to `to`.
    fn cast(
        &mut self,
        x: Exp,
        to: TypeId,
        trusted: bool,
        implicit: bool,
        span: Span,
    ) -> Result<Exp, Diag> {
        let from = x.ty();
        // Reject nonsensical casts early; pointer<->pointer, pointer<->int
        // and arith<->arith are all allowed.
        let ok = (self.types.is_arith(from) || self.types.is_ptr(from))
            && (self.types.is_arith(to)
                || self.types.is_ptr(to)
                || matches!(self.types.get(to), Type::Void));
        if !ok {
            return self.err(span, "invalid cast");
        }
        if matches!(self.types.get(to), Type::Void) {
            // (void)e: evaluate and discard; represent as the operand.
            return Ok(x);
        }
        let id = CastId(self.casts.len() as u32);
        self.casts.push(CastSite {
            from,
            to,
            trusted,
            implicit,
            from_zero: x.is_zero(),
            alloc: self.is_fresh_alloc(&x),
            span,
        });
        Ok(Exp::Cast(id, Box::new(x), to))
    }

    /// Whether `x` loads a temporary that was just assigned the result of
    /// an allocator call (`(T *)malloc(n)` and friends): such casts type
    /// fresh memory and are statically safe.
    fn is_fresh_alloc(&self, x: &Exp) -> bool {
        let lv = match x {
            Exp::Load(lv, _) => lv,
            _ => return false,
        };
        let tmp = match (&lv.base, lv.offsets.is_empty()) {
            (LvBase::Local(l), true) => *l,
            _ => return false,
        };
        if !self.cur_locals.get(tmp.idx()).is_some_and(|l| l.is_temp) {
            return false;
        }
        let last = self.blocks.last().and_then(|b| b.instrs.last());
        match last {
            Some(Instr::Call(Some(ret), Callee::Extern(x), _, _)) => {
                matches!((&ret.base, ret.offsets.is_empty()), (LvBase::Local(l), true) if *l == tmp)
                    && is_alloc_fn(&self.externals[x.idx()].name)
            }
            _ => false,
        }
    }

    /// Implicit conversion of `x` to `to` (assignment, argument, return).
    fn coerce(&mut self, x: Exp, to: TypeId, span: Span) -> Result<Exp, Diag> {
        let from = x.ty();
        if self.types.same_type(from, to) {
            return Ok(x);
        }
        if self.types.is_arith(from) && self.types.is_arith(to) {
            return self.numeric_cast(x, to);
        }
        if self.types.is_ptr(to) && (self.types.is_ptr(from) || self.types.is_integer(from)) {
            return self.cast(x, to, false, true, span);
        }
        if self.types.is_integer(to) && self.types.is_ptr(from) {
            return self.cast(x, to, false, true, span);
        }
        self.err(
            span,
            format!(
                "incompatible types: cannot convert `{}` to `{}`",
                self.types.display(from),
                self.types.display(to)
            ),
        )
    }

    // --------------------------------------------------------------- lvalues

    /// The type of an lvalue (base type plus offsets).
    fn lval_type(&self, lv: &Lval) -> Result<TypeId, Diag> {
        let mut ty = match &lv.base {
            LvBase::Local(l) => self.cur_locals[l.idx()].ty,
            LvBase::Global(g) => self.globals[g.idx()].ty,
            LvBase::Deref(e) => match self.types.ptr_parts(e.ty()) {
                Some((base, _)) => base,
                None => return Err(Diag::error(Span::DUMMY, "deref of non-pointer lvalue base")),
            },
        };
        for off in &lv.offsets {
            ty = match off {
                Offset::Field(cid, idx) => self.types.comp(*cid).fields[*idx].ty,
                Offset::Index(_) => match self.types.get(ty) {
                    Type::Array(elem, _) => *elem,
                    _ => return Err(Diag::error(Span::DUMMY, "index offset on non-array")),
                },
            };
        }
        Ok(ty)
    }

    /// Lowers an expression as an assignable lvalue.
    fn lower_lval(&mut self, e: &ast::Expr) -> Result<(Lval, TypeId), Diag> {
        use ast::ExprKind as K;
        match &e.kind {
            K::Ident(name) => match self.lookup(name).cloned() {
                Some(Binding::Local(l)) => {
                    let ty = self.cur_locals[l.idx()].ty;
                    Ok((Lval::local(l), ty))
                }
                Some(Binding::Global(g)) => {
                    let ty = self.globals[g.idx()].ty;
                    Ok((Lval::global(g), ty))
                }
                _ => self.err(e.span, format!("`{name}` is not an assignable variable")),
            },
            K::Unary(ast::UnOp::Deref, inner) => {
                let x = self.lower_rvalue(inner)?;
                let (base, _) = match self.types.ptr_parts(x.ty()) {
                    Some(p) => p,
                    None => return self.err(e.span, "dereference of non-pointer"),
                };
                Ok((Lval::deref(x), base))
            }
            K::Index(a, i) => self.index_lval(a, i, e.span),
            K::Member(obj, field) => self.member_lval(obj, field, false, e.span),
            K::Arrow(obj, field) => self.member_lval(obj, field, true, e.span),
            K::Cast(..) => self.err(e.span, "cast expressions are not lvalues"),
            _ => self.err(e.span, "expression is not an lvalue"),
        }
    }

    fn index_lval(
        &mut self,
        a: &ast::Expr,
        i: &ast::Expr,
        span: Span,
    ) -> Result<(Lval, TypeId), Diag> {
        let ix = self.lower_rvalue(i)?;
        if !self.types.is_integer(ix.ty()) {
            return self.err(span, "array index must have integer type");
        }
        // If the base is an array lvalue, use an Index offset (checked
        // against the static bound); otherwise pointer arithmetic + deref.
        let base = self.lower_expr(a)?;
        match self.types.get(base.ty()).clone() {
            Type::Array(elem, _) => match base {
                Exp::Load(mut lv, _) => {
                    lv.offsets.push(Offset::Index(ix));
                    Ok((*lv, elem))
                }
                other => {
                    // An array rvalue that is not a load (cannot happen for
                    // well-formed C); decay defensively.
                    let decayed = self.decay(other);
                    let pty = decayed.ty();
                    let moved = Exp::Binop(BinOp::PlusPI, Box::new(decayed), Box::new(ix), pty);
                    Ok((Lval::deref(moved), elem))
                }
            },
            Type::Ptr(elem, _) => {
                let pty = base.ty();
                let moved = Exp::Binop(BinOp::PlusPI, Box::new(base), Box::new(ix), pty);
                Ok((Lval::deref(moved), elem))
            }
            _ => self.err(span, "indexed expression is neither array nor pointer"),
        }
    }

    fn member_lval(
        &mut self,
        obj: &ast::Expr,
        field: &str,
        arrow: bool,
        span: Span,
    ) -> Result<(Lval, TypeId), Diag> {
        let (mut lv, comp_ty) = if arrow {
            let x = self.lower_rvalue(obj)?;
            let (base, _) = match self.types.ptr_parts(x.ty()) {
                Some(p) => p,
                None => return self.err(span, "`->` on non-pointer"),
            };
            (Lval::deref(x), base)
        } else {
            self.lower_lval(obj)?
        };
        let cid = match self.types.get(comp_ty) {
            Type::Comp(c) => *c,
            _ => return self.err(span, "member access on non-struct"),
        };
        if !self.types.comp(cid).defined {
            return self.err(
                span,
                format!("struct `{}` is incomplete here", self.types.comp(cid).name),
            );
        }
        let idx = match self.types.field_index(cid, field) {
            Some(i) => i,
            None => {
                return self.err(
                    span,
                    format!("no field `{field}` in `{}`", self.types.comp(cid).name),
                )
            }
        };
        let fty = self.types.comp(cid).fields[idx].ty;
        lv.offsets.push(Offset::Field(cid, idx));
        Ok((lv, fty))
    }

    // ----------------------------------------------------------------- calls

    fn lower_call(&mut self, e: &ast::Expr, discard: bool) -> Result<Option<Exp>, Diag> {
        let (callee_ast, args_ast) = match &e.kind {
            ast::ExprKind::Call(f, args) => (f.as_ref(), args),
            _ => unreachable!("lower_call on non-call"),
        };
        // Resolve the callee.
        let (callee, sig) = match &callee_ast.kind {
            ast::ExprKind::Ident(name) => match self.lookup(name).cloned() {
                Some(Binding::Func(f)) => {
                    let sig = match self.types.get(self.fn_types[&f.0]) {
                        Type::Func(s) => s.clone(),
                        _ => unreachable!(),
                    };
                    (Callee::Func(f), sig)
                }
                Some(Binding::Ext(x)) => {
                    let sig = match self.types.get(self.externals[x.idx()].ty) {
                        Type::Func(s) => s.clone(),
                        _ => unreachable!(),
                    };
                    (Callee::Extern(x), sig)
                }
                Some(_) => {
                    let x = self.lower_rvalue(callee_ast)?;
                    let sig = self.fn_ptr_sig(x.ty(), callee_ast.span)?;
                    (Callee::Ptr(x), sig)
                }
                None => {
                    return self.err(
                        callee_ast.span,
                        format!("call to undeclared function `{name}`"),
                    )
                }
            },
            _ => {
                let x = self.lower_rvalue(callee_ast)?;
                let sig = self.fn_ptr_sig(x.ty(), callee_ast.span)?;
                (Callee::Ptr(x), sig)
            }
        };
        if args_ast.len() < sig.params.len() || (args_ast.len() > sig.params.len() && !sig.varargs)
        {
            return self.err(
                e.span,
                format!(
                    "wrong number of arguments: expected {}{}, got {}",
                    sig.params.len(),
                    if sig.varargs { "+" } else { "" },
                    args_ast.len()
                ),
            );
        }
        // CCured helper externals (`__ptrof`, `__mkptr`, ...) are
        // polymorphic: their arguments are passed without coercion so that
        // no spurious cast sites are fabricated at wrapper boundaries.
        let polymorphic_helper = matches!(
            &callee,
            Callee::Extern(x) if self.externals[x.idx()].name.starts_with("__")
        );
        let mut args = Vec::with_capacity(args_ast.len());
        for (i, a) in args_ast.iter().enumerate() {
            let x = self.lower_rvalue(a)?;
            let x = if polymorphic_helper {
                x
            } else if i < sig.params.len() {
                self.coerce(x, sig.params[i], a.span)?
            } else {
                // Default argument promotions for varargs.
                let x = self.promote(x)?;
                if matches!(self.types.get(x.ty()), Type::Float(FloatKind::Float)) {
                    let d = self.types.mk_float(FloatKind::Double);
                    self.numeric_cast(x, d)?
                } else {
                    x
                }
            };
            args.push(x);
        }
        let is_void = matches!(self.types.get(sig.ret), Type::Void);
        if discard || is_void {
            self.emit(Instr::Call(None, callee, args, e.span));
            if is_void && !discard {
                return self.err(e.span, "void value used in expression");
            }
            return Ok(None);
        }
        let tmp = self.fresh_temp(sig.ret);
        self.emit(Instr::Call(Some(Lval::local(tmp)), callee, args, e.span));
        Ok(Some(Exp::Load(Box::new(Lval::local(tmp)), sig.ret)))
    }

    fn fn_ptr_sig(&self, ty: TypeId, span: Span) -> Result<FuncSig, Diag> {
        let (base, _) = match self.types.ptr_parts(ty) {
            Some(p) => p,
            None => return Err(Diag::error(span, "called value is not a function pointer")),
        };
        match self.types.get(base) {
            Type::Func(s) => Ok(s.clone()),
            _ => Err(Diag::error(span, "called value is not a function pointer")),
        }
    }

    // --------------------------------------------------------------- strings

    fn string_global(&mut self, bytes: &[u8]) -> GlobalId {
        if let Some(&g) = self.str_globals.get(bytes) {
            return g;
        }
        let char_ty = self.types.mk_int(IntKind::Char);
        let arr = self.types.mk_array(char_ty, Some(bytes.len() as u64 + 1));
        let name = format!("__str{}", self.next_str);
        self.next_str += 1;
        let q = self.types.fresh_qual();
        let mut data = bytes.to_vec();
        data.push(0);
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            name,
            ty: arr,
            addr_qual: q,
            init: Some(Init::String(data)),
            is_extern: false,
            span: Span::DUMMY,
        });
        self.str_globals.insert(bytes.to_vec(), id);
        id
    }
}

fn comparison_op(op: ast::BinOp) -> BinOp {
    match op {
        ast::BinOp::Lt => BinOp::Lt,
        ast::BinOp::Gt => BinOp::Gt,
        ast::BinOp::Le => BinOp::Le,
        ast::BinOp::Ge => BinOp::Ge,
        ast::BinOp::Eq => BinOp::Eq,
        ast::BinOp::Ne => BinOp::Ne,
        _ => unreachable!("not a comparison"),
    }
}

/// Whether an external function name is a known allocator whose result is
/// freshly typed by the receiving cast (treated polymorphically, as in
/// CCured's handling of `malloc`).
pub fn is_alloc_fn(name: &str) -> bool {
    matches!(
        name,
        "malloc"
            | "calloc"
            | "realloc"
            | "free"
            | "xmalloc"
            | "xcalloc"
            | "emalloc"
            | "ap_palloc"
            | "ap_pcalloc"
    )
}

fn parse_two_strings(s: &str) -> Option<(String, String)> {
    let s = s.trim().strip_prefix('(')?.strip_suffix(')')?;
    let mut parts = Vec::new();
    for p in s.split(',') {
        let p = p.trim().strip_prefix('"')?.strip_suffix('"')?;
        parts.push(p.to_string());
    }
    if parts.len() == 2 {
        let b = parts.pop()?;
        let a = parts.pop()?;
        Some((a, b))
    } else {
        None
    }
}

fn parse_ident_arg(s: &str) -> Option<String> {
    let s = s.trim().strip_prefix('(')?.strip_suffix(')')?.trim();
    if !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Some(s.to_string())
    } else {
        None
    }
}

// -------------------------------------------------------- forward-call fixup

fn rewrite_stmt(s: &mut Stmt, map: &HashMap<u32, FuncId>) {
    match s {
        Stmt::Instr(is) => {
            for i in is {
                rewrite_instr(i, map);
            }
        }
        Stmt::If(c, t, e) => {
            rewrite_exp(c, map);
            for s in t.iter_mut().chain(e.iter_mut()) {
                rewrite_stmt(s, map);
            }
        }
        Stmt::Loop(b) | Stmt::Block(b) => {
            for s in b {
                rewrite_stmt(s, map);
            }
        }
        Stmt::Return(Some(e)) => rewrite_exp(e, map),
        Stmt::Switch(e, arms) => {
            rewrite_exp(e, map);
            for arm in arms {
                for s in &mut arm.body {
                    rewrite_stmt(s, map);
                }
            }
        }
        _ => {}
    }
}

fn rewrite_instr(i: &mut Instr, map: &HashMap<u32, FuncId>) {
    match i {
        Instr::Set(lv, e, _) => {
            rewrite_lval(lv, map);
            rewrite_exp(e, map);
        }
        Instr::Check(..) => {}
        Instr::Call(lv, callee, args, _) => {
            if let Some(lv) = lv {
                rewrite_lval(lv, map);
            }
            match callee {
                Callee::Extern(x) => {
                    if let Some(f) = map.get(&x.0) {
                        *callee = Callee::Func(*f);
                    }
                }
                Callee::Ptr(e) => rewrite_exp(e, map),
                Callee::Func(_) => {}
            }
            for a in args {
                rewrite_exp(a, map);
            }
        }
    }
}

fn rewrite_lval(lv: &mut Lval, map: &HashMap<u32, FuncId>) {
    if let LvBase::Deref(e) = &mut lv.base {
        rewrite_exp(e, map);
    }
    for off in &mut lv.offsets {
        if let Offset::Index(e) = off {
            rewrite_exp(e, map);
        }
    }
}

fn rewrite_exp(e: &mut Exp, map: &HashMap<u32, FuncId>) {
    match e {
        Exp::FnAddr(FnRef::Ext(x), _) => {
            if let Some(f) = map.get(&x.0) {
                *e = match e {
                    Exp::FnAddr(_, t) => Exp::FnAddr(FnRef::Def(*f), *t),
                    _ => unreachable!(),
                };
            }
        }
        Exp::Load(lv, _) | Exp::AddrOf(lv, _) | Exp::StartOf(lv, _) => rewrite_lval(lv, map),
        Exp::Unop(_, x, _) | Exp::Cast(_, x, _) => rewrite_exp(x, map),
        Exp::Binop(_, a, b, _) => {
            rewrite_exp(a, map);
            rewrite_exp(b, map);
        }
        _ => {}
    }
}

fn rewrite_init(init: &mut Init, map: &HashMap<u32, FuncId>) {
    match init {
        Init::Scalar(e) => rewrite_exp(e, map),
        Init::Compound(items) => {
            for i in items {
                rewrite_init(i, map);
            }
        }
        Init::String(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_ok(src: &str) -> Program {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        lower_translation_unit(&tu).expect("lower")
    }

    fn lower_err(src: &str) -> String {
        // Either frontend stage may reject: the parser catches malformed
        // declarations (e.g. unknown type names), lowering catches the rest.
        match ccured_ast::parse_translation_unit(src) {
            Err(d) => d.msg,
            Ok(tu) => match lower_translation_unit(&tu) {
                Err(d) => d.msg,
                Ok(_) => panic!("expected a frontend error for:\n{src}"),
            },
        }
    }

    #[test]
    fn reports_unknown_identifier() {
        let msg = lower_err("int main(void) { return mystery; }");
        assert!(msg.contains("mystery"), "{msg}");
    }

    #[test]
    fn reports_call_to_undeclared_function() {
        let msg = lower_err("int main(void) { return frob(1); }");
        assert!(msg.contains("undeclared") && msg.contains("frob"), "{msg}");
    }

    #[test]
    fn reports_deref_of_non_pointer() {
        let msg = lower_err("int main(void) { int x = 1; return *x; }");
        assert!(msg.contains("non-pointer"), "{msg}");
    }

    #[test]
    fn reports_missing_struct_field() {
        let msg = lower_err(
            "struct P { int x; };\n\
             int main(void) { struct P p; p.x = 1; return p.z; }",
        );
        assert!(msg.contains("no field `z`"), "{msg}");
    }

    #[test]
    fn reports_member_access_on_non_struct() {
        let msg = lower_err("int main(void) { int x = 1; return x.field; }");
        assert!(msg.contains("non-struct"), "{msg}");
    }

    #[test]
    fn reports_wrong_argument_count() {
        let msg = lower_err(
            "int f(int a, int b) { return a + b; }\n\
             int main(void) { return f(1); }",
        );
        assert!(msg.contains("expected 2") && msg.contains("got 1"), "{msg}");
    }

    #[test]
    fn reports_struct_redefinition() {
        let msg =
            lower_err("struct S { int a; }; struct S { int b; }; int main(void) { return 0; }");
        assert!(msg.contains("redefinition"), "{msg}");
    }

    #[test]
    fn reports_negative_array_length() {
        let msg = lower_err("int main(void) { int a[-3]; return 0; }");
        assert!(msg.contains("negative"), "{msg}");
    }

    #[test]
    fn reports_continue_outside_loop() {
        let msg = lower_err("int main(void) { continue; }");
        assert!(msg.contains("continue"), "{msg}");
    }

    #[test]
    fn reports_void_value_use() {
        let msg = lower_err(
            "void f(void) { }\n\
             int main(void) { return f(); }",
        );
        assert!(msg.contains("void value"), "{msg}");
    }

    #[test]
    fn reports_incompatible_assignment() {
        let msg = lower_err(
            "struct A { int x; };\n\
             int main(void) { struct A a; int *p; p = a; return 0; }",
        );
        assert!(
            msg.contains("incompatible") || msg.contains("not an lvalue"),
            "{msg}"
        );
    }

    #[test]
    fn reports_variadic_definition() {
        let msg = lower_err("int f(int a, ...) { return a; }");
        assert!(msg.contains("variadic"), "{msg}");
    }

    #[test]
    fn reports_unknown_type_name() {
        let msg = lower_err("int main(void) { size_t n = 0; return (int)n; }");
        assert!(msg.contains("size_t"), "{msg}");
    }

    #[test]
    fn string_literals_are_interned() {
        let p = lower_ok(
            "char *a = \"dup\"; char *b = \"dup\"; char *c = \"other\";\n\
             int main(void) { return 0; }",
        );
        let strs = p
            .globals
            .iter()
            .filter(|g| g.name.starts_with("__str"))
            .count();
        assert_eq!(strs, 2, "identical literals share a global");
    }

    #[test]
    fn alloc_cast_detection_positive_and_negative() {
        let p = lower_ok(
            "extern void *malloc(unsigned long n);\n\
             int *get(int *q) { return q; }\n\
             int main(void) {\n\
               int *fresh = (int *)malloc(8);          /* alloc cast */\n\
               void *v = (void *)fresh;\n\
               int *laundered = (int *)v;              /* NOT an alloc cast */\n\
               return (fresh != 0) + (laundered != 0);\n\
             }",
        );
        let allocs = p.casts.iter().filter(|c| c.alloc).count();
        assert_eq!(allocs, 1, "exactly the direct malloc cast is alloc-typed");
    }

    #[test]
    fn wrapper_pragma_parsing() {
        let p = lower_ok(
            "#pragma ccuredWrapperOf(\"w\", \"f\")\n\
             #pragma ccured_split(g)\n\
             #pragma ccured_trusted(t)\n\
             #pragma something_else entirely\n\
             int main(void) { return 0; }",
        );
        assert!(
            matches!(&p.pragmas[0], CcuredPragma::WrapperOf { wrapper, external }
            if wrapper == "w" && external == "f")
        );
        assert!(matches!(&p.pragmas[1], CcuredPragma::SplitVar(n) if n == "g"));
        assert!(matches!(&p.pragmas[2], CcuredPragma::TrustedFn(n) if n == "t"));
        assert!(matches!(&p.pragmas[3], CcuredPragma::Unknown(_)));
    }

    #[test]
    fn for_loop_continue_goes_through_step() {
        // The continue in a for loop must execute the step: lowered as a
        // goto to a label before the step instructions.
        let p = lower_ok(
            "int main(void) {\n\
               int s = 0;\n\
               for (int i = 0; i < 4; i++) { if (i == 2) continue; s += i; }\n\
               return s;\n\
             }",
        );
        let f = &p.functions[0];
        fn has_goto(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Goto(l) => l.starts_with("__cont"),
                Stmt::If(_, t, e) => has_goto(t) || has_goto(e),
                Stmt::Loop(b) | Stmt::Block(b) => has_goto(b),
                _ => false,
            })
        }
        assert!(has_goto(&f.body));
    }

    #[test]
    fn every_syntactic_pointer_gets_its_own_qual() {
        let p = lower_ok("int *a; int *b; int main(void) { return 0; }");
        let qa = p.types.ptr_parts(p.globals[0].ty).unwrap().1;
        let qb = p.types.ptr_parts(p.globals[1].ty).unwrap().1;
        assert_ne!(qa, qb, "per-occurrence qualifier variables");
    }

    #[test]
    fn implicit_conversions_record_cast_sites() {
        let p = lower_ok(
            "void take(void *v) { }\n\
             int main(void) { int x = 1; take(&x); long n = x; return (int)n; }",
        );
        // &x -> void* records an implicit pointer cast.
        assert!(p
            .casts
            .iter()
            .any(|c| c.implicit && p.types.is_ptr(c.from) && p.types.is_ptr(c.to)));
    }
}
