//! Human-readable dumps of the CIL-like IR, for debugging and golden tests.

use crate::ir::*;
use std::fmt::Write as _;

/// Renders a whole program: the declaration header followed by every
/// function block. Defined as the concatenation of [`dump_decls`] and
/// [`dump_function`] so per-function renders can be spliced back together
/// byte-identically (the incremental recure path relies on this).
pub fn dump_program(p: &Program) -> String {
    let mut out = dump_decls(p);
    for f in &p.functions {
        out.push_str(&dump_function(p, f));
    }
    out
}

/// Renders the program header: global and extern declaration lines.
pub fn dump_decls(p: &Program) -> String {
    let mut out = String::new();
    for g in &p.globals {
        let _ = writeln!(
            out,
            "global {}: {}{}",
            g.name,
            p.types.display(g.ty),
            if g.init.is_some() { " = <init>" } else { "" }
        );
    }
    for e in &p.externals {
        if !e.name.is_empty() {
            let _ = writeln!(out, "extern {}: {}", e.name, p.types.display(e.ty));
        }
    }
    out
}

/// Renders one function block exactly as it appears in [`dump_program`].
pub fn dump_function(p: &Program, f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fn {}: {} {{", f.name, p.types.display(f.ty));
    for (i, l) in f.locals.iter().enumerate() {
        let kind = if l.is_param {
            "param"
        } else if l.is_temp {
            "temp"
        } else {
            "local"
        };
        let _ = writeln!(out, "  {kind} %{i} {}: {}", l.name, p.types.display(l.ty));
    }
    for s in &f.body {
        dump_stmt(p, s, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn dump_stmt(p: &Program, s: &Stmt, depth: usize, out: &mut String) {
    match s {
        Stmt::Instr(is) => {
            for i in is {
                indent(depth, out);
                let _ = writeln!(out, "{}", dump_instr(p, i));
            }
        }
        Stmt::If(c, t, e) => {
            indent(depth, out);
            let _ = writeln!(out, "if {} {{", dump_exp(p, c));
            for s in t {
                dump_stmt(p, s, depth + 1, out);
            }
            if !e.is_empty() {
                indent(depth, out);
                out.push_str("} else {\n");
                for s in e {
                    dump_stmt(p, s, depth + 1, out);
                }
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::Loop(b) => {
            indent(depth, out);
            out.push_str("loop {\n");
            for s in b {
                dump_stmt(p, s, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::Block(b) => {
            indent(depth, out);
            out.push_str("{\n");
            for s in b {
                dump_stmt(p, s, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::Break => {
            indent(depth, out);
            out.push_str("break\n");
        }
        Stmt::Continue => {
            indent(depth, out);
            out.push_str("continue\n");
        }
        Stmt::Return(None) => {
            indent(depth, out);
            out.push_str("return\n");
        }
        Stmt::Return(Some(e)) => {
            indent(depth, out);
            let _ = writeln!(out, "return {}", dump_exp(p, e));
        }
        Stmt::Goto(l) => {
            indent(depth, out);
            let _ = writeln!(out, "goto {l}");
        }
        Stmt::Label(l) => {
            indent(depth, out);
            let _ = writeln!(out, "{l}:");
        }
        Stmt::Switch(e, arms) => {
            indent(depth, out);
            let _ = writeln!(out, "switch {} {{", dump_exp(p, e));
            for arm in arms {
                indent(depth + 1, out);
                if arm.values.is_empty() {
                    out.push_str("default:\n");
                } else {
                    let vals: Vec<String> = arm.values.iter().map(|v| v.to_string()).collect();
                    let _ = writeln!(out, "case {}:", vals.join(", "));
                }
                for s in &arm.body {
                    dump_stmt(p, s, depth + 2, out);
                }
            }
            indent(depth, out);
            out.push_str("}\n");
        }
    }
}

/// Renders one instruction.
pub fn dump_instr(p: &Program, i: &Instr) -> String {
    match i {
        Instr::Set(lv, e, _) => format!("{} = {}", dump_lval(p, lv), dump_exp(p, e)),
        Instr::Check(c, _, _) => format!("CHECK_{}", c.name().to_uppercase()),
        Instr::Call(ret, callee, args, _) => {
            let args: Vec<String> = args.iter().map(|a| dump_exp(p, a)).collect();
            let callee = match callee {
                Callee::Func(f) => p.functions[f.idx()].name.clone(),
                Callee::Extern(x) => format!("extern:{}", p.externals[x.idx()].name),
                Callee::Ptr(e) => format!("(*{})", dump_exp(p, e)),
            };
            match ret {
                Some(lv) => format!("{} = {}({})", dump_lval(p, lv), callee, args.join(", ")),
                None => format!("{}({})", callee, args.join(", ")),
            }
        }
    }
}

/// Renders one lvalue.
pub fn dump_lval(p: &Program, lv: &Lval) -> String {
    let mut s = match &lv.base {
        LvBase::Local(l) => format!("%{}", l.0),
        LvBase::Global(g) => p.globals[g.idx()].name.clone(),
        LvBase::Deref(e) => format!("*({})", dump_exp(p, e)),
    };
    for off in &lv.offsets {
        match off {
            Offset::Field(c, i) => {
                let _ = write!(s, ".{}", p.types.comp(*c).fields[*i].name);
            }
            Offset::Index(e) => {
                let _ = write!(s, "[{}]", dump_exp(p, e));
            }
        }
    }
    s
}

/// Renders one expression.
pub fn dump_exp(p: &Program, e: &Exp) -> String {
    match e {
        Exp::Const(Const::Int(v, _), _) => v.to_string(),
        Exp::Const(Const::Float(v, _), _) => format!("{v}"),
        Exp::Load(lv, _) => dump_lval(p, lv),
        Exp::AddrOf(lv, _) => format!("&{}", dump_lval(p, lv)),
        Exp::StartOf(lv, _) => format!("startof({})", dump_lval(p, lv)),
        Exp::FnAddr(FnRef::Def(f), _) => format!("&{}", p.functions[f.idx()].name),
        Exp::FnAddr(FnRef::Ext(x), _) => format!("&extern:{}", p.externals[x.idx()].name),
        Exp::Unop(op, x, _) => format!("{}({})", unop_str(*op), dump_exp(p, x)),
        Exp::Binop(op, a, b, _) => {
            format!("({} {} {})", dump_exp(p, a), binop_str(*op), dump_exp(p, b))
        }
        Exp::Cast(id, x, t) => {
            let trusted = if p.casts[id.idx()].trusted {
                " trusted"
            } else {
                ""
            };
            format!("({}{})({})", p.types.display(*t), trusted, dump_exp(p, x))
        }
        Exp::SizeOf(t, n, _) => format!("sizeof({} /* {n} */)", p.types.display(*t)),
    }
}

fn unop_str(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "-",
        UnOp::BitNot => "~",
        UnOp::Not => "!",
    }
}

fn binop_str(op: BinOp) -> &'static str {
    use BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Rem => "%",
        Shl => "<<",
        Shr => ">>",
        Lt => "<",
        Gt => ">",
        Le => "<=",
        Ge => ">=",
        Eq => "==",
        Ne => "!=",
        BitAnd => "&",
        BitXor => "^",
        BitOr => "|",
        PlusPI => "+p",
        MinusPI => "-p",
        MinusPP => "-pp",
    }
}

#[cfg(test)]
mod tests {
    use crate::lower::lower_translation_unit;

    #[test]
    fn dump_is_nonempty_and_mentions_names() {
        let tu = ccured_ast::parse_translation_unit(
            "int g = 3; int add(int a, int b) { return a + b; }",
        )
        .unwrap();
        let p = lower_translation_unit(&tu).unwrap();
        let d = super::dump_program(&p);
        assert!(d.contains("global g"));
        assert!(d.contains("fn add"));
        assert!(d.contains("return"));
    }

    #[test]
    fn dump_program_is_the_splice_of_decls_and_functions() {
        let tu = ccured_ast::parse_translation_unit(
            "int g = 3;\n\
             extern int puts(char *s);\n\
             int add(int a, int b) { return a + b; }\n\
             int twice(int a) { return add(a, a); }",
        )
        .unwrap();
        let p = lower_translation_unit(&tu).unwrap();
        let mut spliced = super::dump_decls(&p);
        for f in &p.functions {
            spliced.push_str(&super::dump_function(&p, f));
        }
        assert_eq!(spliced, super::dump_program(&p));
    }

    #[test]
    fn dump_renders_control_flow() {
        let tu = ccured_ast::parse_translation_unit(
            "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }",
        )
        .unwrap();
        let p = lower_translation_unit(&tu).unwrap();
        let d = super::dump_program(&p);
        assert!(d.contains("loop {"));
        assert!(d.contains("break"));
    }
}
