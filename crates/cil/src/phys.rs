//! Physical type equality and physical subtyping (paper Section 3.1).
//!
//! Types are compared by their *flattened layout*: a sequence of scalar atoms
//! at byte offsets, with arrays expanded and nested aggregates inlined. This
//! realizes the paper's equational theory directly:
//!
//! * `t[1] ≍ t` and `t[n1+n2] ≍ struct{t[n1]; t[n2]}` — array expansion,
//! * `struct{t1; void} ≍ t1` and `void` as the empty aggregate,
//! * struct associativity — both sides flatten to the same atom stream,
//! * structure padding is accounted for: atoms carry their real offsets.
//!
//! **Equality** (`phys_eq`) requires equal total size and identical atoms at
//! identical offsets. **Prefix subtyping** (`is_prefix_of`) requires every
//! atom of the smaller type to match an identically-placed atom of the larger
//! type; padding in the smaller type is a "don't care" region (it is never
//! accessed through that view), which admits the real-world upcasts where the
//! subtype packs data into the supertype's trailing padding.
//!
//! Pointer atoms compare by *coinductive* physical equality of their pointee
//! types, so recursive structures (linked lists) compare correctly.
//!
//! The SEQ cast rule (`seq_cast_ok`) implements the paper's side condition
//! `t[n'] ≍ t'[n]` for the least `n·sizeof(t) = n'·sizeof(t')`.

use crate::types::{FuncSig, QualId, Type, TypeId, TypeTable};
use std::collections::{HashMap, HashSet};

/// Budget on flattened atoms per type; exceeding it makes comparisons
/// conservatively fail (never unsound: the cast is then treated as bad).
const ATOM_BUDGET: usize = 4096;

/// One scalar atom of a flattened layout.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Piece {
    /// An integer of the given byte size (sign-insensitive).
    Int(u64),
    /// A float of the given byte size.
    Float(u64),
    /// A pointer; compared by coinductive pointee equality.
    Ptr(TypeId, QualId),
    /// An opaque union; compared by identity.
    Union(crate::types::CompId),
}

/// A flattened layout: non-padding atoms at offsets, plus the total size.
#[derive(Debug, Clone)]
struct AtomStream {
    atoms: Vec<(u64, Piece)>,
    size: u64,
}

/// How a pointer cast classifies under the extended CCured type system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastClass {
    /// Between physically equal pointee types; kinds unify.
    Identical,
    /// The target pointee is a physical prefix of the source pointee
    /// (statically safe for SAFE pointers).
    Upcast,
    /// The source pointee is a physical prefix of the target pointee
    /// (checkable at run time with RTTI).
    Downcast,
    /// Neither an upcast nor a downcast: forces WILD (unless trusted).
    Bad,
    /// Arithmetic-to-arithmetic conversion, no pointers involved.
    Scalar,
    /// An integer (possibly zero) cast to a pointer.
    IntToPtr,
    /// A pointer cast to an integer.
    PtrToInt,
}

/// Physical-type comparison context with memoization.
///
/// Create one per analysis pass; memo tables make repeated queries cheap.
///
/// # Examples
///
/// ```
/// use ccured_cil::{lower_translation_unit, phys::PhysCtx};
///
/// let tu = ccured_ast::parse_translation_unit(
///     "struct A { int x; }; struct B { int x; int y; };
///      struct A *pa; struct B *pb;",
/// ).unwrap();
/// let prog = lower_translation_unit(&tu).unwrap();
/// let a = prog.globals[0].ty;
/// let b = prog.globals[1].ty;
/// let mut ctx = PhysCtx::new(&prog.types);
/// let (pa, _) = prog.types.ptr_parts(a).unwrap();
/// let (pb, _) = prog.types.ptr_parts(b).unwrap();
/// assert!(ctx.is_prefix_of(pa, pb), "A is a prefix of B");
/// assert!(!ctx.is_prefix_of(pb, pa));
/// ```
pub struct PhysCtx<'a> {
    types: &'a TypeTable,
    eq_memo: HashMap<(TypeId, TypeId), bool>,
    stream_memo: HashMap<TypeId, Option<AtomStream>>,
    quals_memo: HashMap<TypeId, std::rc::Rc<Vec<QualId>>>,
}

impl<'a> PhysCtx<'a> {
    /// Creates a comparison context over a type table.
    pub fn new(types: &'a TypeTable) -> Self {
        PhysCtx {
            types,
            eq_memo: HashMap::new(),
            stream_memo: HashMap::new(),
            quals_memo: HashMap::new(),
        }
    }

    /// Flattens `t` into its atom stream (cached).
    fn stream(&mut self, t: TypeId) -> Option<AtomStream> {
        if let Some(s) = self.stream_memo.get(&t) {
            return s.clone();
        }
        let mut atoms = Vec::new();
        let size = self.flatten(t, 0, &mut atoms);
        let result = size.map(|size| AtomStream { atoms, size });
        self.stream_memo.insert(t, result.clone());
        result
    }

    /// Appends the atoms of `t` at base offset `off`; returns `t`'s size.
    fn flatten(&self, t: TypeId, off: u64, out: &mut Vec<(u64, Piece)>) -> Option<u64> {
        if out.len() > ATOM_BUDGET {
            return None;
        }
        match self.types.get(t) {
            Type::Void => Some(0),
            Type::Int(k) => {
                let s = self.types.machine.int_size(*k);
                out.push((off, Piece::Int(s)));
                Some(s)
            }
            Type::Float(k) => {
                let s = self.types.machine.float_size(*k);
                out.push((off, Piece::Float(s)));
                Some(s)
            }
            Type::Ptr(base, q) => {
                out.push((off, Piece::Ptr(*base, *q)));
                Some(self.types.machine.ptr_bytes)
            }
            Type::Array(elem, Some(n)) => {
                let es = self.types.size_of(*elem).ok()?;
                let mut cur = off;
                for _ in 0..*n {
                    if out.len() > ATOM_BUDGET {
                        return None;
                    }
                    self.flatten(*elem, cur, out)?;
                    cur += es;
                }
                Some(es * n)
            }
            Type::Array(_, None) => None,
            Type::Comp(cid) => {
                let info = self.types.comp(*cid);
                if !info.defined {
                    return None;
                }
                if info.is_union {
                    out.push((off, Piece::Union(*cid)));
                    return Some(info.size);
                }
                for f in &info.fields {
                    self.flatten(f.ty, off + f.offset, out)?;
                }
                Some(info.size)
            }
            Type::Func(_) => None,
        }
    }

    /// Physical type equality `a ≍ b` (paper Section 3.1).
    pub fn phys_eq(&mut self, a: TypeId, b: TypeId) -> bool {
        if self.types.same_type(a, b) {
            return true;
        }
        // Function types compare structurally (they only occur behind
        // pointers and have no layout).
        if let (Type::Func(fa), Type::Func(fb)) = (self.types.get(a), self.types.get(b)) {
            let (fa, fb) = (fa.clone(), fb.clone());
            return self.func_eq(&fa, &fb);
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.eq_memo.get(&key) {
            return r;
        }
        // Coinductive hypothesis: assume equal while comparing (recursive
        // structures through pointers).
        self.eq_memo.insert(key, true);
        let result = self.phys_eq_uncached(a, b);
        self.eq_memo.insert(key, result);
        result
    }

    fn func_eq(&mut self, fa: &FuncSig, fb: &FuncSig) -> bool {
        fa.varargs == fb.varargs
            && fa.params.len() == fb.params.len()
            && self.phys_eq(fa.ret, fb.ret)
            && fa
                .params
                .clone()
                .iter()
                .zip(fb.params.clone().iter())
                .all(|(p, q)| self.phys_eq(*p, *q))
    }

    fn phys_eq_uncached(&mut self, a: TypeId, b: TypeId) -> bool {
        let (sa, sb) = match (self.stream(a), self.stream(b)) {
            (Some(x), Some(y)) => (x, y),
            _ => return false,
        };
        if sa.size != sb.size || sa.atoms.len() != sb.atoms.len() {
            return false;
        }
        for ((oa, pa), (ob, pb)) in sa.atoms.iter().zip(sb.atoms.iter()) {
            if oa != ob || !self.piece_eq(pa, pb) {
                return false;
            }
        }
        true
    }

    fn piece_eq(&mut self, a: &Piece, b: &Piece) -> bool {
        match (a, b) {
            (Piece::Int(x), Piece::Int(y)) => x == y,
            (Piece::Float(x), Piece::Float(y)) => x == y,
            (Piece::Union(x), Piece::Union(y)) => x == y,
            (Piece::Ptr(x, _), Piece::Ptr(y, _)) => self.phys_eq(*x, *y),
            _ => false,
        }
    }

    /// Physical prefix: every atom of `sup` matches an identically placed
    /// atom of `sub` (so a `sub` object can be viewed as a `sup`).
    ///
    /// `void` is the empty aggregate, so `is_prefix_of(void, t)` holds for
    /// every `t` — any pointer can be upcast to `void*`.
    pub fn is_prefix_of(&mut self, sup: TypeId, sub: TypeId) -> bool {
        if self.phys_eq(sup, sub) {
            return true;
        }
        // Function "prefixes" make no sense.
        if matches!(self.types.get(sup), Type::Func(_))
            || matches!(self.types.get(sub), Type::Func(_))
        {
            return false;
        }
        let (ssup, ssub) = match (self.stream(sup), self.stream(sub)) {
            (Some(x), Some(y)) => (x, y),
            _ => return false,
        };
        if ssup.size > ssub.size {
            return false;
        }
        // Two-pointer walk: each sup atom must find its twin in sub.
        let mut j = 0;
        for (oa, pa) in &ssup.atoms {
            while j < ssub.atoms.len() && ssub.atoms[j].0 < *oa {
                j += 1;
            }
            if j >= ssub.atoms.len() || ssub.atoms[j].0 != *oa {
                return false;
            }
            let pb = ssub.atoms[j].1.clone();
            if !self.piece_eq(pa, &pb) {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Whether `sub` strictly extends `sup` (a proper subtype).
    pub fn is_proper_subtype(&mut self, sub: TypeId, sup: TypeId) -> bool {
        self.is_prefix_of(sup, sub) && !self.phys_eq(sup, sub)
    }

    /// The paper's SEQ-cast side condition: with the least `n, n'` such that
    /// `n·sizeof(from) = n'·sizeof(to)`, require `from[n'] ≍ to[n]` — i.e.
    /// the two element types tile memory identically.
    pub fn seq_cast_ok(&mut self, from: TypeId, to: TypeId) -> bool {
        if self.phys_eq(from, to) {
            return true;
        }
        // `void` is the empty aggregate: nothing can be accessed at type
        // `void`, so the tiling side condition is vacuous. A later cast to a
        // concrete type is a downcast and re-checks.
        if matches!(self.types.get(from), Type::Void) || matches!(self.types.get(to), Type::Void) {
            return true;
        }
        let (sf, st) = match (self.types.size_of(from), self.types.size_of(to)) {
            (Ok(a), Ok(b)) if a > 0 && b > 0 => (a, b),
            _ => return false,
        };
        let l = lcm(sf, st);
        let reps_from = (l / sf) as usize;
        let reps_to = (l / st) as usize;
        if reps_from.max(reps_to) > ATOM_BUDGET {
            return false;
        }
        let (mut fa, mut ta) = (Vec::new(), Vec::new());
        let mut off = 0;
        for _ in 0..reps_from {
            if self.flatten(from, off, &mut fa).is_none() {
                return false;
            }
            off += sf;
        }
        off = 0;
        for _ in 0..reps_to {
            if self.flatten(to, off, &mut ta).is_none() {
                return false;
            }
            off += st;
        }
        if fa.len() != ta.len() {
            return false;
        }
        for ((oa, pa), (ob, pb)) in fa.iter().zip(ta.clone().iter()) {
            if oa != ob || !self.piece_eq(pa, pb) {
                return false;
            }
        }
        true
    }

    /// Classifies a cast between two types (paper Section 3).
    ///
    /// `from`/`to` are the full cast types (often pointers). Integer-to-
    /// pointer nullness is the caller's concern ([`CastClass::IntToPtr`] is
    /// returned regardless of the operand value).
    pub fn classify_cast(&mut self, from: TypeId, to: TypeId) -> CastClass {
        let fp = self.types.ptr_parts(from);
        let tp = self.types.ptr_parts(to);
        match (fp, tp) {
            (Some((fb, _)), Some((tb, _))) => {
                if self.phys_eq(fb, tb) {
                    CastClass::Identical
                } else if self.is_prefix_of(tb, fb) {
                    CastClass::Upcast
                } else if self.is_prefix_of(fb, tb) {
                    CastClass::Downcast
                } else {
                    CastClass::Bad
                }
            }
            (Some(_), None) => CastClass::PtrToInt,
            (None, Some(_)) => CastClass::IntToPtr,
            (None, None) => CastClass::Scalar,
        }
    }

    /// Collects the qualifier-variable pairs that must unify when two
    /// physically equal types alias (deep, through pointers and functions).
    ///
    /// Returns `None` if the types are not physically equal.
    pub fn eq_qual_pairs(&mut self, a: TypeId, b: TypeId) -> Option<Vec<(QualId, QualId)>> {
        if !self.phys_eq(a, b) {
            return None;
        }
        let mut pairs = Vec::new();
        let mut seen = HashSet::new();
        self.collect_pairs(a, b, &mut pairs, &mut seen);
        Some(pairs)
    }

    /// Collects qualifier pairs for the overlapping prefix of an upcast from
    /// `sub` to `sup`. Returns `None` if `sup` is not a prefix of `sub`.
    pub fn prefix_qual_pairs(&mut self, sup: TypeId, sub: TypeId) -> Option<Vec<(QualId, QualId)>> {
        if !self.is_prefix_of(sup, sub) {
            return None;
        }
        let ssup = self.stream(sup)?;
        let ssub = self.stream(sub)?;
        let mut pairs = Vec::new();
        let mut seen = HashSet::new();
        let mut j = 0;
        for (oa, pa) in &ssup.atoms {
            while j < ssub.atoms.len() && ssub.atoms[j].0 < *oa {
                j += 1;
            }
            if j >= ssub.atoms.len() {
                break;
            }
            if let (Piece::Ptr(ba, qa), Piece::Ptr(bb, qb)) = (pa, &ssub.atoms[j].1) {
                pairs.push((*qa, *qb));
                let (ba, bb) = (*ba, *bb);
                self.collect_pairs(ba, bb, &mut pairs, &mut seen);
            }
            j += 1;
        }
        Some(pairs)
    }

    fn collect_pairs(
        &mut self,
        a: TypeId,
        b: TypeId,
        pairs: &mut Vec<(QualId, QualId)>,
        seen: &mut HashSet<(TypeId, TypeId)>,
    ) {
        if !seen.insert((a, b)) {
            return;
        }
        if let (Type::Func(fa), Type::Func(fb)) = (self.types.get(a), self.types.get(b)) {
            let (fa, fb) = (fa.clone(), fb.clone());
            self.collect_pairs(fa.ret, fb.ret, pairs, seen);
            for (p, q) in fa.params.iter().zip(fb.params.iter()) {
                self.collect_pairs(*p, *q, pairs, seen);
            }
            return;
        }
        let (sa, sb) = match (self.stream(a), self.stream(b)) {
            (Some(x), Some(y)) => (x, y),
            _ => return,
        };
        for ((_, pa), (_, pb)) in sa.atoms.iter().zip(sb.atoms.iter()) {
            if let (Piece::Ptr(ba, qa), Piece::Ptr(bb, qb)) = (pa, pb) {
                pairs.push((*qa, *qb));
                let (ba, bb) = (*ba, *bb);
                self.collect_pairs(ba, bb, pairs, seen);
            }
        }
    }

    /// All qualifier variables occurring anywhere inside `t` (used for WILD
    /// poisoning: a WILD type contaminates its whole base type). Memoized —
    /// the SPLIT and WILD fixpoints query the same types repeatedly.
    pub fn quals_in_type(&mut self, t: TypeId) -> std::rc::Rc<Vec<QualId>> {
        if let Some(q) = self.quals_memo.get(&t) {
            return q.clone();
        }
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        self.quals_rec(t, &mut out, &mut seen);
        let rc = std::rc::Rc::new(out);
        self.quals_memo.insert(t, rc.clone());
        rc
    }

    fn quals_rec(&mut self, t: TypeId, out: &mut Vec<QualId>, seen: &mut HashSet<TypeId>) {
        if !seen.insert(t) {
            return;
        }
        match self.types.get(t).clone() {
            Type::Ptr(base, q) => {
                out.push(q);
                self.quals_rec(base, out, seen);
            }
            Type::Array(elem, _) => self.quals_rec(elem, out, seen),
            Type::Comp(cid) => {
                let fields: Vec<TypeId> =
                    self.types.comp(cid).fields.iter().map(|f| f.ty).collect();
                for f in fields {
                    self.quals_rec(f, out, seen);
                }
            }
            Type::Func(sig) => {
                self.quals_rec(sig.ret, out, seen);
                for p in sig.params {
                    self.quals_rec(p, out, seen);
                }
            }
            _ => {}
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Program;
    use crate::lower::lower_translation_unit;

    fn prog(src: &str) -> Program {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        lower_translation_unit(&tu).expect("lower")
    }

    /// Pointee type of the global named `name`.
    fn pointee(p: &Program, name: &str) -> TypeId {
        let g = p
            .find_global(name)
            .unwrap_or_else(|| panic!("global {name}"));
        let ty = p.globals[g.idx()].ty;
        p.types.ptr_parts(ty).expect("pointer global").0
    }

    #[test]
    fn identical_scalars_are_equal() {
        let p = prog("int *a; int *b; char *c;");
        let mut ctx = PhysCtx::new(&p.types);
        let (ta, tb, tc) = (pointee(&p, "a"), pointee(&p, "b"), pointee(&p, "c"));
        assert!(ctx.phys_eq(ta, tb));
        assert!(!ctx.phys_eq(ta, tc));
    }

    #[test]
    fn signedness_is_layout_irrelevant() {
        let p = prog("int *a; unsigned int *b;");
        let mut ctx = PhysCtx::new(&p.types);
        assert!(ctx.phys_eq(pointee(&p, "a"), pointee(&p, "b")));
    }

    #[test]
    fn struct_assoc_rule() {
        let p = prog(
            "struct I { int a; int b; };\n\
             struct L { struct I i; int c; } *x;\n\
             struct R { int a; struct J { int b; int c; } j; } *y;",
        );
        let mut ctx = PhysCtx::new(&p.types);
        assert!(ctx.phys_eq(pointee(&p, "x"), pointee(&p, "y")));
    }

    #[test]
    fn unit_array_rule() {
        let p = prog("int (*a)[1]; int *b;");
        // a: pointer to int[1]; b: pointer to int. int[1] ≍ int.
        let pa = pointee(&p, "a");
        let pb = pointee(&p, "b");
        let mut ctx = PhysCtx::new(&p.types);
        assert!(ctx.phys_eq(pa, pb));
    }

    #[test]
    fn array_split_rule() {
        let p = prog(
            "int (*a)[4];\n\
             struct S { int x[2]; int y[2]; } *b;",
        );
        let mut ctx = PhysCtx::new(&p.types);
        assert!(ctx.phys_eq(pointee(&p, "a"), pointee(&p, "b")));
    }

    #[test]
    fn void_is_empty_and_universal_super() {
        let p = prog("void *v; int *i; struct S { int a; double b; } *s;");
        let mut ctx = PhysCtx::new(&p.types);
        let (tv, ti, ts) = (pointee(&p, "v"), pointee(&p, "i"), pointee(&p, "s"));
        assert!(ctx.is_prefix_of(tv, ti), "void prefix of int");
        assert!(ctx.is_prefix_of(tv, ts), "void prefix of struct");
        assert!(!ctx.phys_eq(tv, ti));
        assert!(!ctx.is_prefix_of(ti, tv), "int not prefix of void");
    }

    #[test]
    fn figure_circle_subtyping() {
        let p = prog(
            "struct Figure { double (*area)(struct Figure *obj); } *f;\n\
             struct Circle { double (*area)(struct Figure *obj); int radius; } *c;",
        );
        let mut ctx = PhysCtx::new(&p.types);
        let (tf, tc) = (pointee(&p, "f"), pointee(&p, "c"));
        assert!(ctx.is_prefix_of(tf, tc), "Figure is a prefix of Circle");
        assert!(!ctx.is_prefix_of(tc, tf));
        assert!(ctx.is_proper_subtype(tc, tf));
        assert!(!ctx.is_proper_subtype(tf, tc));
    }

    #[test]
    fn prefix_tolerates_supertype_trailing_padding() {
        // Figure: ptr + int + (4 bytes trailing pad). Circle packs radius
        // into that padding; upcast must still be accepted.
        let p = prog(
            "struct Figure { void *vt; int tag; } *f;\n\
             struct Circle { void *vt; int tag; int radius; } *c;",
        );
        let mut ctx = PhysCtx::new(&p.types);
        assert!(ctx.is_prefix_of(pointee(&p, "f"), pointee(&p, "c")));
    }

    #[test]
    fn mismatched_pointer_atoms_fail() {
        // A function pointer where the other has an int: unsound cast.
        let p = prog(
            "struct A { void (*f)(void); } *a;\n\
             struct B { long x; } *b;",
        );
        let mut ctx = PhysCtx::new(&p.types);
        assert!(!ctx.phys_eq(pointee(&p, "a"), pointee(&p, "b")));
        assert!(!ctx.is_prefix_of(pointee(&p, "a"), pointee(&p, "b")));
        // But an int where the other has an int-sized int is fine.
    }

    #[test]
    fn recursive_types_compare_coinductively() {
        let p = prog(
            "struct L1 { int v; struct L1 *next; } *a;\n\
             struct L2 { int v; struct L2 *next; } *b;",
        );
        let mut ctx = PhysCtx::new(&p.types);
        assert!(ctx.phys_eq(pointee(&p, "a"), pointee(&p, "b")));
    }

    #[test]
    fn mutually_recursive_vs_plain_differ() {
        let p = prog(
            "struct L { int v; struct L *next; } *a;\n\
             struct M { int v; int *next; } *b;",
        );
        let mut ctx = PhysCtx::new(&p.types);
        // L's next points to {int, ptr}, M's to int: not equal.
        assert!(!ctx.phys_eq(pointee(&p, "a"), pointee(&p, "b")));
    }

    #[test]
    fn classify_cast_cases() {
        let p = prog(
            "struct Figure { void *vt; } *f;\n\
             struct Circle { void *vt; int radius; } *c;\n\
             int *i; long n; double *d;",
        );
        let mut ctx = PhysCtx::new(&p.types);
        let gty = |name: &str| {
            let g = p.find_global(name).unwrap();
            p.globals[g.idx()].ty
        };
        assert_eq!(ctx.classify_cast(gty("c"), gty("f")), CastClass::Upcast);
        assert_eq!(ctx.classify_cast(gty("f"), gty("c")), CastClass::Downcast);
        assert_eq!(ctx.classify_cast(gty("i"), gty("d")), CastClass::Bad);
        assert_eq!(ctx.classify_cast(gty("n"), gty("i")), CastClass::IntToPtr);
        assert_eq!(ctx.classify_cast(gty("i"), gty("n")), CastClass::PtrToInt);
        assert_eq!(ctx.classify_cast(gty("n"), gty("n")), CastClass::Scalar);
        assert_eq!(ctx.classify_cast(gty("i"), gty("i")), CastClass::Identical);
    }

    #[test]
    fn seq_cast_multidim_arrays() {
        // Casting int(*)[2] SEQ to int* SEQ: sizes 8 vs 4, lcm 8:
        // (int[2])[1] vs int[2] — equal tiling.
        let p = prog("int (*a)[2]; int *b;");
        let mut ctx = PhysCtx::new(&p.types);
        let (ta, tb) = (pointee(&p, "a"), pointee(&p, "b"));
        assert!(ctx.seq_cast_ok(ta, tb));
        assert!(ctx.seq_cast_ok(tb, ta));
    }

    #[test]
    fn seq_cast_incompatible_tiling() {
        // struct{double} tiles 8 bytes as F64; long tiles as I64: mismatch.
        let p = prog("double *d; long *l;");
        let mut ctx = PhysCtx::new(&p.types);
        assert!(!ctx.seq_cast_ok(pointee(&p, "d"), pointee(&p, "l")));
    }

    #[test]
    fn seq_cast_struct_vs_scalar_tiling() {
        // struct{int;int} (8 bytes) vs int (4 bytes): lcm 8 — int[2] vs S[1]
        // tile identically.
        let p = prog("struct S { int a; int b; } *s; int *i;");
        let mut ctx = PhysCtx::new(&p.types);
        assert!(ctx.seq_cast_ok(pointee(&p, "s"), pointee(&p, "i")));
    }

    #[test]
    fn seq_cast_unsound_circle_figure() {
        // The paper's example: Circle* SEQ to Figure* SEQ is unsound because
        // (Figure SEQ + 1) would alias Circle's radius as a function pointer.
        let p = prog(
            "struct Figure { double (*area)(struct Figure *obj); } *f;\n\
             struct Circle { double (*area)(struct Figure *obj); long radius; } *c;",
        );
        let mut ctx = PhysCtx::new(&p.types);
        assert!(!ctx.seq_cast_ok(pointee(&p, "c"), pointee(&p, "f")));
    }

    #[test]
    fn unions_compare_by_identity() {
        let p = prog(
            "union U1 { int i; char c[4]; } *a;\n\
             union U2 { int i; char c[4]; } *b;",
        );
        let mut ctx = PhysCtx::new(&p.types);
        assert!(
            !ctx.phys_eq(pointee(&p, "a"), pointee(&p, "b")),
            "distinct unions are opaque"
        );
        assert!(ctx.phys_eq(pointee(&p, "a"), pointee(&p, "a")));
    }

    #[test]
    fn eq_qual_pairs_are_collected() {
        let p = prog("int **a; int **b;");
        let mut ctx = PhysCtx::new(&p.types);
        let (ta, tb) = (pointee(&p, "a"), pointee(&p, "b"));
        let pairs = ctx.eq_qual_pairs(ta, tb).expect("equal");
        assert_eq!(pairs.len(), 1, "one nested pointer pair");
    }

    #[test]
    fn prefix_qual_pairs_cover_common_prefix() {
        let p = prog(
            "struct A { char *s; } *a;\n\
             struct B { char *s; int extra; } *b;",
        );
        let mut ctx = PhysCtx::new(&p.types);
        let pairs = ctx
            .prefix_qual_pairs(pointee(&p, "a"), pointee(&p, "b"))
            .expect("prefix");
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn quals_in_type_walks_deep() {
        let p = prog("struct S { int *p; char **q; } *s;");
        let mut ctx = PhysCtx::new(&p.types);
        let g = p.find_global("s").unwrap();
        let quals = ctx.quals_in_type(p.globals[g.idx()].ty);
        // s's own qual + p + q (outer) + q (inner) = 4.
        assert_eq!(quals.len(), 4);
    }

    #[test]
    fn function_pointer_compatibility() {
        let p = prog(
            "int (*f)(int, char *);\n\
             int (*g)(int, char *);\n\
             int (*h)(long);",
        );
        let mut ctx = PhysCtx::new(&p.types);
        let (tf, tg, th) = (pointee(&p, "f"), pointee(&p, "g"), pointee(&p, "h"));
        assert!(ctx.phys_eq(tf, tg));
        assert!(!ctx.phys_eq(tf, th));
    }

    #[test]
    fn huge_array_fast_path() {
        let p = prog("int (*a)[1000000]; int (*b)[1000000];");
        let mut ctx = PhysCtx::new(&p.types);
        // Identical via the structural fast path despite the atom budget.
        assert!(ctx.phys_eq(pointee(&p, "a"), pointee(&p, "b")));
    }

    #[test]
    fn budget_exhaustion_is_conservative() {
        let p = prog("int (*a)[100000]; long (*b)[50000];");
        let mut ctx = PhysCtx::new(&p.types);
        assert!(!ctx.phys_eq(pointee(&p, "a"), pointee(&p, "b")));
    }
}
