//! Type table, qualifier variables, and the C layout engine.
//!
//! Types are stored in an append-only arena indexed by [`TypeId`]. Pointer
//! types are **not** structurally interned: each syntactic occurrence of a
//! pointer type carries its own [`QualId`] qualifier variable, as required by
//! the CCured whole-program inference (one variable per `*` occurrence, per
//! variable address, and per field address — Section 2.1 of the paper).

use std::fmt;

/// Index of a type in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// A pointer-kind qualifier variable (one per pointer-type occurrence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QualId(pub u32);

/// Index of a struct/union in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(pub u32);

/// Integer kinds of the target machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IntKind {
    /// Plain `char` (signed on this target).
    Char,
    SChar,
    UChar,
    Short,
    UShort,
    Int,
    UInt,
    Long,
    ULong,
    LongLong,
    ULongLong,
}

impl IntKind {
    /// Whether values of this kind are signed.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            IntKind::Char
                | IntKind::SChar
                | IntKind::Short
                | IntKind::Int
                | IntKind::Long
                | IntKind::LongLong
        )
    }
}

/// Floating-point kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FloatKind {
    Float,
    Double,
}

/// A function signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSig {
    /// Return type.
    pub ret: TypeId,
    /// Parameter types, in order.
    pub params: Vec<TypeId>,
    /// Whether the function is variadic.
    pub varargs: bool,
}

/// A type term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// `void`
    Void,
    /// An integer type.
    Int(IntKind),
    /// A floating-point type.
    Float(FloatKind),
    /// A pointer with its qualifier variable.
    Ptr(TypeId, QualId),
    /// An array; `None` length for incomplete arrays (externs, params).
    Array(TypeId, Option<u64>),
    /// A struct or union.
    Comp(CompId),
    /// A function type (only behind pointers or as function-decl types).
    Func(FuncSig),
}

/// A field of a struct/union.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeId,
    /// Byte offset within the aggregate (0 for union members).
    pub offset: u64,
    /// Qualifier variable for the field's address (`&s.f`).
    pub addr_qual: QualId,
}

/// A struct or union definition.
#[derive(Debug, Clone)]
pub struct CompInfo {
    /// Tag name (generated for anonymous aggregates).
    pub name: String,
    /// True for unions.
    pub is_union: bool,
    /// Fields in declaration order (offsets filled in when defined).
    pub fields: Vec<FieldInfo>,
    /// Whether the definition has been seen (vs. a forward reference).
    pub defined: bool,
    /// Total size in bytes (with padding); 0 until defined.
    pub size: u64,
    /// Alignment in bytes; 1 until defined.
    pub align: u64,
}

/// Target machine data layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Machine {
    /// Size of `short` in bytes.
    pub short_bytes: u64,
    /// Size of `int` in bytes.
    pub int_bytes: u64,
    /// Size of `long` in bytes.
    pub long_bytes: u64,
    /// Size of `long long` in bytes.
    pub long_long_bytes: u64,
    /// Size of pointers (the machine word) in bytes.
    pub ptr_bytes: u64,
}

impl Default for Machine {
    fn default() -> Self {
        // LP64, the layout assumed throughout the benches. The paper's
        // appendix uses a 4-byte word; the checks are parametric in this.
        Machine {
            short_bytes: 2,
            int_bytes: 4,
            long_bytes: 8,
            long_long_bytes: 8,
            ptr_bytes: 8,
        }
    }
}

impl Machine {
    /// Byte size of an integer kind.
    pub fn int_size(&self, k: IntKind) -> u64 {
        match k {
            IntKind::Char | IntKind::SChar | IntKind::UChar => 1,
            IntKind::Short | IntKind::UShort => self.short_bytes,
            IntKind::Int | IntKind::UInt => self.int_bytes,
            IntKind::Long | IntKind::ULong => self.long_bytes,
            IntKind::LongLong | IntKind::ULongLong => self.long_long_bytes,
        }
    }

    /// Byte size of a float kind.
    pub fn float_size(&self, k: FloatKind) -> u64 {
        match k {
            FloatKind::Float => 4,
            FloatKind::Double => 8,
        }
    }
}

/// Errors produced by layout queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// Size of `void` or a function type was requested.
    Unsized(TypeId),
    /// Size of an incomplete array or undefined struct was requested.
    Incomplete(TypeId),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::Unsized(t) => write!(f, "type #{} has no size", t.0),
            LayoutError::Incomplete(t) => write!(f, "type #{} is incomplete", t.0),
        }
    }
}

impl std::error::Error for LayoutError {}

/// The arena of types, aggregates and qualifier variables for one program.
#[derive(Debug, Clone)]
pub struct TypeTable {
    types: Vec<Type>,
    comps: Vec<CompInfo>,
    next_qual: u32,
    /// Target layout parameters.
    pub machine: Machine,
}

impl Default for TypeTable {
    fn default() -> Self {
        Self::new(Machine::default())
    }
}

impl TypeTable {
    /// Creates an empty table for the given target machine.
    pub fn new(machine: Machine) -> Self {
        TypeTable {
            types: Vec::new(),
            comps: Vec::new(),
            next_qual: 0,
            machine,
        }
    }

    /// Number of types allocated.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether no types have been allocated.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Number of qualifier variables allocated.
    pub fn qual_count(&self) -> u32 {
        self.next_qual
    }

    /// Allocates a fresh qualifier variable.
    pub fn fresh_qual(&mut self) -> QualId {
        let q = QualId(self.next_qual);
        self.next_qual += 1;
        q
    }

    /// The type term for `id`.
    pub fn get(&self, id: TypeId) -> &Type {
        &self.types[id.0 as usize]
    }

    fn add(&mut self, t: Type) -> TypeId {
        let id = TypeId(self.types.len() as u32);
        self.types.push(t);
        id
    }

    /// Allocates `void`.
    pub fn mk_void(&mut self) -> TypeId {
        self.add(Type::Void)
    }

    /// Allocates an integer type.
    pub fn mk_int(&mut self, k: IntKind) -> TypeId {
        self.add(Type::Int(k))
    }

    /// Allocates a float type.
    pub fn mk_float(&mut self, k: FloatKind) -> TypeId {
        self.add(Type::Float(k))
    }

    /// Allocates a pointer to `base` with a fresh qualifier variable.
    pub fn mk_ptr(&mut self, base: TypeId) -> TypeId {
        let q = self.fresh_qual();
        self.add(Type::Ptr(base, q))
    }

    /// Allocates a pointer to `base` with an existing qualifier variable.
    pub fn mk_ptr_with_qual(&mut self, base: TypeId, q: QualId) -> TypeId {
        self.add(Type::Ptr(base, q))
    }

    /// Allocates an array type.
    pub fn mk_array(&mut self, elem: TypeId, len: Option<u64>) -> TypeId {
        self.add(Type::Array(elem, len))
    }

    /// Allocates a struct/union reference type.
    pub fn mk_comp(&mut self, c: CompId) -> TypeId {
        self.add(Type::Comp(c))
    }

    /// Allocates a function type.
    pub fn mk_func(&mut self, sig: FuncSig) -> TypeId {
        self.add(Type::Func(sig))
    }

    /// Declares a new (possibly not yet defined) aggregate and returns its id.
    pub fn declare_comp(&mut self, name: impl Into<String>, is_union: bool) -> CompId {
        let id = CompId(self.comps.len() as u32);
        self.comps.push(CompInfo {
            name: name.into(),
            is_union,
            fields: Vec::new(),
            defined: false,
            size: 0,
            align: 1,
        });
        id
    }

    /// The aggregate info for `id`.
    pub fn comp(&self, id: CompId) -> &CompInfo {
        &self.comps[id.0 as usize]
    }

    /// All aggregates, for iteration.
    pub fn comps(&self) -> &[CompInfo] {
        &self.comps
    }

    /// Finds a declared aggregate by tag name and union-ness.
    pub fn find_comp(&self, name: &str, is_union: bool) -> Option<CompId> {
        self.comps
            .iter()
            .position(|c| c.name == name && c.is_union == is_union)
            .map(|i| CompId(i as u32))
    }

    /// Completes an aggregate's definition: computes offsets, size, alignment.
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] if any field type has no known size.
    pub fn define_comp(
        &mut self,
        id: CompId,
        fields: Vec<(String, TypeId, QualId)>,
    ) -> Result<(), LayoutError> {
        let is_union = self.comps[id.0 as usize].is_union;
        let mut infos = Vec::with_capacity(fields.len());
        let mut offset = 0u64;
        let mut max_align = 1u64;
        let mut max_size = 0u64;
        let n = fields.len();
        for (i, (name, ty, addr_qual)) in fields.into_iter().enumerate() {
            // A trailing incomplete array (flexible array member) gets size 0.
            let last = i + 1 == n;
            let (size, align) = match self.size_align(ty) {
                Ok(sa) => sa,
                Err(e) => {
                    if last && matches!(self.get(ty), Type::Array(_, None)) {
                        let elem = match self.get(ty) {
                            Type::Array(e, None) => *e,
                            _ => unreachable!(),
                        };
                        (0, self.align_of(elem).map_err(|_| e)?)
                    } else {
                        return Err(e);
                    }
                }
            };
            max_align = max_align.max(align);
            let field_offset = if is_union {
                max_size = max_size.max(size);
                0
            } else {
                offset = round_up(offset, align);
                let fo = offset;
                offset += size;
                fo
            };
            infos.push(FieldInfo {
                name,
                ty,
                offset: field_offset,
                addr_qual,
            });
        }
        let raw_size = if is_union { max_size } else { offset };
        let comp = &mut self.comps[id.0 as usize];
        comp.fields = infos;
        comp.defined = true;
        comp.align = max_align;
        comp.size = round_up(raw_size, max_align);
        Ok(())
    }

    /// Size and alignment of a type.
    ///
    /// # Errors
    ///
    /// [`LayoutError::Unsized`] for `void`/function types,
    /// [`LayoutError::Incomplete`] for incomplete arrays/aggregates.
    pub fn size_align(&self, ty: TypeId) -> Result<(u64, u64), LayoutError> {
        match self.get(ty) {
            Type::Void => Err(LayoutError::Unsized(ty)),
            Type::Func(_) => Err(LayoutError::Unsized(ty)),
            Type::Int(k) => {
                let s = self.machine.int_size(*k);
                Ok((s, s))
            }
            Type::Float(k) => {
                let s = self.machine.float_size(*k);
                Ok((s, s))
            }
            Type::Ptr(..) => Ok((self.machine.ptr_bytes, self.machine.ptr_bytes)),
            Type::Array(elem, Some(n)) => {
                let (es, ea) = self.size_align(*elem)?;
                Ok((es * n, ea))
            }
            Type::Array(_, None) => Err(LayoutError::Incomplete(ty)),
            Type::Comp(c) => {
                let info = self.comp(*c);
                if info.defined {
                    Ok((info.size, info.align))
                } else {
                    Err(LayoutError::Incomplete(ty))
                }
            }
        }
    }

    /// Size of a type in bytes.
    ///
    /// # Errors
    ///
    /// See [`TypeTable::size_align`].
    pub fn size_of(&self, ty: TypeId) -> Result<u64, LayoutError> {
        self.size_align(ty).map(|(s, _)| s)
    }

    /// Alignment of a type in bytes.
    ///
    /// # Errors
    ///
    /// See [`TypeTable::size_align`].
    pub fn align_of(&self, ty: TypeId) -> Result<u64, LayoutError> {
        self.size_align(ty).map(|(_, a)| a)
    }

    /// Looks up a field by name, returning its index.
    pub fn field_index(&self, c: CompId, name: &str) -> Option<usize> {
        self.comp(c).fields.iter().position(|f| f.name == name)
    }

    /// Whether `ty` is (after stripping qualifiers) an integer type.
    pub fn is_integer(&self, ty: TypeId) -> bool {
        matches!(self.get(ty), Type::Int(_))
    }

    /// Whether `ty` is an arithmetic (integer or float) type.
    pub fn is_arith(&self, ty: TypeId) -> bool {
        matches!(self.get(ty), Type::Int(_) | Type::Float(_))
    }

    /// Whether `ty` is a pointer.
    pub fn is_ptr(&self, ty: TypeId) -> bool {
        matches!(self.get(ty), Type::Ptr(..))
    }

    /// The pointee and qualifier of a pointer type.
    pub fn ptr_parts(&self, ty: TypeId) -> Option<(TypeId, QualId)> {
        match self.get(ty) {
            Type::Ptr(base, q) => Some((*base, *q)),
            _ => None,
        }
    }

    /// Renders a type for diagnostics (structural, with qualifier ids).
    pub fn display(&self, ty: TypeId) -> String {
        match self.get(ty) {
            Type::Void => "void".into(),
            Type::Int(k) => format!("{k:?}").to_lowercase(),
            Type::Float(FloatKind::Float) => "float".into(),
            Type::Float(FloatKind::Double) => "double".into(),
            Type::Ptr(base, q) => format!("{} *q{}", self.display(*base), q.0),
            Type::Array(elem, Some(n)) => format!("{}[{n}]", self.display(*elem)),
            Type::Array(elem, None) => format!("{}[]", self.display(*elem)),
            Type::Comp(c) => {
                let info = self.comp(*c);
                format!(
                    "{} {}",
                    if info.is_union { "union" } else { "struct" },
                    info.name
                )
            }
            Type::Func(sig) => {
                let params: Vec<String> = sig.params.iter().map(|p| self.display(*p)).collect();
                format!(
                    "{} ({}{})",
                    self.display(sig.ret),
                    params.join(", "),
                    if sig.varargs { ", ..." } else { "" }
                )
            }
        }
    }

    /// Structural equality ignoring qualifier variables (used as the fast
    /// path for physical equality and for "identical cast" classification).
    pub fn same_type(&self, a: TypeId, b: TypeId) -> bool {
        if a == b {
            return true;
        }
        match (self.get(a), self.get(b)) {
            (Type::Void, Type::Void) => true,
            (Type::Int(x), Type::Int(y)) => x == y,
            (Type::Float(x), Type::Float(y)) => x == y,
            (Type::Ptr(x, _), Type::Ptr(y, _)) => self.same_type(*x, *y),
            (Type::Array(x, n), Type::Array(y, m)) => n == m && self.same_type(*x, *y),
            (Type::Comp(x), Type::Comp(y)) => x == y,
            (Type::Func(f), Type::Func(g)) => {
                f.varargs == g.varargs
                    && f.params.len() == g.params.len()
                    && self.same_type(f.ret, g.ret)
                    && f.params
                        .iter()
                        .zip(&g.params)
                        .all(|(p, q)| self.same_type(*p, *q))
            }
            _ => false,
        }
    }
}

/// Rounds `x` up to a multiple of `align` (which must be a power of two or
/// any positive integer).
pub fn round_up(x: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    x.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TypeTable {
        TypeTable::default()
    }

    #[test]
    fn scalar_sizes() {
        let mut t = table();
        let c = t.mk_int(IntKind::Char);
        let i = t.mk_int(IntKind::Int);
        let l = t.mk_int(IntKind::Long);
        let d = t.mk_float(FloatKind::Double);
        assert_eq!(t.size_of(c).unwrap(), 1);
        assert_eq!(t.size_of(i).unwrap(), 4);
        assert_eq!(t.size_of(l).unwrap(), 8);
        assert_eq!(t.size_of(d).unwrap(), 8);
    }

    #[test]
    fn pointer_size_is_word() {
        let mut t = table();
        let i = t.mk_int(IntKind::Int);
        let p = t.mk_ptr(i);
        assert_eq!(t.size_of(p).unwrap(), 8);
    }

    #[test]
    fn fresh_quals_are_distinct() {
        let mut t = table();
        let i = t.mk_int(IntKind::Int);
        let p1 = t.mk_ptr(i);
        let p2 = t.mk_ptr(i);
        let (_, q1) = t.ptr_parts(p1).unwrap();
        let (_, q2) = t.ptr_parts(p2).unwrap();
        assert_ne!(q1, q2);
        assert_eq!(t.qual_count(), 2);
    }

    #[test]
    fn struct_layout_with_padding() {
        let mut t = table();
        let c = t.mk_int(IntKind::Char);
        let i = t.mk_int(IntKind::Int);
        let s = t.declare_comp("S", false);
        let q1 = t.fresh_qual();
        let q2 = t.fresh_qual();
        t.define_comp(s, vec![("c".into(), c, q1), ("i".into(), i, q2)])
            .unwrap();
        let info = t.comp(s);
        assert_eq!(info.fields[0].offset, 0);
        assert_eq!(info.fields[1].offset, 4, "int aligned to 4 after char");
        assert_eq!(info.size, 8);
        assert_eq!(info.align, 4);
    }

    #[test]
    fn union_layout() {
        let mut t = table();
        let i = t.mk_int(IntKind::Int);
        let c = t.mk_int(IntKind::Char);
        let a4 = t.mk_array(c, Some(4));
        let u = t.declare_comp("U", true);
        let q1 = t.fresh_qual();
        let q2 = t.fresh_qual();
        t.define_comp(u, vec![("i".into(), i, q1), ("c".into(), a4, q2)])
            .unwrap();
        let info = t.comp(u);
        assert_eq!(info.fields[0].offset, 0);
        assert_eq!(info.fields[1].offset, 0);
        assert_eq!(info.size, 4);
    }

    #[test]
    fn array_size() {
        let mut t = table();
        let i = t.mk_int(IntKind::Int);
        let a = t.mk_array(i, Some(10));
        assert_eq!(t.size_of(a).unwrap(), 40);
        let inc = t.mk_array(i, None);
        assert!(matches!(t.size_of(inc), Err(LayoutError::Incomplete(_))));
    }

    #[test]
    fn void_and_func_are_unsized() {
        let mut t = table();
        let v = t.mk_void();
        assert!(matches!(t.size_of(v), Err(LayoutError::Unsized(_))));
        let i = t.mk_int(IntKind::Int);
        let f = t.mk_func(FuncSig {
            ret: i,
            params: vec![],
            varargs: false,
        });
        assert!(matches!(t.size_of(f), Err(LayoutError::Unsized(_))));
    }

    #[test]
    fn undefined_comp_is_incomplete() {
        let mut t = table();
        let s = t.declare_comp("Fwd", false);
        let ts = t.mk_comp(s);
        assert!(matches!(t.size_of(ts), Err(LayoutError::Incomplete(_))));
    }

    #[test]
    fn flexible_array_member() {
        let mut t = table();
        let i = t.mk_int(IntKind::Int);
        let c = t.mk_int(IntKind::Char);
        let fam = t.mk_array(c, None);
        let s = t.declare_comp("Msg", false);
        let q1 = t.fresh_qual();
        let q2 = t.fresh_qual();
        t.define_comp(s, vec![("len".into(), i, q1), ("data".into(), fam, q2)])
            .unwrap();
        assert_eq!(t.comp(s).size, 4);
    }

    #[test]
    fn same_type_ignores_quals() {
        let mut t = table();
        let i = t.mk_int(IntKind::Int);
        let p1 = t.mk_ptr(i);
        let p2 = t.mk_ptr(i);
        assert!(t.same_type(p1, p2));
        let c = t.mk_int(IntKind::Char);
        let pc = t.mk_ptr(c);
        assert!(!t.same_type(p1, pc));
    }

    #[test]
    fn nested_struct_size() {
        let mut t = table();
        let i = t.mk_int(IntKind::Int);
        let d = t.mk_float(FloatKind::Double);
        let inner = t.declare_comp("Inner", false);
        let q1 = t.fresh_qual();
        let q2 = t.fresh_qual();
        t.define_comp(inner, vec![("a".into(), i, q1), ("b".into(), d, q2)])
            .unwrap();
        // Inner: int(4) pad(4) double(8) -> 16, align 8.
        assert_eq!(t.comp(inner).size, 16);
        let tinner = t.mk_comp(inner);
        let outer = t.declare_comp("Outer", false);
        let q3 = t.fresh_qual();
        let q4 = t.fresh_qual();
        t.define_comp(outer, vec![("c".into(), i, q3), ("in".into(), tinner, q4)])
            .unwrap();
        // Outer: int(4) pad(4) Inner(16) -> 24, align 8.
        assert_eq!(t.comp(outer).size, 24);
        assert_eq!(t.comp(outer).fields[1].offset, 8);
    }

    #[test]
    fn display_is_readable() {
        let mut t = table();
        let i = t.mk_int(IntKind::Int);
        let p = t.mk_ptr(i);
        assert!(t.display(p).starts_with("int *"));
    }

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(0, 4), 0);
        assert_eq!(round_up(1, 4), 4);
        assert_eq!(round_up(4, 4), 4);
        assert_eq!(round_up(5, 8), 8);
    }
}
