//! The CIL-like intermediate representation.
//!
//! Expressions ([`Exp`]) are side-effect free; assignments and calls are
//! instructions ([`Instr`]); control flow is structured ([`Stmt`]) with
//! `goto`/labels for the irreducible cases. Every expression node carries its
//! type, assigned during lowering, so later passes never re-derive types.

use crate::types::{CompId, FloatKind, IntKind, QualId, TypeId, TypeTable};
use ccured_ast::Span;

macro_rules! idx {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The index as a usize.
            pub fn idx(self) -> usize {
                self.0 as usize
            }
        }
    };
}

idx!(
    /// Index of a global variable in [`Program::globals`].
    GlobalId
);
idx!(
    /// Index of a defined function in [`Program::functions`].
    FuncId
);
idx!(
    /// Index of an external (undefined) function in [`Program::externals`].
    ExternId
);
idx!(
    /// Index of a local variable within its [`Function`].
    LocalId
);
idx!(
    /// Index of a cast site in [`Program::casts`].
    CastId
);

/// A whole lowered program.
#[derive(Debug, Clone)]
pub struct Program {
    /// The type arena.
    pub types: TypeTable,
    /// Global variables (including lowered string literals).
    pub globals: Vec<Global>,
    /// Defined functions.
    pub functions: Vec<Function>,
    /// Declared-but-undefined functions, resolved against the external
    /// library (or wrappers) at "link" time.
    pub externals: Vec<ExternDecl>,
    /// Every cast site in the program, for classification and inference.
    pub casts: Vec<CastSite>,
    /// CCured pragmas collected during lowering.
    pub pragmas: Vec<CcuredPragma>,
    /// Source-level CCured annotations collected during lowering.
    pub annots: Annotations,
}

/// Source-level CCured annotations (`__SAFE`, `__SPLIT`, ...), used to seed
/// or check the inference.
#[derive(Debug, Clone, Default)]
pub struct Annotations {
    /// Pointer-kind assertions per qualifier variable.
    pub qual_kinds: Vec<(QualId, KindAnnot)>,
    /// `__SPLIT`/`__NOSPLIT` per pointer qualifier variable.
    pub qual_splits: Vec<(QualId, bool)>,
    /// `__SPLIT`/`__NOSPLIT` on a declared variable's base type.
    pub split_seeds: Vec<(SplitSeed, bool)>,
}

/// Pointer-kind annotation (mirrors `ccured_ast::PtrKindAnnot` without the
/// AST dependency in downstream crates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum KindAnnot {
    Safe,
    Seq,
    Wild,
    Rtti,
}

/// Where a base-type `__SPLIT` annotation landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SplitSeed {
    /// A global variable's type.
    Global(GlobalId),
    /// A local variable's type.
    Local(FuncId, LocalId),
}

impl Program {
    /// Finds a defined function by name.
    pub fn find_function(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Finds an external declaration by name.
    pub fn find_external(&self, name: &str) -> Option<ExternId> {
        self.externals
            .iter()
            .position(|e| e.name == name)
            .map(|i| ExternId(i as u32))
    }

    /// Finds a global by name.
    pub fn find_global(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }
}

/// A CCured `#pragma` recognized during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcuredPragma {
    /// `#pragma ccuredWrapperOf("wrapper", "external")`: calls to the
    /// external must be replaced by calls to the wrapper.
    WrapperOf {
        /// Name of the wrapper function (defined in the program).
        wrapper: String,
        /// Name of the wrapped external function.
        external: String,
    },
    /// `#pragma ccured_split(name)`: seed the SPLIT inference at a variable.
    SplitVar(String),
    /// `#pragma ccured_trusted(name)`: the named function is part of the
    /// trusted interface — no checks are inserted into its body (the
    /// paper's treatment of low-level kernel macros).
    TrustedFn(String),
    /// An unrecognized pragma, kept for diagnostics.
    Unknown(String),
}

/// A global variable.
#[derive(Debug, Clone)]
pub struct Global {
    /// Name (generated for string literals).
    pub name: String,
    /// Type.
    pub ty: TypeId,
    /// Qualifier variable for the global's address.
    pub addr_qual: QualId,
    /// Initializer, if any.
    pub init: Option<Init>,
    /// Declared `extern` without an initializer anywhere.
    pub is_extern: bool,
    /// Source location of the declaration.
    pub span: Span,
}

/// A (possibly compound) initializer, matched to the type's shape.
#[derive(Debug, Clone)]
pub enum Init {
    /// A single expression (must be constant-evaluable for globals of
    /// arithmetic type; pointer initializers may reference globals).
    Scalar(Exp),
    /// Element/field initializers in declaration order; shorter lists
    /// zero-fill the remainder, as in C.
    Compound(Vec<Init>),
    /// The bytes of a string literal, including the trailing NUL.
    String(Vec<u8>),
}

/// An external function declaration.
#[derive(Debug, Clone)]
pub struct ExternDecl {
    /// Function name.
    pub name: String,
    /// Its function type ([`crate::types::Type::Func`]).
    pub ty: TypeId,
    /// Source location.
    pub span: Span,
}

/// A local variable (parameters come first).
#[derive(Debug, Clone)]
pub struct Local {
    /// Name (generated for temporaries).
    pub name: String,
    /// Type.
    pub ty: TypeId,
    /// Qualifier variable for the local's address.
    pub addr_qual: QualId,
    /// Whether this local is a parameter.
    pub is_param: bool,
    /// Whether this is a compiler-generated temporary.
    pub is_temp: bool,
}

/// A defined function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// The function's type ([`crate::types::Type::Func`]).
    pub ty: TypeId,
    /// Number of leading locals that are parameters.
    pub param_count: usize,
    /// All locals; `locals[0..param_count]` are the parameters.
    pub locals: Vec<Local>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

impl Function {
    /// Return type, extracted from the function type.
    pub fn ret_type(&self, types: &TypeTable) -> TypeId {
        match types.get(self.ty) {
            crate::types::Type::Func(sig) => sig.ret,
            _ => unreachable!("function type is always Func"),
        }
    }
}

/// A record of one cast site (explicit or implicit) for classification.
#[derive(Debug, Clone)]
pub struct CastSite {
    /// Source type.
    pub from: TypeId,
    /// Destination type.
    pub to: TypeId,
    /// Marked `__TRUSTED` by the programmer.
    pub trusted: bool,
    /// Inserted by the compiler (implicit conversion) rather than written.
    pub implicit: bool,
    /// The operand is the literal integer zero (the null pointer constant).
    pub from_zero: bool,
    /// The operand is the fresh result of an allocator call (`malloc`
    /// family): the cast types fresh memory and is statically safe.
    pub alloc: bool,
    /// Source location.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// A run of straight-line instructions.
    Instr(Vec<Instr>),
    /// `if` with lowered branches.
    If(Exp, Vec<Stmt>, Vec<Stmt>),
    /// An infinite loop; `Break` exits, `Continue` restarts.
    Loop(Vec<Stmt>),
    /// Exits the innermost loop or switch.
    Break,
    /// Restarts the innermost loop.
    Continue,
    /// Returns from the function.
    Return(Option<Exp>),
    /// Jump to a label (resolved by name within the function).
    Goto(String),
    /// A label marker.
    Label(String),
    /// A lowered `switch`: evaluates the scrutinee, selects the first
    /// matching arm (or the default arm), then executes arms from there with
    /// C fallthrough semantics. `Break` exits.
    Switch(Exp, Vec<SwitchArm>),
    /// A nested block (scoping only).
    Block(Vec<Stmt>),
}

/// One arm of a lowered switch.
#[derive(Debug, Clone)]
pub struct SwitchArm {
    /// Case values selecting this arm; empty means `default`.
    pub values: Vec<i128>,
    /// The arm's statements (falls through to the next arm).
    pub body: Vec<Stmt>,
}

/// A side-effecting instruction.
#[derive(Debug, Clone)]
pub enum Instr {
    /// `lval = exp`
    Set(Lval, Exp, Span),
    /// `lval = callee(args)` / `callee(args)`
    Call(Option<Lval>, Callee, Vec<Exp>, Span),
    /// A run-time check inserted by the CCured instrumentation; aborts the
    /// program with a memory-safety error if it fails. The [`SiteId`] ties
    /// the instruction to its check site for per-site profiling.
    Check(Check, Span, SiteId),
}

/// A stable identifier for a check *site*: the (span, function, check kind,
/// inferred pointer kind) tuple the instrumentation emitted a check for.
/// Several check instructions can share one site (e.g. a macro-expanded
/// dereference), and the optimizer's elisions are attributed back to it.
/// Ids index the cure's site table in emission order, so equal programs
/// cured with equal configurations always agree on the numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl SiteId {
    /// "No site": checks built outside the instrumentation pass (unit
    /// tests, synthetic IR). Profiling ignores them.
    pub const NONE: SiteId = SiteId(u32::MAX);

    /// The table index, or `None` for [`SiteId::NONE`].
    pub fn index(self) -> Option<usize> {
        (self != SiteId::NONE).then_some(self.0 as usize)
    }
}

/// A CCured run-time check (paper Figures 10–11).
#[derive(Debug, Clone)]
pub enum Check {
    /// SAFE/RTTI dereference: the pointer must be non-null.
    Null {
        /// The pointer being dereferenced.
        ptr: Exp,
    },
    /// SEQ dereference: non-null(-integer) and `b ≤ p ≤ e − access_size`.
    SeqBounds {
        /// The fat pointer.
        ptr: Exp,
        /// Size of the accessed element.
        access_size: u64,
    },
    /// SEQ-to-SAFE conversion: the pointer must address a full element.
    SeqToSafe {
        /// The fat pointer being converted.
        ptr: Exp,
        /// Size of the target element.
        access_size: u64,
    },
    /// WILD dereference: bounds via the area's length header.
    WildBounds {
        /// The wild pointer.
        ptr: Exp,
        /// Size of the access.
        access_size: u64,
    },
    /// Reading a pointer through a WILD pointer: the tag bits must say the
    /// stored word is a valid base pointer.
    WildTag {
        /// The wild pointer being read through.
        ptr: Exp,
    },
    /// Checked downcast: `isSubtype(ptr.t, target_node)`.
    Rtti {
        /// The RTTI pointer being downcast.
        ptr: Exp,
        /// Node id of the target type in the physical-subtype hierarchy.
        target_node: u32,
    },
    /// Storing a pointer into the heap or a global: it must not point into
    /// the current stack frame (conservative escape prevention).
    NoStackEscape {
        /// The pointer value being stored.
        value: Exp,
    },
    /// Static array indexing: `0 ≤ index < len`.
    IndexBound {
        /// The index expression.
        index: Exp,
        /// The static array length.
        len: u64,
    },
    /// Temporal lock-and-key comparison (`--temporal`): the pointer's
    /// capability key — stamped at `malloc`/stack entry — must still be
    /// valid, i.e. the allocation it names has not been freed. Emitted
    /// before every dereference so use-after-free is caught by the cured
    /// program's own checks rather than by the abstract machine.
    Temporal {
        /// The pointer being dereferenced.
        ptr: Exp,
    },
    /// Loop-optimizer probe: placed by the hoisting/widening passes
    /// immediately before a [`Check::Guarded`] residual. When the frame's
    /// guard `slot` is unset it evaluates every `inner` check; if all pass
    /// the slot is latched to "pass" (and exactly one check event of
    /// `inner[0]`'s kind is counted), otherwise to "fail" (counting
    /// nothing — the residual checks then run per-iteration and account
    /// exactly like the unoptimized program). A probe never aborts.
    Probe {
        /// Frame-local guard slot shared with the residual check.
        slot: u32,
        /// The checks whose conjunction the guard summarizes. For hoisting
        /// this is the residual check itself; for SEQ widening it is the
        /// per-iteration check plus the last-index endpoint check.
        inner: Vec<Check>,
    },
    /// A check wrapped by the loop optimizer: skipped (free of charge)
    /// while the frame's guard `slot` is latched "pass", executed exactly
    /// like the original `inner` check otherwise — so a failing widened
    /// range still blames the precise per-iteration site.
    Guarded {
        /// Frame-local guard slot set by the matching [`Check::Probe`].
        slot: u32,
        /// The original check, unchanged.
        inner: Box<Check>,
    },
    /// Unlatches a guard slot. Placed immediately before the loop a probe
    /// lives in, so re-entering the loop re-establishes the guard (the
    /// probed operands may have changed between entries).
    GuardReset {
        /// The guard slot to unlatch.
        slot: u32,
    },
}

impl Check {
    /// A short stable name for counting/reporting.
    pub fn name(&self) -> &'static str {
        match self {
            Check::Null { .. } => "null",
            Check::SeqBounds { .. } => "seq_bounds",
            Check::SeqToSafe { .. } => "seq_to_safe",
            Check::WildBounds { .. } => "wild_bounds",
            Check::WildTag { .. } => "wild_tag",
            Check::Rtti { .. } => "rtti",
            Check::NoStackEscape { .. } => "no_stack_escape",
            Check::IndexBound { .. } => "index_bound",
            Check::Temporal { .. } => "temporal",
            Check::Probe { .. } => "probe",
            Check::Guarded { .. } => "guarded",
            Check::GuardReset { .. } => "guard_reset",
        }
    }

    /// The check this one accounts as: `Guarded` and `Probe` stand in for
    /// the original check they wrap (counters, profiles and reports
    /// attribute their events to that kind), everything else for itself.
    pub fn accounted(&self) -> &Check {
        match self {
            Check::Guarded { inner, .. } => inner.accounted(),
            Check::Probe { inner, .. } => inner.first().map_or(self, Check::accounted),
            _ => self,
        }
    }
}

/// The target of a call.
#[derive(Debug, Clone)]
pub enum Callee {
    /// A defined function.
    Func(FuncId),
    /// An external function.
    Extern(ExternId),
    /// An indirect call through a function pointer.
    Ptr(Exp),
}

/// An lvalue: a base plus a chain of offsets.
#[derive(Debug, Clone)]
pub struct Lval {
    /// Where the lvalue starts.
    pub base: LvBase,
    /// Field/index offsets applied in order.
    pub offsets: Vec<Offset>,
}

impl Lval {
    /// An lvalue naming a local variable directly.
    pub fn local(id: LocalId) -> Lval {
        Lval {
            base: LvBase::Local(id),
            offsets: Vec::new(),
        }
    }

    /// An lvalue naming a global variable directly.
    pub fn global(id: GlobalId) -> Lval {
        Lval {
            base: LvBase::Global(id),
            offsets: Vec::new(),
        }
    }

    /// An lvalue dereferencing a pointer expression.
    pub fn deref(e: Exp) -> Lval {
        Lval {
            base: LvBase::Deref(Box::new(e)),
            offsets: Vec::new(),
        }
    }

    /// Whether the base is a memory dereference (vs. a named variable).
    pub fn is_deref(&self) -> bool {
        matches!(self.base, LvBase::Deref(_))
    }
}

/// The base of an lvalue.
#[derive(Debug, Clone)]
pub enum LvBase {
    /// A local variable of the current function.
    Local(LocalId),
    /// A global variable.
    Global(GlobalId),
    /// A dereference of a pointer-typed expression.
    Deref(Box<Exp>),
}

/// One offset step within an lvalue.
#[derive(Debug, Clone)]
pub enum Offset {
    /// Select field `index` of aggregate `comp`.
    Field(CompId, usize),
    /// Index into an array (the expression has integer type).
    Index(Exp),
}

/// A constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Integer constant with its kind.
    Int(i128, IntKind),
    /// Float constant with its kind.
    Float(f64, FloatKind),
}

/// Unary operators (arithmetic only; `*`/`&` are structural).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    BitNot,
    /// Logical not, yielding `int` 0/1.
    Not,
}

/// Binary operators. Pointer arithmetic is distinguished as in CIL so that
/// constraint generation and instrumentation can key off it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    /// `ptr + int`, yielding a pointer of the same type.
    PlusPI,
    /// `ptr - int`, yielding a pointer of the same type.
    MinusPI,
    /// `ptr - ptr`, yielding an integer.
    MinusPP,
}

impl BinOp {
    /// Whether this operator is pointer arithmetic that moves a pointer.
    pub fn is_pointer_arith(self) -> bool {
        matches!(self, BinOp::PlusPI | BinOp::MinusPI)
    }
}

/// A reference to a function used as a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FnRef {
    /// A defined function.
    Def(FuncId),
    /// An external function.
    Ext(ExternId),
}

/// A side-effect-free expression. Every node carries its [`TypeId`].
#[derive(Debug, Clone)]
pub enum Exp {
    /// A constant.
    Const(Const, TypeId),
    /// Read an lvalue.
    Load(Box<Lval>, TypeId),
    /// `&lval`
    AddrOf(Box<Lval>, TypeId),
    /// Array-to-pointer decay: address of element 0 of an array lvalue.
    StartOf(Box<Lval>, TypeId),
    /// Address of a function (function-to-pointer decay).
    FnAddr(FnRef, TypeId),
    /// Unary arithmetic.
    Unop(UnOp, Box<Exp>, TypeId),
    /// Binary arithmetic/comparison/pointer arithmetic.
    Binop(BinOp, Box<Exp>, Box<Exp>, TypeId),
    /// A cast; the [`CastId`] indexes [`Program::casts`].
    Cast(CastId, Box<Exp>, TypeId),
    /// `sizeof(T)`, already resolved to a constant value but kept symbolic
    /// for readability of dumps.
    SizeOf(TypeId, u64, TypeId),
}

impl Exp {
    /// The type of this expression.
    pub fn ty(&self) -> TypeId {
        match self {
            Exp::Const(_, t)
            | Exp::Load(_, t)
            | Exp::AddrOf(_, t)
            | Exp::StartOf(_, t)
            | Exp::FnAddr(_, t)
            | Exp::Unop(_, _, t)
            | Exp::Binop(_, _, _, t)
            | Exp::Cast(_, _, t)
            | Exp::SizeOf(_, _, t) => *t,
        }
    }

    /// Builds an integer constant of the given kind/type.
    pub fn int(value: i128, kind: IntKind, ty: TypeId) -> Exp {
        Exp::Const(Const::Int(value, kind), ty)
    }

    /// Whether this is a literal integer zero (the null pointer constant).
    pub fn is_zero(&self) -> bool {
        matches!(self, Exp::Const(Const::Int(0, _), _))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeTable;

    #[test]
    fn exp_reports_type() {
        let mut t = TypeTable::default();
        let i = t.mk_int(IntKind::Int);
        let e = Exp::int(7, IntKind::Int, i);
        assert_eq!(e.ty(), i);
        assert!(!e.is_zero());
        assert!(Exp::int(0, IntKind::Int, i).is_zero());
    }

    #[test]
    fn lval_constructors() {
        let l = Lval::local(LocalId(3));
        assert!(!l.is_deref());
        let mut t = TypeTable::default();
        let i = t.mk_int(IntKind::Int);
        let p = t.mk_ptr(i);
        let d = Lval::deref(Exp::int(0, IntKind::Int, p));
        assert!(d.is_deref());
    }

    #[test]
    fn binop_pointer_arith_flag() {
        assert!(BinOp::PlusPI.is_pointer_arith());
        assert!(BinOp::MinusPI.is_pointer_arith());
        assert!(!BinOp::MinusPP.is_pointer_arith());
        assert!(!BinOp::Add.is_pointer_arith());
    }
}
