//! # ccured-cil
//!
//! A CIL-like typed intermediate representation for the ccured-rs pipeline,
//! together with:
//!
//! * a type table with a C layout engine ([`types`]),
//! * lowering from the `ccured-ast` syntax tree with full type checking
//!   ([`lower`]),
//! * the *physical type* machinery of Section 3.1 of the paper — physical
//!   equality and physical subtyping over flattened layouts ([`phys`]),
//! * a pretty printer for IR dumps ([`pretty`]).
//!
//! The IR mirrors CIL's simplifications: expressions are side-effect free,
//! calls appear only as instructions, `e1[e2]` is represented as pointer
//! arithmetic plus dereference, and every syntactic pointer-type occurrence
//! carries a distinct qualifier variable ([`types::QualId`]) for the
//! whole-program kind inference of `ccured-infer`.
//!
//! # Examples
//!
//! ```
//! use ccured_cil::lower::lower_translation_unit;
//!
//! let tu = ccured_ast::parse_translation_unit(
//!     "int add(int a, int b) { return a + b; }",
//! ).unwrap();
//! let prog = lower_translation_unit(&tu).unwrap();
//! assert_eq!(prog.functions.len(), 1);
//! ```

pub mod ir;
pub mod lower;
pub mod phys;
pub mod pretty;
pub mod types;

pub use ir::Program;
pub use lower::lower_translation_unit;
pub use types::{CompId, QualId, TypeId, TypeTable};
