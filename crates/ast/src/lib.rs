//! # ccured-ast
//!
//! Frontend for the C subset accepted by `ccured-rs`: lexer, recursive-descent
//! parser, abstract syntax tree, source map and diagnostics.
//!
//! The subset is large enough to express the workloads of *CCured in the Real
//! World* (PLDI 2003): the full expression and statement grammar of C89
//! (without the preprocessor), `struct`/`union`/`enum`/`typedef`, function
//! pointers, variadic functions, initializers, and the CCured-specific
//! annotations:
//!
//! * pointer-kind assertions `__SAFE`, `__SEQ`, `__WILD`, `__RTTI`,
//! * representation qualifiers `__SPLIT` / `__NOSPLIT`,
//! * `__TRUSTED` casts (`(int * __TRUSTED) e` or `#pragma ccured_trusted`),
//! * wrapper declarations `#pragma ccuredWrapperOf("wrapper", "external")`.
//!
//! # Examples
//!
//! ```
//! use ccured_ast::parse_translation_unit;
//!
//! let tu = parse_translation_unit("int main(void) { return 0; }").unwrap();
//! assert_eq!(tu.decls.len(), 1);
//! ```

pub mod ast;
pub mod diag;
pub mod lex;
pub mod parse;
pub mod pretty;
pub mod span;

pub use ast::TranslationUnit;
pub use diag::{Diag, DiagKind};
pub use parse::{parse_translation_unit, Parser};
pub use span::{SourceMap, Span};
