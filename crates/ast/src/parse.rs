//! Recursive-descent parser for the ccured-rs C subset.
//!
//! The parser tracks typedef names in lexical scopes to resolve the classic
//! C ambiguities (declaration vs. expression statement, cast vs. call).

use crate::ast::*;
use crate::diag::Diag;
use crate::lex::{lex, Keyword, Punct, Token, TokenKind};
use crate::span::Span;
use std::collections::HashMap;

/// Parses a complete source file into a [`TranslationUnit`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
///
/// # Examples
///
/// ```
/// let tu = ccured_ast::parse_translation_unit("int x = 1;").unwrap();
/// assert_eq!(tu.decls.len(), 1);
/// ```
pub fn parse_translation_unit(src: &str) -> Result<TranslationUnit, Diag> {
    let tokens = lex(src)?;
    Parser::new(tokens).translation_unit()
}

/// The parser state: a token cursor plus typedef scopes.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Innermost scope last; `true` means the name is a typedef.
    scopes: Vec<HashMap<String, bool>>,
}

impl Parser {
    /// Creates a parser over a lexed token stream (must end with `Eof`).
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            scopes: vec![HashMap::new()],
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_nth(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: Punct) -> bool {
        matches!(self.peek(), TokenKind::P(q) if *q == p)
    }

    fn at_kw(&self, k: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Kw(q) if *q == k)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        if self.at_kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<Span, Diag> {
        if self.at_punct(p) {
            Ok(self.bump().span)
        } else {
            Err(Diag::error(
                self.span(),
                format!("expected `{}`, found {}", p.as_str(), self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diag> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            other => Err(Diag::error(
                self.span(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
        debug_assert!(!self.scopes.is_empty(), "global scope must remain");
    }

    fn define_name(&mut self, name: &str, is_typedef: bool) {
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .insert(name.to_string(), is_typedef);
    }

    fn is_typedef_name(&self, name: &str) -> bool {
        for scope in self.scopes.iter().rev() {
            if let Some(&is_td) = scope.get(name) {
                return is_td;
            }
        }
        false
    }

    /// Whether the current token can begin declaration specifiers.
    fn starts_decl_specs(&self) -> bool {
        match self.peek() {
            TokenKind::Kw(k) => matches!(
                k,
                Keyword::Void
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Signed
                    | Keyword::Unsigned
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Struct
                    | Keyword::Union
                    | Keyword::Enum
                    | Keyword::Typedef
                    | Keyword::Extern
                    | Keyword::Static
                    | Keyword::Const
                    | Keyword::Volatile
                    | Keyword::Split
                    | Keyword::NoSplit
            ),
            TokenKind::Ident(name) => self.is_typedef_name(name),
            _ => false,
        }
    }

    /// Parses the whole token stream as a translation unit.
    pub fn translation_unit(&mut self) -> Result<TranslationUnit, Diag> {
        let mut decls = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Pragma(_) => {
                    let tok = self.bump();
                    if let TokenKind::Pragma(raw) = tok.kind {
                        decls.push(ExtDecl::Pragma(PragmaDirective {
                            raw,
                            span: tok.span,
                        }));
                    }
                }
                TokenKind::P(Punct::Semi) => {
                    self.bump();
                }
                _ => decls.push(self.external_declaration()?),
            }
        }
        Ok(TranslationUnit { decls })
    }

    fn external_declaration(&mut self) -> Result<ExtDecl, Diag> {
        let start = self.span();
        let specs = self.decl_specs()?;
        // Bare `struct S { ... };` style declaration.
        if self.eat_punct(Punct::Semi) {
            return Ok(ExtDecl::Decl(Declaration {
                specs,
                inits: Vec::new(),
                span: start.to(self.prev_span()),
            }));
        }
        let declarator = self.declarator(false)?;
        if declarator.is_function() && self.at_punct(Punct::LBrace) {
            // A function definition: register its name, then parse the body
            // with parameters in scope.
            if let Some(name) = &declarator.name {
                self.define_name(name, false);
            }
            self.push_scope();
            if let Some(Derived::Function(params, _)) = declarator.derived.first() {
                for p in params {
                    if let Some(name) = &p.declarator.name {
                        let is_td = false;
                        let name = name.clone();
                        self.define_name(&name, is_td);
                    }
                }
            }
            let body_start = self.span();
            self.expect_punct(Punct::LBrace)?;
            let mut body = Vec::new();
            while !self.at_punct(Punct::RBrace) {
                if matches!(self.peek(), TokenKind::Eof) {
                    return Err(Diag::error(body_start, "unterminated function body"));
                }
                body.push(self.statement()?);
            }
            self.expect_punct(Punct::RBrace)?;
            self.pop_scope();
            let span = start.to(self.prev_span());
            return Ok(ExtDecl::Function(FunctionDef {
                specs,
                declarator,
                body,
                span,
            }));
        }
        let decl = self.finish_declaration(start, specs, declarator)?;
        Ok(ExtDecl::Decl(decl))
    }

    /// Parses the init-declarator list after the first declarator.
    fn finish_declaration(
        &mut self,
        start: Span,
        specs: DeclSpecs,
        first: Declarator,
    ) -> Result<Declaration, Diag> {
        let is_typedef = specs.storage == Some(Storage::Typedef);
        let mut inits = Vec::new();
        let mut declarator = first;
        loop {
            if let Some(name) = &declarator.name {
                self.define_name(name, is_typedef);
            }
            let init = if self.eat_punct(Punct::Eq) {
                Some(self.initializer()?)
            } else {
                None
            };
            inits.push(InitDeclarator { declarator, init });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
            declarator = self.declarator(false)?;
        }
        self.expect_punct(Punct::Semi)?;
        Ok(Declaration {
            specs,
            inits,
            span: start.to(self.prev_span()),
        })
    }

    fn declaration(&mut self) -> Result<Declaration, Diag> {
        let start = self.span();
        let specs = self.decl_specs()?;
        if self.eat_punct(Punct::Semi) {
            return Ok(Declaration {
                specs,
                inits: Vec::new(),
                span: start.to(self.prev_span()),
            });
        }
        let first = self.declarator(false)?;
        self.finish_declaration(start, specs, first)
    }

    // ---------------------------------------------------------------- specs

    fn decl_specs(&mut self) -> Result<DeclSpecs, Diag> {
        let start = self.span();
        let mut storage = None;
        let mut split = None;
        let mut is_const = false;
        let mut signedness: Option<bool> = None;
        let mut size: Option<IntSize> = None;
        let mut base: Option<TypeSpec> = None;
        let mut saw_int_kw = false;

        loop {
            match self.peek().clone() {
                TokenKind::Kw(kw) => match kw {
                    Keyword::Typedef | Keyword::Extern | Keyword::Static => {
                        if storage.is_some() {
                            return Err(Diag::error(self.span(), "multiple storage classes"));
                        }
                        storage = Some(match kw {
                            Keyword::Typedef => Storage::Typedef,
                            Keyword::Extern => Storage::Extern,
                            _ => Storage::Static,
                        });
                        self.bump();
                    }
                    Keyword::Const | Keyword::Volatile => {
                        is_const |= kw == Keyword::Const;
                        self.bump();
                    }
                    Keyword::Split => {
                        split = Some(true);
                        self.bump();
                    }
                    Keyword::NoSplit => {
                        split = Some(false);
                        self.bump();
                    }
                    Keyword::Signed => {
                        signedness = Some(true);
                        self.bump();
                    }
                    Keyword::Unsigned => {
                        signedness = Some(false);
                        self.bump();
                    }
                    Keyword::Short => {
                        size = Some(IntSize::Short);
                        self.bump();
                    }
                    Keyword::Long => {
                        size = Some(match size {
                            Some(IntSize::Long) => IntSize::LongLong,
                            _ => IntSize::Long,
                        });
                        self.bump();
                    }
                    Keyword::Void => {
                        self.set_base(&mut base, TypeSpec::Void)?;
                        self.bump();
                    }
                    Keyword::Char => {
                        self.set_base(&mut base, TypeSpec::Char { signed: None })?;
                        self.bump();
                    }
                    Keyword::Int => {
                        saw_int_kw = true;
                        self.bump();
                    }
                    Keyword::Float => {
                        self.set_base(&mut base, TypeSpec::Float)?;
                        self.bump();
                    }
                    Keyword::Double => {
                        self.set_base(&mut base, TypeSpec::Double)?;
                        self.bump();
                    }
                    Keyword::Struct | Keyword::Union => {
                        let spec = self.comp_spec(kw == Keyword::Union)?;
                        self.set_base(&mut base, TypeSpec::Comp(spec))?;
                    }
                    Keyword::Enum => {
                        let spec = self.enum_spec()?;
                        self.set_base(&mut base, TypeSpec::Enum(spec))?;
                    }
                    _ => break,
                },
                TokenKind::Ident(name)
                    if base.is_none()
                        && !saw_int_kw
                        && signedness.is_none()
                        && size.is_none()
                        && self.is_typedef_name(&name) =>
                {
                    self.bump();
                    base = Some(TypeSpec::Name(name));
                }
                _ => break,
            }
        }

        // Resolve integer-flavored combinations.
        let type_spec = match base {
            Some(TypeSpec::Char { .. }) => TypeSpec::Char { signed: signedness },
            Some(ts) => {
                if signedness.is_some() || size.is_some() || saw_int_kw {
                    return Err(Diag::error(start, "conflicting type specifiers"));
                }
                ts
            }
            None => {
                if saw_int_kw || signedness.is_some() || size.is_some() {
                    TypeSpec::Int {
                        signed: signedness.unwrap_or(true),
                        size: size.unwrap_or(IntSize::Int),
                    }
                } else {
                    return Err(Diag::error(
                        self.span(),
                        format!("expected type specifier, found {}", self.peek()),
                    ));
                }
            }
        };

        Ok(DeclSpecs {
            storage,
            type_spec,
            split,
            is_const,
            span: start.to(self.prev_span()),
        })
    }

    fn set_base(&self, base: &mut Option<TypeSpec>, ts: TypeSpec) -> Result<(), Diag> {
        if base.is_some() {
            return Err(Diag::error(
                self.span(),
                "multiple base types in declaration",
            ));
        }
        *base = Some(ts);
        Ok(())
    }

    fn comp_spec(&mut self, is_union: bool) -> Result<CompSpec, Diag> {
        let start = self.span();
        self.bump(); // struct / union
        let tag = match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Some(name)
            }
            _ => None,
        };
        let fields = if self.eat_punct(Punct::LBrace) {
            let mut groups = Vec::new();
            while !self.at_punct(Punct::RBrace) {
                let gstart = self.span();
                let specs = self.decl_specs()?;
                let mut declarators = Vec::new();
                if !self.at_punct(Punct::Semi) {
                    loop {
                        declarators.push(self.declarator(false)?);
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                }
                self.expect_punct(Punct::Semi)?;
                groups.push(FieldGroup {
                    specs,
                    declarators,
                    span: gstart.to(self.prev_span()),
                });
            }
            self.expect_punct(Punct::RBrace)?;
            Some(groups)
        } else {
            if tag.is_none() {
                return Err(Diag::error(
                    start,
                    "anonymous struct/union requires a definition",
                ));
            }
            None
        };
        Ok(CompSpec {
            is_union,
            tag,
            fields,
            span: start.to(self.prev_span()),
        })
    }

    fn enum_spec(&mut self) -> Result<EnumSpec, Diag> {
        let start = self.span();
        self.bump(); // enum
        let tag = match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Some(name)
            }
            _ => None,
        };
        let items = if self.eat_punct(Punct::LBrace) {
            let mut items = Vec::new();
            while !self.at_punct(Punct::RBrace) {
                let (name, ispan) = self.expect_ident()?;
                let value = if self.eat_punct(Punct::Eq) {
                    Some(self.conditional_expr()?)
                } else {
                    None
                };
                // Enumerators are ordinary (non-typedef) names afterwards.
                self.define_name(&name, false);
                items.push(Enumerator {
                    name,
                    value,
                    span: ispan.to(self.prev_span()),
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RBrace)?;
            Some(items)
        } else {
            if tag.is_none() {
                return Err(Diag::error(start, "anonymous enum requires a definition"));
            }
            None
        };
        Ok(EnumSpec {
            tag,
            items,
            span: start.to(self.prev_span()),
        })
    }

    // ----------------------------------------------------------- declarators

    /// Parses a (possibly abstract) declarator.
    ///
    /// `abstract_ok` permits omitting the name (type names, parameters).
    fn declarator(&mut self, abstract_ok: bool) -> Result<Declarator, Diag> {
        let start = self.span();
        let mut ptrs: Vec<PtrQuals> = Vec::new();
        while self.at_punct(Punct::Star) {
            self.bump();
            ptrs.push(self.ptr_quals());
        }

        let (name, mut derived) = self.direct_declarator(abstract_ok)?;

        // Pointers bind last (outermost in the derived chain), innermost `*`
        // parsed first ends up deepest.
        for q in ptrs.into_iter().rev() {
            derived.push(Derived::Pointer(q));
        }

        Ok(Declarator {
            name,
            derived,
            span: start.to(self.prev_span()),
        })
    }

    fn ptr_quals(&mut self) -> PtrQuals {
        let mut q = PtrQuals::default();
        loop {
            match self.peek() {
                TokenKind::Kw(Keyword::Safe) => {
                    q.kind = Some(PtrKindAnnot::Safe);
                    self.bump();
                }
                TokenKind::Kw(Keyword::Seq) => {
                    q.kind = Some(PtrKindAnnot::Seq);
                    self.bump();
                }
                TokenKind::Kw(Keyword::Wild) => {
                    q.kind = Some(PtrKindAnnot::Wild);
                    self.bump();
                }
                TokenKind::Kw(Keyword::Rtti) => {
                    q.kind = Some(PtrKindAnnot::Rtti);
                    self.bump();
                }
                TokenKind::Kw(Keyword::Split) => {
                    q.split = Some(true);
                    self.bump();
                }
                TokenKind::Kw(Keyword::NoSplit) => {
                    q.split = Some(false);
                    self.bump();
                }
                TokenKind::Kw(Keyword::Const) | TokenKind::Kw(Keyword::Volatile) => {
                    q.is_const = true;
                    self.bump();
                }
                _ => return q,
            }
        }
    }

    fn direct_declarator(
        &mut self,
        abstract_ok: bool,
    ) -> Result<(Option<String>, Vec<Derived>), Diag> {
        let mut name = None;
        let mut inner: Vec<Derived> = Vec::new();

        match self.peek().clone() {
            TokenKind::Ident(id) => {
                self.bump();
                name = Some(id);
            }
            TokenKind::P(Punct::LParen) if self.lparen_is_nested_declarator(abstract_ok) => {
                self.bump();
                let d = self.declarator(abstract_ok)?;
                self.expect_punct(Punct::RParen)?;
                name = d.name;
                inner = d.derived;
            }
            _ if abstract_ok => {}
            other => {
                return Err(Diag::error(
                    self.span(),
                    format!("expected declarator, found {other}"),
                ))
            }
        }

        let mut postfix: Vec<Derived> = Vec::new();
        loop {
            if self.eat_punct(Punct::LBracket) {
                let len = if self.at_punct(Punct::RBracket) {
                    None
                } else {
                    Some(Box::new(self.conditional_expr()?))
                };
                self.expect_punct(Punct::RBracket)?;
                postfix.push(Derived::Array(len));
            } else if self.at_punct(Punct::LParen) {
                self.bump();
                let (params, varargs) = self.param_list()?;
                postfix.push(Derived::Function(params, varargs));
            } else {
                break;
            }
        }

        inner.extend(postfix);
        Ok((name, inner))
    }

    /// Decides whether `(` after a declarator base starts a nested declarator
    /// (e.g., `(*f)`) or a parameter list (e.g., `f(int)`).
    fn lparen_is_nested_declarator(&self, abstract_ok: bool) -> bool {
        match self.peek_nth(1) {
            TokenKind::P(Punct::Star) | TokenKind::P(Punct::LParen) => true,
            TokenKind::Ident(n) => {
                if self.is_typedef_name(n) {
                    false // parameter list with a typedef-named type
                } else {
                    // A non-typedef identifier directly inside parentheses is
                    // a nested declarator name, not a K&R parameter.
                    true
                }
            }
            TokenKind::P(Punct::RParen) if abstract_ok => {
                // `int (*)(void)` style: for abstract declarators, `()` after
                // nothing is a function with no parameters.
                false
            }
            _ => false,
        }
    }

    fn param_list(&mut self) -> Result<(Vec<ParamDecl>, bool), Diag> {
        let mut params = Vec::new();
        let mut varargs = false;
        if self.eat_punct(Punct::RParen) {
            return Ok((params, varargs));
        }
        // `(void)` means no parameters.
        if self.at_kw(Keyword::Void) && matches!(self.peek_nth(1), TokenKind::P(Punct::RParen)) {
            self.bump();
            self.bump();
            return Ok((params, varargs));
        }
        loop {
            if self.eat_punct(Punct::Ellipsis) {
                varargs = true;
                break;
            }
            let pstart = self.span();
            let specs = self.decl_specs()?;
            let declarator = self.declarator(true)?;
            params.push(ParamDecl {
                specs,
                declarator,
                span: pstart.to(self.prev_span()),
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        Ok((params, varargs))
    }

    fn type_name(&mut self) -> Result<TypeName, Diag> {
        let start = self.span();
        let trusted = self.eat_kw(Keyword::Trusted);
        let specs = self.decl_specs()?;
        let mut trusted = trusted;
        // `__TRUSTED` may also follow the specifiers: `(struct S * __TRUSTED)`.
        let declarator = self.declarator_with_trusted(&mut trusted)?;
        Ok(TypeName {
            specs,
            declarator,
            trusted,
            span: start.to(self.prev_span()),
        })
    }

    /// Like [`Parser::declarator`] for abstract declarators, but strips a
    /// trailing `__TRUSTED` marker on any pointer level into `trusted`.
    fn declarator_with_trusted(&mut self, trusted: &mut bool) -> Result<Declarator, Diag> {
        let start = self.span();
        let mut ptrs: Vec<PtrQuals> = Vec::new();
        while self.at_punct(Punct::Star) {
            self.bump();
            if self.eat_kw(Keyword::Trusted) {
                *trusted = true;
            }
            ptrs.push(self.ptr_quals());
            if self.eat_kw(Keyword::Trusted) {
                *trusted = true;
            }
        }
        let (name, mut derived) = self.direct_declarator(true)?;
        for q in ptrs.into_iter().rev() {
            derived.push(Derived::Pointer(q));
        }
        Ok(Declarator {
            name,
            derived,
            span: start.to(self.prev_span()),
        })
    }

    // ------------------------------------------------------------ statements

    fn statement(&mut self) -> Result<Stmt, Diag> {
        let start = self.span();
        // Label: `ident :` (but not `default:`/`case`).
        if let TokenKind::Ident(name) = self.peek().clone() {
            if matches!(self.peek_nth(1), TokenKind::P(Punct::Colon))
                && !self.is_typedef_name(&name)
            {
                self.bump();
                self.bump();
                let inner = self.statement()?;
                return Ok(Stmt {
                    kind: StmtKind::Label(name, Box::new(inner)),
                    span: start.to(self.prev_span()),
                });
            }
        }
        if self.starts_decl_specs() {
            let decl = self.declaration()?;
            return Ok(Stmt {
                span: decl.span,
                kind: StmtKind::Decl(decl),
            });
        }
        // `size_t n = 0;` — an undeclared name in type position would
        // otherwise fall through to the expression parser and produce a
        // misleading `expected \`;\`` at the second identifier.
        if let (TokenKind::Ident(name), TokenKind::Ident(_)) =
            (self.peek().clone(), self.peek_nth(1).clone())
        {
            if !self.is_typedef_name(&name) {
                return Err(Diag::error(
                    self.span(),
                    format!("unknown type name `{name}`"),
                ));
            }
        }
        match self.peek().clone() {
            TokenKind::P(Punct::LBrace) => {
                self.bump();
                self.push_scope();
                let mut stmts = Vec::new();
                while !self.at_punct(Punct::RBrace) {
                    if matches!(self.peek(), TokenKind::Eof) {
                        return Err(Diag::error(start, "unterminated block"));
                    }
                    stmts.push(self.statement()?);
                }
                self.expect_punct(Punct::RBrace)?;
                self.pop_scope();
                Ok(Stmt {
                    kind: StmtKind::Block(stmts),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::P(Punct::Semi) => {
                self.bump();
                Ok(Stmt {
                    kind: StmtKind::Expr(None),
                    span: start,
                })
            }
            TokenKind::Kw(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then = Box::new(self.statement()?);
                let els = if self.eat_kw(Keyword::Else) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Stmt {
                    kind: StmtKind::If(cond, then, els),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Kw(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt {
                    kind: StmtKind::While(cond, body),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Kw(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.statement()?);
                if !self.eat_kw(Keyword::While) {
                    return Err(Diag::error(self.span(), "expected `while` after do-body"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::DoWhile(body, cond),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Kw(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                self.push_scope();
                let init = if self.at_punct(Punct::Semi) {
                    self.bump();
                    None
                } else if self.starts_decl_specs() {
                    Some(ForInit::Decl(self.declaration()?))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Some(ForInit::Expr(e))
                };
                let cond = if self.at_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if self.at_punct(Punct::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.statement()?);
                self.pop_scope();
                Ok(Stmt {
                    kind: StmtKind::For(init, cond, step, body),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Kw(Keyword::Switch) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let scrut = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt {
                    kind: StmtKind::Switch(scrut, body),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Kw(Keyword::Case) => {
                self.bump();
                let value = self.conditional_expr()?;
                self.expect_punct(Punct::Colon)?;
                let inner = Box::new(self.statement()?);
                Ok(Stmt {
                    kind: StmtKind::Case(value, inner),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Kw(Keyword::Default) => {
                self.bump();
                self.expect_punct(Punct::Colon)?;
                let inner = Box::new(self.statement()?);
                Ok(Stmt {
                    kind: StmtKind::Default(inner),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Kw(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Break,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Kw(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Continue,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Kw(Keyword::Return) => {
                self.bump();
                let value = if self.at_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Return(value),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Kw(Keyword::Goto) => {
                self.bump();
                let (label, _) = self.expect_ident()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Goto(label),
                    span: start.to(self.prev_span()),
                })
            }
            _ => {
                let e = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Expr(Some(e)),
                    span: start.to(self.prev_span()),
                })
            }
        }
    }

    fn initializer(&mut self) -> Result<Initializer, Diag> {
        if self.at_punct(Punct::LBrace) {
            let start = self.span();
            self.bump();
            let mut items = Vec::new();
            while !self.at_punct(Punct::RBrace) {
                items.push(self.initializer()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RBrace)?;
            Ok(Initializer::List(items, start.to(self.prev_span())))
        } else {
            Ok(Initializer::Expr(self.assignment_expr()?))
        }
    }

    // ----------------------------------------------------------- expressions

    /// Parses a full (comma-including) expression.
    pub fn expr(&mut self) -> Result<Expr, Diag> {
        let mut e = self.assignment_expr()?;
        while self.at_punct(Punct::Comma) {
            self.bump();
            let rhs = self.assignment_expr()?;
            let span = e.span.to(rhs.span);
            e = Expr {
                kind: ExprKind::Comma(Box::new(e), Box::new(rhs)),
                span,
            };
        }
        Ok(e)
    }

    fn assignment_expr(&mut self) -> Result<Expr, Diag> {
        let lhs = self.conditional_expr()?;
        let op = match self.peek() {
            TokenKind::P(Punct::Eq) => Some(None),
            TokenKind::P(Punct::PlusEq) => Some(Some(BinOp::Add)),
            TokenKind::P(Punct::MinusEq) => Some(Some(BinOp::Sub)),
            TokenKind::P(Punct::StarEq) => Some(Some(BinOp::Mul)),
            TokenKind::P(Punct::SlashEq) => Some(Some(BinOp::Div)),
            TokenKind::P(Punct::PercentEq) => Some(Some(BinOp::Rem)),
            TokenKind::P(Punct::ShlEq) => Some(Some(BinOp::Shl)),
            TokenKind::P(Punct::ShrEq) => Some(Some(BinOp::Shr)),
            TokenKind::P(Punct::AmpEq) => Some(Some(BinOp::BitAnd)),
            TokenKind::P(Punct::CaretEq) => Some(Some(BinOp::BitXor)),
            TokenKind::P(Punct::PipeEq) => Some(Some(BinOp::BitOr)),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assignment_expr()?;
            let span = lhs.span.to(rhs.span);
            return Ok(Expr {
                kind: ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
                span,
            });
        }
        Ok(lhs)
    }

    fn conditional_expr(&mut self) -> Result<Expr, Diag> {
        let cond = self.binary_expr(0)?;
        if self.eat_punct(Punct::Question) {
            let then = self.expr()?;
            self.expect_punct(Punct::Colon)?;
            let els = self.conditional_expr()?;
            let span = cond.span.to(els.span);
            return Ok(Expr {
                kind: ExprKind::Cond(Box::new(cond), Box::new(then), Box::new(els)),
                span,
            });
        }
        Ok(cond)
    }

    fn binop_at(&self) -> Option<(BinOp, u8)> {
        let (op, prec) = match self.peek() {
            TokenKind::P(Punct::PipePipe) => (BinOp::LogOr, 1),
            TokenKind::P(Punct::AmpAmp) => (BinOp::LogAnd, 2),
            TokenKind::P(Punct::Pipe) => (BinOp::BitOr, 3),
            TokenKind::P(Punct::Caret) => (BinOp::BitXor, 4),
            TokenKind::P(Punct::Amp) => (BinOp::BitAnd, 5),
            TokenKind::P(Punct::EqEq) => (BinOp::Eq, 6),
            TokenKind::P(Punct::Ne) => (BinOp::Ne, 6),
            TokenKind::P(Punct::Lt) => (BinOp::Lt, 7),
            TokenKind::P(Punct::Gt) => (BinOp::Gt, 7),
            TokenKind::P(Punct::Le) => (BinOp::Le, 7),
            TokenKind::P(Punct::Ge) => (BinOp::Ge, 7),
            TokenKind::P(Punct::Shl) => (BinOp::Shl, 8),
            TokenKind::P(Punct::Shr) => (BinOp::Shr, 8),
            TokenKind::P(Punct::Plus) => (BinOp::Add, 9),
            TokenKind::P(Punct::Minus) => (BinOp::Sub, 9),
            TokenKind::P(Punct::Star) => (BinOp::Mul, 10),
            TokenKind::P(Punct::Slash) => (BinOp::Div, 10),
            TokenKind::P(Punct::Percent) => (BinOp::Rem, 10),
            _ => return None,
        };
        Some((op, prec))
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, Diag> {
        let mut lhs = self.cast_expr()?;
        while let Some((op, prec)) = self.binop_at() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    /// Whether `(` at the current position begins a type name (cast/sizeof).
    fn lparen_starts_type(&self) -> bool {
        debug_assert!(self.at_punct(Punct::LParen));
        match self.peek_nth(1) {
            TokenKind::Kw(k) => matches!(
                k,
                Keyword::Void
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Signed
                    | Keyword::Unsigned
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Struct
                    | Keyword::Union
                    | Keyword::Enum
                    | Keyword::Const
                    | Keyword::Volatile
                    | Keyword::Split
                    | Keyword::NoSplit
                    | Keyword::Trusted
            ),
            TokenKind::Ident(n) => self.is_typedef_name(n),
            _ => false,
        }
    }

    fn cast_expr(&mut self) -> Result<Expr, Diag> {
        if self.at_punct(Punct::LParen) && self.lparen_starts_type() {
            let start = self.span();
            self.bump();
            let ty = self.type_name()?;
            self.expect_punct(Punct::RParen)?;
            let inner = self.cast_expr()?;
            let span = start.to(inner.span);
            return Ok(Expr {
                kind: ExprKind::Cast(ty, Box::new(inner)),
                span,
            });
        }
        self.unary_expr()
    }

    fn unary_expr(&mut self) -> Result<Expr, Diag> {
        let start = self.span();
        let op = match self.peek() {
            TokenKind::P(Punct::Minus) => Some(UnOp::Neg),
            TokenKind::P(Punct::Plus) => Some(UnOp::Plus),
            TokenKind::P(Punct::Bang) => Some(UnOp::Not),
            TokenKind::P(Punct::Tilde) => Some(UnOp::BitNot),
            TokenKind::P(Punct::Star) => Some(UnOp::Deref),
            TokenKind::P(Punct::Amp) => Some(UnOp::Addr),
            TokenKind::P(Punct::Inc) => Some(UnOp::PreInc),
            TokenKind::P(Punct::Dec) => Some(UnOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.cast_expr()?;
            let span = start.to(inner.span);
            return Ok(Expr {
                kind: ExprKind::Unary(op, Box::new(inner)),
                span,
            });
        }
        if self.at_kw(Keyword::Sizeof) {
            self.bump();
            if self.at_punct(Punct::LParen) && self.lparen_starts_type() {
                self.bump();
                let ty = self.type_name()?;
                self.expect_punct(Punct::RParen)?;
                return Ok(Expr {
                    kind: ExprKind::SizeofType(ty),
                    span: start.to(self.prev_span()),
                });
            }
            let inner = self.unary_expr()?;
            let span = start.to(inner.span);
            return Ok(Expr {
                kind: ExprKind::SizeofExpr(Box::new(inner)),
                span,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, Diag> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek().clone() {
                TokenKind::P(Punct::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.assignment_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Call(Box::new(e), args),
                        span,
                    };
                }
                TokenKind::P(Punct::LBracket) => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        span,
                    };
                }
                TokenKind::P(Punct::Dot) => {
                    self.bump();
                    let (field, _) = self.expect_ident()?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Member(Box::new(e), field),
                        span,
                    };
                }
                TokenKind::P(Punct::Arrow) => {
                    self.bump();
                    let (field, _) = self.expect_ident()?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Arrow(Box::new(e), field),
                        span,
                    };
                }
                TokenKind::P(Punct::Inc) => {
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::PostIncDec(true, Box::new(e)),
                        span,
                    };
                }
                TokenKind::P(Punct::Dec) => {
                    self.bump();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::PostIncDec(false, Box::new(e)),
                        span,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, Diag> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::IntLit(v, suffix) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit(v, suffix),
                    span,
                })
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::FloatLit(v),
                    span,
                })
            }
            TokenKind::CharLit(c) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::CharLit(c),
                    span,
                })
            }
            TokenKind::StrLit(bytes) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::StrLit(bytes),
                    span,
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Ident(name),
                    span,
                })
            }
            TokenKind::P(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(Diag::error(
                span,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> TranslationUnit {
        match parse_translation_unit(src) {
            Ok(tu) => tu,
            Err(d) => panic!("parse failed: {d} in:\n{src}"),
        }
    }

    fn first_fn(tu: &TranslationUnit) -> &FunctionDef {
        tu.decls
            .iter()
            .find_map(|d| match d {
                ExtDecl::Function(f) => Some(f),
                _ => None,
            })
            .expect("no function in translation unit")
    }

    #[test]
    fn parses_simple_function() {
        let tu = parse_ok("int main(void) { return 0; }");
        let f = first_fn(&tu);
        assert_eq!(f.declarator.name.as_deref(), Some("main"));
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn parses_global_variable_with_init() {
        let tu = parse_ok("int x = 42;");
        match &tu.decls[0] {
            ExtDecl::Decl(d) => {
                assert_eq!(d.inits.len(), 1);
                assert!(d.inits[0].init.is_some());
            }
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_pointer_declarators() {
        let tu = parse_ok("int **pp; char *s;");
        match &tu.decls[0] {
            ExtDecl::Decl(d) => {
                let derived = &d.inits[0].declarator.derived;
                assert_eq!(derived.len(), 2);
                assert!(matches!(derived[0], Derived::Pointer(_)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_array_of_pointers() {
        let tu = parse_ok("int *a[10];");
        match &tu.decls[0] {
            ExtDecl::Decl(d) => {
                let derived = &d.inits[0].declarator.derived;
                assert!(matches!(derived[0], Derived::Array(Some(_))));
                assert!(matches!(derived[1], Derived::Pointer(_)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_pointer_to_function() {
        let tu = parse_ok("double (*area)(int r);");
        match &tu.decls[0] {
            ExtDecl::Decl(d) => {
                let dr = &d.inits[0].declarator;
                assert_eq!(dr.name.as_deref(), Some("area"));
                assert!(matches!(dr.derived[0], Derived::Pointer(_)));
                assert!(matches!(dr.derived[1], Derived::Function(..)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_function_returning_pointer() {
        let tu = parse_ok("char *strchr_wrapper(char *str, int chr) { return str; }");
        let f = first_fn(&tu);
        assert!(matches!(f.declarator.derived[0], Derived::Function(..)));
        assert!(matches!(f.declarator.derived[1], Derived::Pointer(_)));
    }

    #[test]
    fn parses_struct_definition_and_use() {
        let tu = parse_ok(
            "struct Figure { double (*area)(struct Figure *obj); };\n\
             struct Circle { double (*area)(struct Figure *obj); int radius; } *c;",
        );
        assert_eq!(tu.decls.len(), 2);
        match &tu.decls[1] {
            ExtDecl::Decl(d) => {
                assert_eq!(d.inits.len(), 1);
                match &d.specs.type_spec {
                    TypeSpec::Comp(cs) => {
                        assert_eq!(cs.tag.as_deref(), Some("Circle"));
                        assert_eq!(cs.fields.as_ref().unwrap().len(), 2);
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_typedef_and_uses_name() {
        let tu = parse_ok("typedef unsigned long size_t; size_t n = 3;");
        assert_eq!(tu.decls.len(), 2);
        match &tu.decls[1] {
            ExtDecl::Decl(d) => assert!(matches!(d.specs.type_spec, TypeSpec::Name(_))),
            _ => panic!(),
        }
    }

    #[test]
    fn typedef_name_cast_vs_call() {
        // `(T)(x)` is a cast when T is a typedef, a call otherwise.
        let tu = parse_ok("typedef int T; int f(int x) { return (T)(x); }");
        let f = first_fn(&tu);
        match &f.body[0].kind {
            StmtKind::Return(Some(e)) => assert!(matches!(e.kind, ExprKind::Cast(..))),
            _ => panic!(),
        }
        let tu2 = parse_ok("int g(int x) { return x; } int f(int x) { return (g)(x); }");
        let f2 = tu2
            .decls
            .iter()
            .filter_map(|d| match d {
                ExtDecl::Function(f) => Some(f),
                _ => None,
            })
            .nth(1)
            .unwrap();
        match &f2.body[0].kind {
            StmtKind::Return(Some(e)) => assert!(matches!(e.kind, ExprKind::Call(..))),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_control_flow() {
        let tu = parse_ok(
            "int f(int n) {\n\
               int s = 0;\n\
               for (int i = 0; i < n; i++) { s += i; }\n\
               while (s > 100) s--;\n\
               do { s++; } while (s < 10);\n\
               switch (s) { case 1: s = 2; break; default: s = 3; }\n\
               if (s) return s; else return 0;\n\
             }",
        );
        let f = first_fn(&tu);
        assert_eq!(f.body.len(), 6);
    }

    #[test]
    fn parses_goto_and_labels() {
        let tu = parse_ok("int f(void) { goto out; out: return 1; }");
        let f = first_fn(&tu);
        assert!(matches!(f.body[0].kind, StmtKind::Goto(_)));
        assert!(matches!(f.body[1].kind, StmtKind::Label(..)));
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let tu = parse_ok("int x = 1 + 2 * 3;");
        match &tu.decls[0] {
            ExtDecl::Decl(d) => match &d.inits[0].init {
                Some(Initializer::Expr(e)) => match &e.kind {
                    ExprKind::Binary(BinOp::Add, _, rhs) => {
                        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, ..)));
                    }
                    other => panic!("bad tree: {other:?}"),
                },
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_conditional_and_assignment_chains() {
        parse_ok("int f(int a, int b) { int c; c = a = b ? a : b; return c; }");
    }

    #[test]
    fn parses_casts_and_sizeof() {
        let tu = parse_ok(
            "struct S { int a; };\n\
             int f(void) { struct S *p; int n; n = sizeof(struct S) + sizeof n; p = (struct S *)0; return n; }",
        );
        let f = first_fn(&tu);
        assert!(!f.body.is_empty());
    }

    #[test]
    fn parses_ccured_pointer_annotations() {
        let tu = parse_ok("int * __SAFE p; int * __SEQ q; int * __WILD w; int * __RTTI r;");
        let kind_of = |d: &ExtDecl| match d {
            ExtDecl::Decl(decl) => match &decl.inits[0].declarator.derived[0] {
                Derived::Pointer(q) => q.kind,
                _ => panic!(),
            },
            _ => panic!(),
        };
        assert_eq!(kind_of(&tu.decls[0]), Some(PtrKindAnnot::Safe));
        assert_eq!(kind_of(&tu.decls[1]), Some(PtrKindAnnot::Seq));
        assert_eq!(kind_of(&tu.decls[2]), Some(PtrKindAnnot::Wild));
        assert_eq!(kind_of(&tu.decls[3]), Some(PtrKindAnnot::Rtti));
    }

    #[test]
    fn parses_split_annotations() {
        let tu = parse_ok("struct H { char *name; }; struct H __SPLIT * __SAFE h1;");
        match &tu.decls[1] {
            ExtDecl::Decl(d) => {
                assert_eq!(d.specs.split, Some(true));
                match &d.inits[0].declarator.derived[0] {
                    Derived::Pointer(q) => assert_eq!(q.kind, Some(PtrKindAnnot::Safe)),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_trusted_cast() {
        let tu = parse_ok("int f(char *buf) { int *p; p = (int * __TRUSTED)buf; return *p; }");
        let f = first_fn(&tu);
        match &f.body[1].kind {
            StmtKind::Expr(Some(e)) => match &e.kind {
                ExprKind::Assign(None, _, rhs) => match &rhs.kind {
                    ExprKind::Cast(tn, _) => assert!(tn.trusted),
                    other => panic!("expected cast, got {other:?}"),
                },
                other => panic!("expected assign, got {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_pragma_directives() {
        let tu = parse_ok("#pragma ccuredWrapperOf(\"strchr_wrapper\", \"strchr\")\nint x;");
        match &tu.decls[0] {
            ExtDecl::Pragma(p) => assert!(p.raw.contains("strchr_wrapper")),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_varargs_prototype() {
        let tu = parse_ok("extern int printf(char *fmt, ...);");
        match &tu.decls[0] {
            ExtDecl::Decl(d) => match &d.inits[0].declarator.derived[0] {
                Derived::Function(params, varargs) => {
                    assert_eq!(params.len(), 1);
                    assert!(varargs);
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_enum() {
        let tu = parse_ok("enum Color { RED, GREEN = 5, BLUE }; enum Color c = GREEN;");
        match &tu.decls[0] {
            ExtDecl::Decl(d) => match &d.specs.type_spec {
                TypeSpec::Enum(e) => assert_eq!(e.items.as_ref().unwrap().len(), 3),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_union() {
        let tu = parse_ok("union U { int i; char c[4]; } u;");
        match &tu.decls[0] {
            ExtDecl::Decl(d) => match &d.specs.type_spec {
                TypeSpec::Comp(c) => assert!(c.is_union),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_initializer_lists() {
        parse_ok("int a[3] = {1, 2, 3}; struct P { int x; int y; } p = { 4, 5 };");
    }

    #[test]
    fn parses_string_and_char_literals_in_exprs() {
        parse_ok("char *msg = \"hello\"; char nl = '\\n';");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_translation_unit("int x = ;").is_err());
        assert!(parse_translation_unit("int f( {").is_err());
        assert!(parse_translation_unit("return 0;").is_err());
    }

    #[test]
    fn rejects_unterminated_function() {
        assert!(parse_translation_unit("int f(void) { return 0;").is_err());
    }

    #[test]
    fn block_scoped_typedef_shadowing() {
        // Inside f, `T` is redeclared as a variable; `T * x;` must then parse
        // as multiplication, which as a statement is still valid syntax.
        parse_ok(
            "typedef int T;\n\
             int f(void) { int T = 1; int x = 2; T * x; return T; }\n\
             T g(void) { return 0; }",
        );
    }

    #[test]
    fn parses_abstract_function_pointer_param() {
        parse_ok("void qsort_like(void *base, int n, int (*cmp)(void *, void *));");
    }

    #[test]
    fn parses_nested_calls_and_members() {
        parse_ok(
            "struct V { int (*f)(int); };\n\
             int apply(struct V *v, int x) { return v->f(v->f(x)); }",
        );
    }

    #[test]
    fn parses_comma_and_postfix_ops() {
        parse_ok("int f(int a) { int b = (a++, --a, a--); return b; }");
    }

    #[test]
    fn parses_address_of_and_deref() {
        parse_ok("int f(void) { int x = 5; int *p = &x; *p = 7; return *p; }");
    }
}
