//! Hand-written lexer for the ccured-rs C subset.
//!
//! Produces a flat token stream. Comments (`/* */` and `//`) are skipped;
//! `#pragma` lines are surfaced as [`TokenKind::Pragma`] tokens so the parser
//! can interpret CCured directives; all other preprocessor directives are
//! rejected (sources are expected to be preprocessed).

use crate::diag::Diag;
use crate::span::Span;
use std::fmt;

/// Keywords of the accepted C subset, including CCured extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Void,
    Char,
    Short,
    Int,
    Long,
    Signed,
    Unsigned,
    Float,
    Double,
    Struct,
    Union,
    Enum,
    Typedef,
    Extern,
    Static,
    Const,
    Volatile,
    Sizeof,
    If,
    Else,
    While,
    Do,
    For,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    Return,
    Goto,
    // CCured extensions.
    Safe,
    Seq,
    Wild,
    Rtti,
    Split,
    NoSplit,
    Trusted,
}

impl Keyword {
    /// Looks up an identifier as a keyword.
    // Not the `FromStr` trait: lookup is infallible-by-Option, not Result.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "void" => Void,
            "char" => Char,
            "short" => Short,
            "int" => Int,
            "long" => Long,
            "signed" => Signed,
            "unsigned" => Unsigned,
            "float" => Float,
            "double" => Double,
            "struct" => Struct,
            "union" => Union,
            "enum" => Enum,
            "typedef" => Typedef,
            "extern" => Extern,
            "static" => Static,
            "const" => Const,
            "volatile" => Volatile,
            "sizeof" => Sizeof,
            "if" => If,
            "else" => Else,
            "while" => While,
            "do" => Do,
            "for" => For,
            "switch" => Switch,
            "case" => Case,
            "default" => Default,
            "break" => Break,
            "continue" => Continue,
            "return" => Return,
            "goto" => Goto,
            "__SAFE" => Safe,
            "__SEQ" => Seq,
            "__WILD" => Wild,
            "__RTTI" => Rtti,
            "__SPLIT" => Split,
            "__NOSPLIT" => NoSplit,
            "__TRUSTED" => Trusted,
            _ => return None,
        })
    }

    /// The keyword's source spelling.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Void => "void",
            Char => "char",
            Short => "short",
            Int => "int",
            Long => "long",
            Signed => "signed",
            Unsigned => "unsigned",
            Float => "float",
            Double => "double",
            Struct => "struct",
            Union => "union",
            Enum => "enum",
            Typedef => "typedef",
            Extern => "extern",
            Static => "static",
            Const => "const",
            Volatile => "volatile",
            Sizeof => "sizeof",
            If => "if",
            Else => "else",
            While => "while",
            Do => "do",
            For => "for",
            Switch => "switch",
            Case => "case",
            Default => "default",
            Break => "break",
            Continue => "continue",
            Return => "return",
            Goto => "goto",
            Safe => "__SAFE",
            Seq => "__SEQ",
            Wild => "__WILD",
            Rtti => "__RTTI",
            Split => "__SPLIT",
            NoSplit => "__NOSPLIT",
            Trusted => "__TRUSTED",
        }
    }
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Inc,
    Dec,
    Amp,
    Star,
    Plus,
    Minus,
    Tilde,
    Bang,
    Slash,
    Percent,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Caret,
    Pipe,
    AmpAmp,
    PipePipe,
    Question,
    Colon,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    ShlEq,
    ShrEq,
    AmpEq,
    CaretEq,
    PipeEq,
    Ellipsis,
}

impl Punct {
    /// The token's source spelling.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Arrow => "->",
            Inc => "++",
            Dec => "--",
            Amp => "&",
            Star => "*",
            Plus => "+",
            Minus => "-",
            Tilde => "~",
            Bang => "!",
            Slash => "/",
            Percent => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            Ne => "!=",
            Caret => "^",
            Pipe => "|",
            AmpAmp => "&&",
            PipePipe => "||",
            Question => "?",
            Colon => ":",
            Eq => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            AmpEq => "&=",
            CaretEq => "^=",
            PipeEq => "|=",
            Ellipsis => "...",
        }
    }
}

/// Suffix recorded on an integer literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct IntSuffix {
    /// `u`/`U` suffix present.
    pub unsigned: bool,
    /// `l`/`L` (or `ll`/`LL`) suffix present.
    pub long: bool,
}

/// A lexed token's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword.
    Kw(Keyword),
    /// An identifier (not a keyword).
    Ident(String),
    /// Integer literal with its suffix.
    IntLit(u64, IntSuffix),
    /// Floating-point literal.
    FloatLit(f64),
    /// Character constant, already narrowed to its byte value.
    CharLit(u8),
    /// String literal contents (escapes resolved, adjacent strings merged,
    /// no trailing NUL — the consumer appends it).
    StrLit(Vec<u8>),
    /// A `#pragma` line; the payload is everything after `#pragma`.
    Pragma(String),
    /// Punctuation or operator.
    P(Punct),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Kw(k) => write!(f, "`{}`", k.as_str()),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::IntLit(v, _) => write!(f, "integer literal `{v}`"),
            TokenKind::FloatLit(v) => write!(f, "float literal `{v}`"),
            TokenKind::CharLit(c) => write!(f, "character literal `{}`", *c as char),
            TokenKind::StrLit(_) => write!(f, "string literal"),
            TokenKind::Pragma(_) => write!(f, "#pragma"),
            TokenKind::P(p) => write!(f, "`{}`", p.as_str()),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The payload.
    pub kind: TokenKind,
    /// Source range of the token.
    pub span: Span,
}

/// Lexes `src` into a token vector ending with a single [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns the first lexical error encountered (unterminated literal, stray
/// character, unsupported preprocessor directive, malformed number).
pub fn lex(src: &str) -> Result<Vec<Token>, Diag> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.src.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn span_from(&self, lo: usize) -> Span {
        Span::new(lo as u32, self.pos as u32)
    }

    fn push(&mut self, kind: TokenKind, lo: usize) {
        let span = self.span_from(lo);
        self.tokens.push(Token { kind, span });
    }

    fn run(mut self) -> Result<Vec<Token>, Diag> {
        loop {
            self.skip_trivia()?;
            let lo = self.pos;
            let c = self.peek();
            if c == 0 && self.pos >= self.src.len() {
                self.push(TokenKind::Eof, lo);
                return Ok(self.tokens);
            }
            match c {
                b'#' => self.directive(lo)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(lo),
                b'0'..=b'9' => self.number(lo)?,
                b'.' if self.peek2().is_ascii_digit() => self.number(lo)?,
                b'\'' => self.char_lit(lo)?,
                b'"' => self.string_lit(lo)?,
                _ => self.punct(lo)?,
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<(), Diag> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' | 0x0b | 0x0c => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let lo = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(Diag::error(
                                self.span_from(lo),
                                "unterminated block comment",
                            ));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn directive(&mut self, lo: usize) -> Result<(), Diag> {
        // Consume '#'.
        self.bump();
        while self.peek() == b' ' || self.peek() == b'\t' {
            self.bump();
        }
        let word_lo = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let word = std::str::from_utf8(&self.src[word_lo..self.pos]).unwrap_or("");
        if word != "pragma" {
            return Err(Diag::error(
                self.span_from(lo),
                format!(
                    "unsupported preprocessor directive `#{word}` (input must be preprocessed)"
                ),
            ));
        }
        let body_lo = self.pos;
        while self.pos < self.src.len() && self.peek() != b'\n' {
            self.bump();
        }
        let body = std::str::from_utf8(&self.src[body_lo..self.pos])
            .unwrap_or("")
            .trim()
            .to_string();
        self.push(TokenKind::Pragma(body), lo);
        Ok(())
    }

    fn ident(&mut self, lo: usize) {
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[lo..self.pos]).unwrap();
        let kind = match Keyword::from_str(text) {
            Some(kw) => TokenKind::Kw(kw),
            None => TokenKind::Ident(text.to_string()),
        };
        self.push(kind, lo);
    }

    fn number(&mut self, lo: usize) -> Result<(), Diag> {
        let mut is_float = false;
        if self.peek() == b'0' && (self.peek2() | 0x20) == b'x' {
            self.bump();
            self.bump();
            let digits_lo = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            if self.pos == digits_lo {
                return Err(Diag::error(
                    self.span_from(lo),
                    "missing digits in hex literal",
                ));
            }
            let text = std::str::from_utf8(&self.src[digits_lo..self.pos]).unwrap();
            let value = u64::from_str_radix(text, 16)
                .map_err(|_| Diag::error(self.span_from(lo), "hex literal out of range"))?;
            let suffix = self.int_suffix();
            self.push(TokenKind::IntLit(value, suffix), lo);
            return Ok(());
        }
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' && self.peek2() != b'.' {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if (self.peek() | 0x20) == b'e'
            && (self.peek2().is_ascii_digit()
                || ((self.peek2() == b'+' || self.peek2() == b'-')
                    && self.peek3().is_ascii_digit()))
        {
            is_float = true;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[lo..self.pos]).unwrap();
        if is_float {
            let value: f64 = text
                .parse()
                .map_err(|_| Diag::error(self.span_from(lo), "malformed float literal"))?;
            if (self.peek() | 0x20) == b'f' || (self.peek() | 0x20) == b'l' {
                self.bump();
            }
            self.push(TokenKind::FloatLit(value), lo);
        } else {
            // Octal if it has a leading zero and more digits; decimal otherwise.
            let value = if text.len() > 1 && text.starts_with('0') {
                u64::from_str_radix(&text[1..], 8)
                    .map_err(|_| Diag::error(self.span_from(lo), "malformed octal literal"))?
            } else {
                text.parse::<u64>()
                    .map_err(|_| Diag::error(self.span_from(lo), "integer literal out of range"))?
            };
            let suffix = self.int_suffix();
            self.push(TokenKind::IntLit(value, suffix), lo);
        }
        Ok(())
    }

    fn int_suffix(&mut self) -> IntSuffix {
        let mut suffix = IntSuffix::default();
        loop {
            match self.peek() | 0x20 {
                b'u' if !suffix.unsigned => {
                    suffix.unsigned = true;
                    self.bump();
                }
                b'l' => {
                    suffix.long = true;
                    self.bump();
                    if (self.peek() | 0x20) == b'l' {
                        self.bump();
                    }
                }
                _ => return suffix,
            }
        }
    }

    fn escape(&mut self, lo: usize) -> Result<u8, Diag> {
        // Caller consumed the backslash.
        let c = self.bump();
        Ok(match c {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0'..=b'7' => {
                let mut v = (c - b'0') as u32;
                for _ in 0..2 {
                    if (b'0'..=b'7').contains(&self.peek()) {
                        v = v * 8 + (self.bump() - b'0') as u32;
                    }
                }
                if v > 255 {
                    return Err(Diag::error(self.span_from(lo), "octal escape out of range"));
                }
                v as u8
            }
            b'x' => {
                let mut v: u32 = 0;
                let mut any = false;
                while self.peek().is_ascii_hexdigit() {
                    any = true;
                    let d = self.bump();
                    let d = match d {
                        b'0'..=b'9' => d - b'0',
                        _ => (d | 0x20) - b'a' + 10,
                    };
                    // Saturate instead of wrapping so a long escape still
                    // trips the range diagnostic below.
                    v = v.saturating_mul(16).saturating_add(d as u32);
                }
                if !any {
                    return Err(Diag::error(
                        self.span_from(lo),
                        "missing digits in hex escape",
                    ));
                }
                if v > 255 {
                    return Err(Diag::error(self.span_from(lo), "hex escape out of range"));
                }
                v as u8
            }
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            b'a' => 7,
            b'b' => 8,
            b'f' => 12,
            b'v' => 11,
            _ => {
                return Err(Diag::error(
                    self.span_from(lo),
                    format!("unknown escape sequence `\\{}`", c as char),
                ))
            }
        })
    }

    fn char_lit(&mut self, lo: usize) -> Result<(), Diag> {
        self.bump(); // opening quote
        let c = match self.peek() {
            b'\\' => {
                self.bump();
                self.escape(lo)?
            }
            0 | b'\n' => {
                return Err(Diag::error(
                    self.span_from(lo),
                    "unterminated character literal",
                ))
            }
            _ => self.bump(),
        };
        if self.peek() != b'\'' {
            return Err(Diag::error(
                self.span_from(lo),
                "unterminated character literal",
            ));
        }
        self.bump();
        self.push(TokenKind::CharLit(c), lo);
        Ok(())
    }

    fn string_lit(&mut self, lo: usize) -> Result<(), Diag> {
        let mut bytes = Vec::new();
        loop {
            self.bump(); // opening quote
            loop {
                match self.peek() {
                    b'"' => {
                        self.bump();
                        break;
                    }
                    0 | b'\n' => {
                        return Err(Diag::error(
                            self.span_from(lo),
                            "unterminated string literal",
                        ))
                    }
                    b'\\' => {
                        self.bump();
                        let b = self.escape(lo)?;
                        bytes.push(b);
                    }
                    _ => bytes.push(self.bump()),
                }
            }
            // Adjacent string literal concatenation.
            let save = self.pos;
            self.skip_trivia()?;
            if self.peek() == b'"' {
                continue;
            }
            self.pos = save;
            break;
        }
        self.push(TokenKind::StrLit(bytes), lo);
        Ok(())
    }

    fn punct(&mut self, lo: usize) -> Result<(), Diag> {
        use Punct::*;
        let c = self.bump();
        let p = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'~' => Tilde,
            b'?' => Question,
            b':' => Colon,
            b'.' => {
                if self.peek() == b'.' && self.peek2() == b'.' {
                    self.bump();
                    self.bump();
                    Ellipsis
                } else {
                    Dot
                }
            }
            b'+' => match self.peek() {
                b'+' => {
                    self.bump();
                    Inc
                }
                b'=' => {
                    self.bump();
                    PlusEq
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.bump();
                    Dec
                }
                b'=' => {
                    self.bump();
                    MinusEq
                }
                b'>' => {
                    self.bump();
                    Arrow
                }
                _ => Minus,
            },
            b'*' => {
                if self.peek() == b'=' {
                    self.bump();
                    StarEq
                } else {
                    Star
                }
            }
            b'/' => {
                if self.peek() == b'=' {
                    self.bump();
                    SlashEq
                } else {
                    Slash
                }
            }
            b'%' => {
                if self.peek() == b'=' {
                    self.bump();
                    PercentEq
                } else {
                    Percent
                }
            }
            b'^' => {
                if self.peek() == b'=' {
                    self.bump();
                    CaretEq
                } else {
                    Caret
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.bump();
                    Ne
                } else {
                    Bang
                }
            }
            b'=' => {
                if self.peek() == b'=' {
                    self.bump();
                    EqEq
                } else {
                    Eq
                }
            }
            b'&' => match self.peek() {
                b'&' => {
                    self.bump();
                    AmpAmp
                }
                b'=' => {
                    self.bump();
                    AmpEq
                }
                _ => Amp,
            },
            b'|' => match self.peek() {
                b'|' => {
                    self.bump();
                    PipePipe
                }
                b'=' => {
                    self.bump();
                    PipeEq
                }
                _ => Pipe,
            },
            b'<' => match self.peek() {
                b'<' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        ShlEq
                    } else {
                        Shl
                    }
                }
                b'=' => {
                    self.bump();
                    Le
                }
                _ => Lt,
            },
            b'>' => match self.peek() {
                b'>' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        ShrEq
                    } else {
                        Shr
                    }
                }
                b'=' => {
                    self.bump();
                    Ge
                }
                _ => Gt,
            },
            other => {
                return Err(Diag::error(
                    self.span_from(lo),
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        self.push(TokenKind::P(p), lo);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        let ks = kinds("int foo unsigned _bar");
        assert_eq!(
            ks,
            vec![
                TokenKind::Kw(Keyword::Int),
                TokenKind::Ident("foo".into()),
                TokenKind::Kw(Keyword::Unsigned),
                TokenKind::Ident("_bar".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_ccured_keywords() {
        let ks = kinds("__SAFE __SEQ __WILD __RTTI __SPLIT __NOSPLIT __TRUSTED");
        assert_eq!(ks.len(), 8);
        assert_eq!(ks[0], TokenKind::Kw(Keyword::Safe));
        assert_eq!(ks[3], TokenKind::Kw(Keyword::Rtti));
        assert_eq!(ks[6], TokenKind::Kw(Keyword::Trusted));
    }

    #[test]
    fn lexes_decimal_hex_octal() {
        let ks = kinds("42 0x2a 052 0");
        let values: Vec<u64> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::IntLit(v, _) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec![42, 42, 42, 0]);
    }

    #[test]
    fn lexes_int_suffixes() {
        let ks = kinds("1u 2L 3UL 4ll");
        let suffixes: Vec<IntSuffix> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::IntLit(_, s) => Some(*s),
                _ => None,
            })
            .collect();
        assert!(suffixes[0].unsigned && !suffixes[0].long);
        assert!(!suffixes[1].unsigned && suffixes[1].long);
        assert!(suffixes[2].unsigned && suffixes[2].long);
        assert!(suffixes[3].long);
    }

    #[test]
    fn lexes_floats() {
        let ks = kinds("1.5 2. .5 1e3 2.5e-2");
        let values: Vec<f64> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::FloatLit(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec![1.5, 2.0, 0.5, 1000.0, 0.025]);
    }

    #[test]
    fn float_vs_member_access_dot() {
        // `x.y` must not lex the dot as a float start.
        let ks = kinds("x.y");
        assert_eq!(ks[1], TokenKind::P(Punct::Dot));
    }

    #[test]
    fn lexes_char_literals() {
        let ks = kinds(r"'a' '\n' '\0' '\x41' '\''");
        let values: Vec<u8> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::CharLit(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec![b'a', b'\n', 0, 0x41, b'\'']);
    }

    #[test]
    fn lexes_strings_with_escapes() {
        // NB: `\x20b` would consume `b` as a hex digit (C semantics), so the
        // space escape is isolated in its own literal here.
        let ks = kinds(r#""hi\n" "a\x20" "b" "oct\101""#);
        // Adjacent strings concatenate into one literal.
        assert_eq!(ks.len(), 2);
        match &ks[0] {
            TokenKind::StrLit(b) => assert_eq!(b, b"hi\na boctA"),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn string_concat_does_not_merge_across_other_tokens() {
        let ks = kinds(r#""a" ; "b""#);
        assert_eq!(ks.len(), 4); // "a" ; "b" EOF
    }

    #[test]
    fn lexes_three_char_operators() {
        let ks = kinds("<<= >>= ...");
        assert_eq!(
            ks,
            vec![
                TokenKind::P(Punct::ShlEq),
                TokenKind::P(Punct::ShrEq),
                TokenKind::P(Punct::Ellipsis),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        let ks = kinds("a->b ++x && || != <= >= == += -=");
        assert!(ks.contains(&TokenKind::P(Punct::Arrow)));
        assert!(ks.contains(&TokenKind::P(Punct::Inc)));
        assert!(ks.contains(&TokenKind::P(Punct::AmpAmp)));
        assert!(ks.contains(&TokenKind::P(Punct::PipePipe)));
        assert!(ks.contains(&TokenKind::P(Punct::Ne)));
        assert!(ks.contains(&TokenKind::P(Punct::Le)));
        assert!(ks.contains(&TokenKind::P(Punct::Ge)));
        assert!(ks.contains(&TokenKind::P(Punct::EqEq)));
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("a /* comment */ b // line\nc");
        assert_eq!(ks.len(), 4);
    }

    #[test]
    fn pragma_is_a_token() {
        let ks = kinds("#pragma ccuredWrapperOf(\"w\", \"f\")\nint x;");
        match &ks[0] {
            TokenKind::Pragma(s) => assert!(s.starts_with("ccuredWrapperOf")),
            other => panic!("expected pragma, got {other:?}"),
        }
    }

    #[test]
    fn rejects_other_directives() {
        assert!(lex("#include <stdio.h>").is_err());
        assert!(lex("#define X 1").is_err());
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"oops").is_err());
        assert!(lex("'x").is_err());
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("int @ x;").is_err());
        assert!(lex("$foo").is_err());
    }

    #[test]
    fn rejects_out_of_range_escapes() {
        // Octal above \377 (511 here) must not silently truncate to a byte.
        let d = lex(r"'\777'").unwrap_err();
        assert!(d.msg.contains("octal escape out of range"), "{d:?}");
        assert!(d.span.hi > d.span.lo, "diagnostic carries a span");
        // Hex escapes take arbitrarily many digits in C; anything above
        // 0xff must error rather than wrap.
        let d = lex(r#""\x100""#).unwrap_err();
        assert!(d.msg.contains("hex escape out of range"), "{d:?}");
        assert!(d.span.hi > d.span.lo);
        // A huge escape must not wrap u32 back into range.
        let d = lex(r#""\x100000041""#).unwrap_err();
        assert!(d.msg.contains("hex escape out of range"), "{d:?}");
        // The in-range boundary still lexes.
        let ks = kinds(r#""\xff" '\377'"#);
        assert!(matches!(&ks[0], TokenKind::StrLit(b) if b == b"\xff"));
        assert!(matches!(&ks[1], TokenKind::CharLit(255)));
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("int  foo;").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(5, 8));
        assert_eq!(toks[2].span, Span::new(8, 9));
    }

    #[test]
    fn empty_input_is_just_eof() {
        let toks = lex("").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Eof);
    }
}
