//! Byte-offset source spans and a line/column source map.

use std::fmt;

/// A half-open byte range `[lo, hi)` into the source text.
///
/// Spans are deliberately tiny (`Copy`, 8 bytes) so every AST node can carry
/// one without noticeable cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering `[lo, hi)`.
    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "span lo must not exceed hi");
        Span { lo, hi }
    }

    /// The empty span at offset zero, used for synthesized nodes.
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// Returns the smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Whether the span is empty.
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// A 1-based line/column pair resolved through a [`SourceMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets back to line/column positions for diagnostics.
#[derive(Debug, Clone)]
pub struct SourceMap {
    name: String,
    text: String,
    /// Byte offset of the start of every line, always beginning with 0.
    line_starts: Vec<u32>,
}

impl SourceMap {
    /// Builds a source map for `text`, labelled `name` in diagnostics.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            name: name.into(),
            text,
            line_starts,
        }
    }

    /// The label given at construction (typically a file name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Resolves a byte offset to a 1-based line/column pair.
    ///
    /// Offsets past the end of the text resolve to the final position.
    pub fn lookup(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.text.len() as u32);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// The source text covered by `span`.
    pub fn snippet(&self, span: Span) -> &str {
        let lo = (span.lo as usize).min(self.text.len());
        let hi = (span.hi as usize).min(self.text.len());
        &self.text[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(2, 5).len(), 3);
        assert!(Span::new(4, 4).is_empty());
        assert!(!Span::new(4, 5).is_empty());
    }

    #[test]
    fn lookup_first_line() {
        let sm = SourceMap::new("t.c", "int x;\nint y;\n");
        assert_eq!(sm.lookup(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.lookup(4), LineCol { line: 1, col: 5 });
    }

    #[test]
    fn lookup_later_lines() {
        let sm = SourceMap::new("t.c", "int x;\nint y;\nchar c;\n");
        assert_eq!(sm.lookup(7), LineCol { line: 2, col: 1 });
        assert_eq!(sm.lookup(14), LineCol { line: 3, col: 1 });
        assert_eq!(sm.lookup(20), LineCol { line: 3, col: 7 });
    }

    #[test]
    fn lookup_past_end_clamps() {
        let sm = SourceMap::new("t.c", "ab");
        assert_eq!(sm.lookup(100), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn snippet_extracts_text() {
        let sm = SourceMap::new("t.c", "int x = 42;");
        assert_eq!(sm.snippet(Span::new(8, 10)), "42");
    }

    #[test]
    fn snippet_clamps_out_of_range() {
        let sm = SourceMap::new("t.c", "ab");
        assert_eq!(sm.snippet(Span::new(1, 99)), "b");
    }
}
