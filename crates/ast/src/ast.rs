//! Abstract syntax tree for the ccured-rs C subset.
//!
//! The tree mirrors C89 syntax closely; semantic interpretation (type
//! resolution, implicit conversions, lvalue rules) happens during lowering in
//! `ccured-cil`. Every node carries a [`Span`].

use crate::lex::IntSuffix;
use crate::span::Span;

/// A parsed source file: a sequence of external declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    /// Top-level declarations, in source order.
    pub decls: Vec<ExtDecl>,
}

/// One top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtDecl {
    /// A function definition with a body.
    Function(FunctionDef),
    /// A declaration (variables, typedefs, struct/union/enum definitions,
    /// function prototypes).
    Decl(Declaration),
    /// A `#pragma` directive (interpreted later by the CCured pipeline).
    Pragma(PragmaDirective),
}

/// A raw `#pragma` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct PragmaDirective {
    /// Everything after `#pragma`, trimmed.
    pub raw: String,
    /// Source location.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Return-type specifiers and storage class.
    pub specs: DeclSpecs,
    /// The declarator naming the function and its parameters.
    pub declarator: Declarator,
    /// The body block's statements.
    pub body: Vec<Stmt>,
    /// Source location of the whole definition.
    pub span: Span,
}

/// A declaration: specifiers plus zero or more init-declarators.
#[derive(Debug, Clone, PartialEq)]
pub struct Declaration {
    /// Base type and storage class.
    pub specs: DeclSpecs,
    /// The declared names with optional initializers. Empty for bare
    /// struct/union/enum definitions.
    pub inits: Vec<InitDeclarator>,
    /// Source location.
    pub span: Span,
}

/// Storage-class specifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// `typedef`
    Typedef,
    /// `extern`
    Extern,
    /// `static`
    Static,
}

/// Declaration specifiers: one base type plus storage and CCured qualifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct DeclSpecs {
    /// Optional storage class.
    pub storage: Option<Storage>,
    /// The base type.
    pub type_spec: TypeSpec,
    /// `__SPLIT` / `__NOSPLIT` annotation on the base type, if any.
    pub split: Option<bool>,
    /// `const` was present (recorded, not enforced).
    pub is_const: bool,
    /// Source location.
    pub span: Span,
}

/// Width of an integer type specifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntSize {
    /// `short`
    Short,
    /// plain `int`
    Int,
    /// `long`
    Long,
    /// `long long`
    LongLong,
}

/// The base type in a declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeSpec {
    /// `void`
    Void,
    /// `char`, optionally explicitly signed/unsigned.
    Char {
        /// `Some(true)` for `signed char`, `Some(false)` for `unsigned char`.
        signed: Option<bool>,
    },
    /// Integer types of every width.
    Int {
        /// Unsigned if false.
        signed: bool,
        /// Width class.
        size: IntSize,
    },
    /// `float`
    Float,
    /// `double`
    Double,
    /// `struct`/`union` reference or definition.
    Comp(CompSpec),
    /// `enum` reference or definition.
    Enum(EnumSpec),
    /// A typedef name.
    Name(String),
}

/// A `struct` or `union` specifier.
#[derive(Debug, Clone, PartialEq)]
pub struct CompSpec {
    /// True for `union`.
    pub is_union: bool,
    /// The tag, if named.
    pub tag: Option<String>,
    /// Field groups when this is a definition, `None` for a bare reference.
    pub fields: Option<Vec<FieldGroup>>,
    /// Source location.
    pub span: Span,
}

/// One field declaration line inside a struct/union (`int a, *b;`).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldGroup {
    /// Base type for the group.
    pub specs: DeclSpecs,
    /// The declarators (bitfields are not supported).
    pub declarators: Vec<Declarator>,
    /// Source location.
    pub span: Span,
}

/// An `enum` specifier.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumSpec {
    /// The tag, if named.
    pub tag: Option<String>,
    /// Enumerators when this is a definition.
    pub items: Option<Vec<Enumerator>>,
    /// Source location.
    pub span: Span,
}

/// A single enumerator, optionally with an explicit value.
#[derive(Debug, Clone, PartialEq)]
pub struct Enumerator {
    /// The enumerator name.
    pub name: String,
    /// The explicit value expression, if given.
    pub value: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// CCured qualifiers attached to one `*` in a declarator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PtrQuals {
    /// Explicit pointer-kind assertion (`__SAFE` etc.), if any.
    pub kind: Option<PtrKindAnnot>,
    /// `__SPLIT` (`Some(true)`) / `__NOSPLIT` (`Some(false)`) on the pointer.
    pub split: Option<bool>,
    /// `const` after the `*`.
    pub is_const: bool,
}

/// Source-level pointer-kind annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtrKindAnnot {
    /// `__SAFE`
    Safe,
    /// `__SEQ`
    Seq,
    /// `__WILD`
    Wild,
    /// `__RTTI`
    Rtti,
}

/// One step of a declarator, listed from the declared name outward.
///
/// For `int *a[10]`, the derived list of `a` is `[Array(10), Pointer]`:
/// `a` is an array of 10 pointers to `int`.
#[derive(Debug, Clone, PartialEq)]
pub enum Derived {
    /// A pointer level with its CCured qualifiers.
    Pointer(PtrQuals),
    /// An array level; `None` for an incomplete `[]`.
    Array(Option<Box<Expr>>),
    /// A function level with parameters and variadic flag.
    Function(Vec<ParamDecl>, bool),
}

/// A declarator: an optional name plus derived parts.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    /// The declared name; `None` for abstract declarators (casts, params).
    pub name: Option<String>,
    /// Derived parts from the name outward (see [`Derived`]).
    pub derived: Vec<Derived>,
    /// Source location.
    pub span: Span,
}

impl Declarator {
    /// An abstract declarator with no derived parts.
    pub fn bare(span: Span) -> Self {
        Declarator {
            name: None,
            derived: Vec::new(),
            span,
        }
    }

    /// Whether the outermost derived part makes this a function declarator.
    pub fn is_function(&self) -> bool {
        matches!(self.derived.first(), Some(Derived::Function(..)))
    }
}

/// One parameter declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Base type of the parameter.
    pub specs: DeclSpecs,
    /// Parameter declarator (may be abstract).
    pub declarator: Declarator,
    /// Source location.
    pub span: Span,
}

/// A declarator with an optional initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct InitDeclarator {
    /// The declarator.
    pub declarator: Declarator,
    /// The initializer, if present.
    pub init: Option<Initializer>,
}

/// An initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum Initializer {
    /// A single expression.
    Expr(Expr),
    /// A brace-enclosed list (designators are not supported).
    List(Vec<Initializer>, Span),
}

/// A type name as used in casts and `sizeof`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeName {
    /// Base type.
    pub specs: DeclSpecs,
    /// Abstract declarator.
    pub declarator: Declarator,
    /// `__TRUSTED` appeared in the cast's qualifier position.
    pub trusted: bool,
    /// Source location.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Statement payload.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement payloads.
// The size skew comes from `Decl`; statements are heap-boxed per block, so
// boxing the declaration would add an indirection for no measured win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression statement; `None` for the empty statement `;`.
    Expr(Option<Expr>),
    /// A block-local declaration.
    Decl(Declaration),
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `if (c) t else e`
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (c) body`
    While(Expr, Box<Stmt>),
    /// `do body while (c);`
    DoWhile(Box<Stmt>, Expr),
    /// `for (init; cond; step) body`
    For(Option<ForInit>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `switch (scrutinee) body`
    Switch(Expr, Box<Stmt>),
    /// `case e: stmt`
    Case(Expr, Box<Stmt>),
    /// `default: stmt`
    Default(Box<Stmt>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return e;`
    Return(Option<Expr>),
    /// `goto label;`
    Goto(String),
    /// `label: stmt`
    Label(String, Box<Stmt>),
}

/// The first clause of a `for` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ForInit {
    /// An expression clause.
    Expr(Expr),
    /// A declaration clause (C99-style, accepted for convenience).
    Decl(Declaration),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-e`
    Neg,
    /// `+e`
    Plus,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
    /// `*e`
    Deref,
    /// `&e`
    Addr,
    /// `++e`
    PreInc,
    /// `--e`
    PreDec,
}

/// Binary operators (also used as compound-assignment operators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    LogAnd,
    LogOr,
}

impl BinOp {
    /// True for `<`, `>`, `<=`, `>=`, `==`, `!=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for `&&` and `||` (short-circuiting).
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogAnd | BinOp::LogOr)
    }
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(u64, IntSuffix),
    /// Floating literal.
    FloatLit(f64),
    /// Character literal.
    CharLit(u8),
    /// String literal (without trailing NUL).
    StrLit(Vec<u8>),
    /// Identifier reference.
    Ident(String),
    /// Prefix unary operation.
    Unary(UnOp, Box<Expr>),
    /// Postfix `e++` (true) or `e--` (false).
    PostIncDec(bool, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment; `Some(op)` for compound assignment `l op= r`.
    Assign(Option<BinOp>, Box<Expr>, Box<Expr>),
    /// Conditional `c ? t : e`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Cast `(T)e`.
    Cast(TypeName, Box<Expr>),
    /// `sizeof e`
    SizeofExpr(Box<Expr>),
    /// `sizeof(T)`
    SizeofType(TypeName),
    /// Function call.
    Call(Box<Expr>, Vec<Expr>),
    /// Array indexing `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `e.field`
    Member(Box<Expr>, String),
    /// `e->field`
    Arrow(Box<Expr>, String),
    /// `l, r`
    Comma(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Builds an integer-literal expression with a dummy-free span.
    pub fn int(value: u64, span: Span) -> Expr {
        Expr {
            kind: ExprKind::IntLit(value, IntSuffix::default()),
            span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarator_is_function_checks_outermost() {
        let span = Span::DUMMY;
        let f = Declarator {
            name: Some("f".into()),
            derived: vec![Derived::Function(vec![], false)],
            span,
        };
        assert!(f.is_function());
        let fp = Declarator {
            name: Some("fp".into()),
            derived: vec![
                Derived::Pointer(PtrQuals::default()),
                Derived::Function(vec![], false),
            ],
            span,
        };
        assert!(
            !fp.is_function(),
            "pointer-to-function is not a function declarator"
        );
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LogAnd.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }
}
