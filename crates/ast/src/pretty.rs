//! Pretty-printer: renders an AST back to compilable C-subset source.
//!
//! Used for debugging dumps and for parse → print → parse round-trip tests.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a translation unit as source text.
pub fn print_unit(tu: &TranslationUnit) -> String {
    let mut p = Printer::default();
    for d in &tu.decls {
        p.ext_decl(d);
    }
    p.out
}

/// Renders a single expression as source text.
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(e);
    p.out
}

/// Renders a statement as source text.
pub fn print_stmt(s: &Stmt) -> String {
    let mut p = Printer::default();
    p.stmt(s);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn ext_decl(&mut self, d: &ExtDecl) {
        match d {
            ExtDecl::Function(f) => {
                self.decl_specs(&f.specs);
                self.out.push(' ');
                self.declarator(&f.declarator);
                self.out.push_str(" {");
                self.indent += 1;
                for s in &f.body {
                    self.nl();
                    self.stmt(s);
                }
                self.indent -= 1;
                self.nl();
                self.out.push_str("}\n");
            }
            ExtDecl::Decl(d) => {
                self.declaration(d);
                self.out.push('\n');
            }
            ExtDecl::Pragma(p) => {
                let _ = writeln!(self.out, "#pragma {}", p.raw);
            }
        }
    }

    fn declaration(&mut self, d: &Declaration) {
        self.decl_specs(&d.specs);
        for (i, init) in d.inits.iter().enumerate() {
            self.out.push(if i == 0 { ' ' } else { ',' });
            if i > 0 {
                self.out.push(' ');
            }
            self.declarator(&init.declarator);
            if let Some(init) = &init.init {
                self.out.push_str(" = ");
                self.initializer(init);
            }
        }
        self.out.push(';');
    }

    fn decl_specs(&mut self, s: &DeclSpecs) {
        if let Some(st) = s.storage {
            self.out.push_str(match st {
                Storage::Typedef => "typedef ",
                Storage::Extern => "extern ",
                Storage::Static => "static ",
            });
        }
        if s.is_const {
            self.out.push_str("const ");
        }
        match s.split {
            Some(true) => self.out.push_str("__SPLIT "),
            Some(false) => self.out.push_str("__NOSPLIT "),
            None => {}
        }
        self.type_spec(&s.type_spec);
    }

    fn type_spec(&mut self, t: &TypeSpec) {
        match t {
            TypeSpec::Void => self.out.push_str("void"),
            TypeSpec::Char { signed } => {
                match signed {
                    Some(true) => self.out.push_str("signed "),
                    Some(false) => self.out.push_str("unsigned "),
                    None => {}
                }
                self.out.push_str("char");
            }
            TypeSpec::Int { signed, size } => {
                if !signed {
                    self.out.push_str("unsigned ");
                }
                self.out.push_str(match size {
                    IntSize::Short => "short",
                    IntSize::Int => "int",
                    IntSize::Long => "long",
                    IntSize::LongLong => "long long",
                });
            }
            TypeSpec::Float => self.out.push_str("float"),
            TypeSpec::Double => self.out.push_str("double"),
            TypeSpec::Comp(c) => {
                self.out
                    .push_str(if c.is_union { "union" } else { "struct" });
                if let Some(tag) = &c.tag {
                    let _ = write!(self.out, " {tag}");
                }
                if let Some(groups) = &c.fields {
                    self.out.push_str(" {");
                    self.indent += 1;
                    for g in groups {
                        self.nl();
                        self.decl_specs(&g.specs);
                        for (i, d) in g.declarators.iter().enumerate() {
                            self.out.push(if i == 0 { ' ' } else { ',' });
                            if i > 0 {
                                self.out.push(' ');
                            }
                            self.declarator(d);
                        }
                        self.out.push(';');
                    }
                    self.indent -= 1;
                    self.nl();
                    self.out.push('}');
                }
            }
            TypeSpec::Enum(e) => {
                self.out.push_str("enum");
                if let Some(tag) = &e.tag {
                    let _ = write!(self.out, " {tag}");
                }
                if let Some(items) = &e.items {
                    self.out.push_str(" { ");
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.out.push_str(&item.name);
                        if let Some(v) = &item.value {
                            self.out.push_str(" = ");
                            self.expr(v);
                        }
                    }
                    self.out.push_str(" }");
                }
            }
            TypeSpec::Name(n) => self.out.push_str(n),
        }
    }

    /// Prints a declarator by recursing over the derived chain outside-in.
    fn declarator(&mut self, d: &Declarator) {
        self.declarator_parts(&d.derived, d.name.as_deref());
    }

    fn declarator_parts(&mut self, derived: &[Derived], name: Option<&str>) {
        match derived.last() {
            None => {
                if let Some(n) = name {
                    self.out.push_str(n);
                }
            }
            Some(Derived::Pointer(q)) => {
                self.out.push('*');
                if let Some(k) = q.kind {
                    self.out.push_str(match k {
                        PtrKindAnnot::Safe => " __SAFE",
                        PtrKindAnnot::Seq => " __SEQ",
                        PtrKindAnnot::Wild => " __WILD",
                        PtrKindAnnot::Rtti => " __RTTI",
                    });
                }
                match q.split {
                    Some(true) => self.out.push_str(" __SPLIT"),
                    Some(false) => self.out.push_str(" __NOSPLIT"),
                    None => {}
                }
                if q.is_const {
                    self.out.push_str(" const");
                }
                if q.kind.is_some() || q.split.is_some() || q.is_const {
                    self.out.push(' ');
                }
                let rest = &derived[..derived.len() - 1];
                self.declarator_parts(rest, name);
            }
            Some(Derived::Array(len)) => {
                let rest = &derived[..derived.len() - 1];
                // Postfix `[]` binds tighter than a prefix `*` in the inner
                // chain, so a pointer level there must be parenthesized.
                self.grouped_parts(rest, name);
                self.out.push('[');
                if let Some(e) = len {
                    self.expr(e);
                }
                self.out.push(']');
            }
            Some(Derived::Function(params, varargs)) => {
                let rest = &derived[..derived.len() - 1];
                self.grouped_parts(rest, name);
                self.out.push('(');
                if params.is_empty() && !varargs {
                    self.out.push_str("void");
                }
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.decl_specs(&p.specs);
                    if p.declarator.name.is_some() || !p.declarator.derived.is_empty() {
                        self.out.push(' ');
                        self.declarator(&p.declarator);
                    }
                }
                if *varargs {
                    if !params.is_empty() {
                        self.out.push_str(", ");
                    }
                    self.out.push_str("...");
                }
                self.out.push(')');
            }
        }
    }

    /// Prints an inner declarator chain, parenthesizing if it ends with a
    /// pointer level (prefix `*` binds looser than postfix `[]`/`()`).
    fn grouped_parts(&mut self, rest: &[Derived], name: Option<&str>) {
        if matches!(rest.last(), Some(Derived::Pointer(_))) {
            self.out.push('(');
            self.declarator_parts(rest, name);
            self.out.push(')');
        } else {
            self.declarator_parts(rest, name);
        }
    }

    fn initializer(&mut self, i: &Initializer) {
        match i {
            Initializer::Expr(e) => self.expr(e),
            Initializer::List(items, _) => {
                self.out.push_str("{ ");
                for (idx, item) in items.iter().enumerate() {
                    if idx > 0 {
                        self.out.push_str(", ");
                    }
                    self.initializer(item);
                }
                self.out.push_str(" }");
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(None) => self.out.push(';'),
            StmtKind::Expr(Some(e)) => {
                self.expr(e);
                self.out.push(';');
            }
            StmtKind::Decl(d) => self.declaration(d),
            StmtKind::Block(stmts) => {
                self.out.push('{');
                self.indent += 1;
                for st in stmts {
                    self.nl();
                    self.stmt(st);
                }
                self.indent -= 1;
                self.nl();
                self.out.push('}');
            }
            StmtKind::If(c, t, e) => {
                self.out.push_str("if (");
                self.expr(c);
                self.out.push_str(") ");
                self.stmt(t);
                if let Some(e) = e {
                    self.out.push_str(" else ");
                    self.stmt(e);
                }
            }
            StmtKind::While(c, b) => {
                self.out.push_str("while (");
                self.expr(c);
                self.out.push_str(") ");
                self.stmt(b);
            }
            StmtKind::DoWhile(b, c) => {
                self.out.push_str("do ");
                self.stmt(b);
                self.out.push_str(" while (");
                self.expr(c);
                self.out.push_str(");");
            }
            StmtKind::For(init, cond, step, body) => {
                self.out.push_str("for (");
                match init {
                    Some(ForInit::Expr(e)) => {
                        self.expr(e);
                        self.out.push(';');
                    }
                    Some(ForInit::Decl(d)) => self.declaration(d),
                    None => self.out.push(';'),
                }
                self.out.push(' ');
                if let Some(c) = cond {
                    self.expr(c);
                }
                self.out.push_str("; ");
                if let Some(s) = step {
                    self.expr(s);
                }
                self.out.push_str(") ");
                self.stmt(body);
            }
            StmtKind::Switch(e, b) => {
                self.out.push_str("switch (");
                self.expr(e);
                self.out.push_str(") ");
                self.stmt(b);
            }
            StmtKind::Case(e, st) => {
                self.out.push_str("case ");
                self.expr(e);
                self.out.push_str(": ");
                self.stmt(st);
            }
            StmtKind::Default(st) => {
                self.out.push_str("default: ");
                self.stmt(st);
            }
            StmtKind::Break => self.out.push_str("break;"),
            StmtKind::Continue => self.out.push_str("continue;"),
            StmtKind::Return(None) => self.out.push_str("return;"),
            StmtKind::Return(Some(e)) => {
                self.out.push_str("return ");
                self.expr(e);
                self.out.push(';');
            }
            StmtKind::Goto(l) => {
                let _ = write!(self.out, "goto {l};");
            }
            StmtKind::Label(l, st) => {
                let _ = write!(self.out, "{l}: ");
                self.stmt(st);
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(v, suffix) => {
                let _ = write!(self.out, "{v}");
                if suffix.unsigned {
                    self.out.push('u');
                }
                if suffix.long {
                    self.out.push('l');
                }
            }
            ExprKind::FloatLit(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    let _ = write!(self.out, "{v:.1}");
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            ExprKind::CharLit(c) => {
                let escaped = match *c {
                    b'\n' => "\\n".to_string(),
                    b'\t' => "\\t".to_string(),
                    b'\r' => "\\r".to_string(),
                    b'\'' => "\\'".to_string(),
                    b'\\' => "\\\\".to_string(),
                    0 => "\\0".to_string(),
                    c if (32..127).contains(&c) => (c as char).to_string(),
                    c => format!("\\x{c:02x}"),
                };
                let _ = write!(self.out, "'{escaped}'");
            }
            ExprKind::StrLit(bytes) => {
                self.out.push('"');
                for &b in bytes {
                    match b {
                        b'\n' => self.out.push_str("\\n"),
                        b'\t' => self.out.push_str("\\t"),
                        b'"' => self.out.push_str("\\\""),
                        b'\\' => self.out.push_str("\\\\"),
                        0 => self.out.push_str("\\0"),
                        b if (32..127).contains(&b) => self.out.push(b as char),
                        b => {
                            let _ = write!(self.out, "\\x{b:02x}");
                        }
                    }
                }
                self.out.push('"');
            }
            ExprKind::Ident(n) => self.out.push_str(n),
            ExprKind::Unary(op, inner) => {
                self.out.push_str(match op {
                    UnOp::Neg => "-",
                    UnOp::Plus => "+",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                    UnOp::Deref => "*",
                    UnOp::Addr => "&",
                    UnOp::PreInc => "++",
                    UnOp::PreDec => "--",
                });
                self.out.push('(');
                self.expr(inner);
                self.out.push(')');
            }
            ExprKind::PostIncDec(inc, inner) => {
                self.out.push('(');
                self.expr(inner);
                self.out.push(')');
                self.out.push_str(if *inc { "++" } else { "--" });
            }
            ExprKind::Binary(op, l, r) => {
                self.out.push('(');
                self.operand(l);
                let _ = write!(self.out, " {} ", binop_str(*op));
                self.operand(r);
                self.out.push(')');
            }
            ExprKind::Assign(op, l, r) => {
                self.expr(l);
                match op {
                    None => self.out.push_str(" = "),
                    Some(op) => {
                        let _ = write!(self.out, " {}= ", binop_str(*op));
                    }
                }
                self.expr(r);
            }
            ExprKind::Cond(c, t, e2) => {
                self.out.push('(');
                self.operand(c);
                self.out.push_str(" ? ");
                self.expr(t);
                self.out.push_str(" : ");
                self.operand(e2);
                self.out.push(')');
            }
            ExprKind::Cast(tn, inner) => {
                self.out.push('(');
                self.decl_specs(&tn.specs);
                if !tn.declarator.derived.is_empty() {
                    self.out.push(' ');
                    self.declarator(&tn.declarator);
                }
                if tn.trusted {
                    self.out.push_str(" __TRUSTED");
                }
                self.out.push(')');
                self.out.push('(');
                self.expr(inner);
                self.out.push(')');
            }
            ExprKind::SizeofExpr(inner) => {
                self.out.push_str("sizeof(");
                self.expr(inner);
                self.out.push(')');
            }
            ExprKind::SizeofType(tn) => {
                self.out.push_str("sizeof(");
                self.decl_specs(&tn.specs);
                if !tn.declarator.derived.is_empty() {
                    self.out.push(' ');
                    self.declarator(&tn.declarator);
                }
                self.out.push(')');
            }
            ExprKind::Call(f, args) => {
                self.postfix_operand(f);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            ExprKind::Index(a, i) => {
                self.postfix_operand(a);
                self.out.push('[');
                self.expr(i);
                self.out.push(']');
            }
            ExprKind::Member(obj, field) => {
                self.postfix_operand(obj);
                let _ = write!(self.out, ".{field}");
            }
            ExprKind::Arrow(obj, field) => {
                self.postfix_operand(obj);
                let _ = write!(self.out, "->{field}");
            }
            ExprKind::Comma(l, r) => {
                self.out.push('(');
                self.expr(l);
                self.out.push_str(", ");
                self.expr(r);
                self.out.push(')');
            }
        }
    }

    /// Prints a subexpression in an operand position. Every composite form
    /// already parenthesizes itself except assignment, whose precedence is
    /// below everything — printed bare inside e.g. a comparison it would
    /// re-parse with the wrong structure (`(n = f()) > 0` is not
    /// `n = (f() > 0)`), so it gets explicit parentheses here.
    fn operand(&mut self, e: &Expr) {
        if matches!(e.kind, ExprKind::Assign(..)) {
            self.out.push('(');
            self.expr(e);
            self.out.push(')');
        } else {
            self.expr(e);
        }
    }

    /// Prints the base of a postfix form (`[]`, `.`, `->`, a call).
    /// Prefix forms — casts, unary operators, `sizeof`, assignment — bind
    /// looser than postfix, so printed bare they would capture the postfix
    /// tail on re-parse (`(T)(r)->f` re-parses as `(T)(r->f)`); wrap them.
    fn postfix_operand(&mut self, e: &Expr) {
        if matches!(
            e.kind,
            ExprKind::Assign(..)
                | ExprKind::Cast(..)
                | ExprKind::Unary(..)
                | ExprKind::SizeofExpr(..)
                | ExprKind::SizeofType(..)
        ) {
            self.out.push('(');
            self.expr(e);
            self.out.push(')');
        } else {
            self.expr(e);
        }
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::Le => "<=",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::BitAnd => "&",
        BinOp::BitXor => "^",
        BinOp::BitOr => "|",
        BinOp::LogAnd => "&&",
        BinOp::LogOr => "||",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_translation_unit;

    /// Parsing the printed output must succeed and print identically
    /// (idempotent round trip).
    fn roundtrip(src: &str) {
        let tu1 = parse_translation_unit(src).expect("initial parse");
        let printed1 = print_unit(&tu1);
        let tu2 = parse_translation_unit(&printed1)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed1}"));
        let printed2 = print_unit(&tu2);
        assert_eq!(printed1, printed2, "printer is not idempotent");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip("int main(void) { return 0; }");
    }

    #[test]
    fn roundtrip_pointers_arrays() {
        roundtrip("int *a[10]; int (*f)(int, char *); char **argv;");
    }

    #[test]
    fn roundtrip_structs() {
        roundtrip(
            "struct Figure { double (*area)(struct Figure *obj); };\n\
             struct Circle { double (*area)(struct Figure *obj); int radius; } *c;",
        );
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i;\n\
             while (s) { s--; if (s == 3) break; } return s; }",
        );
    }

    #[test]
    fn roundtrip_annotations() {
        roundtrip("int * __SAFE p; char * __SEQ q; struct H { int x; } __SPLIT *h;");
    }

    #[test]
    fn roundtrip_literals() {
        roundtrip("char *s = \"a\\nb\\0c\"; char c = '\\t'; double d = 2.5; int h = 0xff;");
    }

    #[test]
    fn roundtrip_switch_goto() {
        roundtrip(
            "int f(int x) { switch (x) { case 1: return 1; default: goto out; } out: return 0; }",
        );
    }

    #[test]
    fn roundtrip_varargs_and_enum() {
        roundtrip("extern int printf(char *fmt, ...); enum E { A, B = 3 }; enum E e = B;");
    }
}
