//! Diagnostics emitted by the lexer, parser and later pipeline stages.

use crate::span::{SourceMap, Span};
use std::fmt;

/// Severity/category of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagKind {
    /// A hard error; the producing stage failed.
    Error,
    /// A warning; the producing stage continued.
    Warning,
}

/// A single diagnostic message anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Error or warning.
    pub kind: DiagKind,
    /// Where in the source the problem was detected.
    pub span: Span,
    /// Human-readable message, lowercase, no trailing punctuation.
    pub msg: String,
}

impl Diag {
    /// Creates an error diagnostic.
    pub fn error(span: Span, msg: impl Into<String>) -> Self {
        Diag {
            kind: DiagKind::Error,
            span,
            msg: msg.into(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(span: Span, msg: impl Into<String>) -> Self {
        Diag {
            kind: DiagKind::Warning,
            span,
            msg: msg.into(),
        }
    }

    /// Renders the diagnostic with file/line/column via `map`.
    pub fn render(&self, map: &SourceMap) -> String {
        let pos = map.lookup(self.span.lo);
        let kind = match self.kind {
            DiagKind::Error => "error",
            DiagKind::Warning => "warning",
        };
        format!("{}:{}: {}: {}", map.name(), pos, kind, self.msg)
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            DiagKind::Error => "error",
            DiagKind::Warning => "warning",
        };
        write!(f, "{} at {}: {}", kind, self.span, self.msg)
    }
}

impl std::error::Error for Diag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_position() {
        let map = SourceMap::new("f.c", "int\nbad token");
        let d = Diag::error(Span::new(4, 7), "unexpected token");
        assert_eq!(d.render(&map), "f.c:2:1: error: unexpected token");
    }

    #[test]
    fn display_is_nonempty() {
        let d = Diag::warning(Span::new(0, 1), "w");
        assert!(format!("{d}").contains("warning"));
    }
}
