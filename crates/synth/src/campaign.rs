//! The differential soundness campaign: generate → batch-cure →
//! tree-vs-VM differential → fault-injection matrix, sharded across the
//! worker pool.
//!
//! A campaign turns test volume into a dial. Every generated unit is
//!
//! 1. **batch-cured** through `ccured_batch::run_batch` (exercising the
//!    content-addressed cache under concurrent writers and collecting the
//!    per-unit pointer-kind histogram),
//! 2. **differentially executed** on both engines — the tree-walking
//!    reference and the bytecode VM must agree on exit code, output,
//!    error, and every observable counter, and the unit's own checksum
//!    must pass (generated units are self-checking), and
//! 3. **crash-tested** with `mutants_per_unit` seeded faults, rotating the
//!    fault-class preference per unit so even two-mutant campaigns cover
//!    the full class matrix across units, alternating engines per unit.
//!
//! The report counts escapes (soundness bugs), masked faults, and engine
//! divergences, and checks each profile's measured kind histogram against
//! its requested targets. Everything is deterministic from the seed.

use crate::gen::{self, GOLDEN};
use crate::profiles::Profile;
use ccured::{isolated, Curer};
use ccured_batch::{run_batch, BatchConfig};
use ccured_faultinject::{crash_test, CrashTest, CrashTestReport, FaultClass, Outcome};
use ccured_rt::{Engine, ExecMode, Interp, Limits};
use ccured_workloads::Workload;
use std::collections::VecDeque;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Allowed |measured − target| gap, in percentage points, for each
/// pointer-kind share of a generated profile.
pub const KIND_TOLERANCE_PCT: f64 = 10.0;

/// Configuration for one campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed: generation, per-unit mutant streams, and engine
    /// assignment all derive from it.
    pub seed: u64,
    /// Total units, split round-robin across `profiles`.
    pub units: usize,
    /// Profiles to generate (campaign order is report order).
    pub profiles: Vec<Profile>,
    /// Seeded faults per unit.
    pub mutants_per_unit: usize,
    /// Worker threads; 0 means one per core.
    pub jobs: usize,
    /// Where generated units are written (created on demand).
    pub out_dir: PathBuf,
    /// Batch cache directory.
    pub cache_dir: PathBuf,
    /// Whether the batch stage consults/populates the cache.
    pub use_cache: bool,
    /// Sandbox limits for every execution (differential and crash-test).
    pub limits: Limits,
}

impl CampaignConfig {
    /// A campaign writing units (and its cache) under `out_dir`, with the
    /// full profile set and crash-test-grade sandbox limits.
    pub fn new(out_dir: PathBuf) -> Self {
        let cache_dir = out_dir.join(".ccured-cache");
        CampaignConfig {
            seed: 1,
            units: 40,
            profiles: crate::profiles::all(),
            mutants_per_unit: 2,
            jobs: 0,
            out_dir,
            cache_dir,
            use_cache: true,
            limits: Limits {
                fuel: 2_000_000,
                max_stack_depth: 96,
                max_heap_bytes: 32 << 20,
                deadline: None,
            },
        }
    }
}

/// One profile's histogram scorecard.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileStat {
    /// Profile name.
    pub name: String,
    /// Units generated for this profile.
    pub units: usize,
    /// Declared pointers across those units.
    pub pointers: u64,
    /// Requested kind percentages (normalized).
    pub target: (f64, f64, f64, f64),
    /// Measured kind percentages over the cured units.
    pub measured: (f64, f64, f64, f64),
}

impl ProfileStat {
    /// Largest |measured − target| gap across the four kinds.
    pub fn max_deviation(&self) -> f64 {
        let d = [
            (self.measured.0 - self.target.0).abs(),
            (self.measured.1 - self.target.1).abs(),
            (self.measured.2 - self.target.2).abs(),
            (self.measured.3 - self.target.3).abs(),
        ];
        d.into_iter().fold(0.0, f64::max)
    }

    /// Whether the histogram landed within `tol` percentage points.
    pub fn within(&self, tol: f64) -> bool {
        self.max_deviation() <= tol
    }
}

/// A mutant whose fault survived the cure — a soundness bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Escape {
    /// Unit name.
    pub unit: String,
    /// Mutant id within the unit's crash-test batch.
    pub mutant: usize,
    /// Fault class seeded.
    pub class: String,
    /// Mutation description.
    pub description: String,
}

/// A tree-vs-VM disagreement (or a failed self-check) on a pristine unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Unit name.
    pub unit: String,
    /// What differed.
    pub detail: String,
}

/// Per-fault-class outcome counts across the whole campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStat {
    /// Mutants seeded with this class.
    pub total: u64,
    /// Faults caught by an inserted check.
    pub caught: u64,
    /// Soundness escapes.
    pub escaped: u64,
    /// Faults neutralized by the cured memory model.
    pub masked: u64,
    /// Runs that hit a sandbox limit.
    pub resource_exhausted: u64,
    /// Mutants with no verdict (cure failure or harness panic).
    pub invalid: u64,
}

impl ClassStat {
    fn add(&mut self, outcome: Outcome) {
        self.total += 1;
        match outcome {
            Outcome::Caught => self.caught += 1,
            Outcome::Escaped => self.escaped += 1,
            Outcome::Masked => self.masked += 1,
            Outcome::ResourceExhausted => self.resource_exhausted += 1,
            Outcome::Invalid => self.invalid += 1,
        }
    }
}

/// The aggregate result of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Master seed (reproduces the whole campaign).
    pub seed: u64,
    /// Units generated.
    pub units: usize,
    /// Mutants seeded per unit.
    pub mutants_per_unit: usize,
    /// Worker threads the differential/crash-test stage used.
    pub jobs: usize,
    /// Total mutants across all units.
    pub mutants: u64,
    /// Per-profile histogram scorecards, campaign order.
    pub profiles: Vec<ProfileStat>,
    /// Per-class outcome counts, [`FaultClass::ALL`] order.
    pub classes: [ClassStat; 6],
    /// Every escaped mutant (must be empty for a sound cure).
    pub escapes: Vec<Escape>,
    /// Every engine divergence (must be empty).
    pub divergences: Vec<Divergence>,
    /// Units that failed to cure or lower, `(unit, detail)`.
    pub cure_failures: Vec<(String, String)>,
    /// Whole-unit cache hit rate of the batch stage.
    pub cache_hit_rate: f64,
    /// Wall-clock for the whole campaign.
    pub wall: Duration,
}

impl CampaignReport {
    /// Soundness verdict: no escapes, no divergences, nothing uncurable.
    pub fn ok(&self) -> bool {
        self.escapes.is_empty() && self.divergences.is_empty() && self.cure_failures.is_empty()
    }

    /// Whether every profile histogram landed within `tol` points.
    pub fn histograms_within(&self, tol: f64) -> bool {
        self.profiles.iter().all(|p| p.within(tol))
    }

    /// Campaign-wide outcome totals `(caught, escaped, masked,
    /// resource_exhausted, invalid)`.
    pub fn outcome_totals(&self) -> (u64, u64, u64, u64, u64) {
        self.classes.iter().fold((0, 0, 0, 0, 0), |acc, c| {
            (
                acc.0 + c.caught,
                acc.1 + c.escaped,
                acc.2 + c.masked,
                acc.3 + c.resource_exhausted,
                acc.4 + c.invalid,
            )
        })
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "== campaign: {} units x {} mutants (seed {}, {} jobs) ==\n",
            self.units, self.mutants_per_unit, self.seed, self.jobs
        );
        let (caught, escaped, masked, limit, invalid) = self.outcome_totals();
        s.push_str(&format!(
            "mutants: {} seeded; {} caught, {} escaped, {} masked, {} resource-exhausted, {} invalid\n",
            self.mutants, caught, escaped, masked, limit, invalid
        ));
        s.push_str(&format!(
            "{:<16} {:>7} {:>7} {:>8} {:>7} {:>6} {:>8}\n",
            "class", "total", "caught", "escaped", "masked", "limit", "invalid"
        ));
        for (i, c) in self.classes.iter().enumerate() {
            s.push_str(&format!(
                "{:<16} {:>7} {:>7} {:>8} {:>7} {:>6} {:>8}\n",
                FaultClass::ALL[i].name(),
                c.total,
                c.caught,
                c.escaped,
                c.masked,
                c.resource_exhausted,
                c.invalid
            ));
        }
        s.push_str(&format!(
            "{:<10} {:>6} {:>9}  {:>23}  {:>23} {:>7}\n",
            "profile", "units", "pointers", "target sf/sq/w/rt", "measured sf/sq/w/rt", "max-dev"
        ));
        let pct4 = |p: (f64, f64, f64, f64)| format!("{:.1}/{:.1}/{:.1}/{:.1}", p.0, p.1, p.2, p.3);
        for p in &self.profiles {
            s.push_str(&format!(
                "{:<10} {:>6} {:>9}  {:>23}  {:>23} {:>6.1}{}\n",
                p.name,
                p.units,
                p.pointers,
                pct4(p.target),
                pct4(p.measured),
                p.max_deviation(),
                if p.within(KIND_TOLERANCE_PCT) {
                    ""
                } else {
                    " !"
                }
            ));
        }
        for d in &self.divergences {
            s.push_str(&format!("DIVERGENCE: {}: {}\n", d.unit, d.detail));
        }
        for e in &self.escapes {
            s.push_str(&format!(
                "ESCAPE: {} mutant #{} ({}): {}\n",
                e.unit, e.mutant, e.class, e.description
            ));
        }
        for (u, why) in &self.cure_failures {
            s.push_str(&format!("CURE FAILURE: {u}: {why}\n"));
        }
        s.push_str(&format!(
            "cache hit rate {:.0}%; wall {:.2} s; verdict: {}\n",
            self.cache_hit_rate * 100.0,
            self.wall.as_secs_f64(),
            if self.ok() { "SOUND" } else { "UNSOUND" }
        ));
        s
    }

    /// Machine-readable report (the `--json` CLI flag and CI assertions).
    /// Deterministic from the seed except for the trailing `wall_ns`.
    pub fn to_json(&self) -> String {
        let (caught, escaped, masked, limit, invalid) = self.outcome_totals();
        let mut s = format!(
            "{{\"experiment\":\"campaign\",\"seed\":{},\"units\":{},\"mutants_per_unit\":{},\
             \"jobs\":{},\"mutants\":{},\"sound\":{},\"outcomes\":{{\"caught\":{caught},\
             \"escaped\":{escaped},\"masked\":{masked},\"resource_exhausted\":{limit},\
             \"invalid\":{invalid}}}",
            self.seed,
            self.units,
            self.mutants_per_unit,
            self.jobs,
            self.mutants,
            self.ok(),
        );
        s.push_str(",\"classes\":[");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"class\":\"{}\",\"total\":{},\"caught\":{},\"escaped\":{},\"masked\":{},\
                 \"resource_exhausted\":{},\"invalid\":{}}}",
                FaultClass::ALL[i].name(),
                c.total,
                c.caught,
                c.escaped,
                c.masked,
                c.resource_exhausted,
                c.invalid
            ));
        }
        s.push_str("],\"profiles\":[");
        let kinds = |p: (f64, f64, f64, f64)| {
            format!(
                "{{\"safe\":{:.3},\"seq\":{:.3},\"wild\":{:.3},\"rtti\":{:.3}}}",
                p.0, p.1, p.2, p.3
            )
        };
        for (i, p) in self.profiles.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"units\":{},\"pointers\":{},\"target\":{},\"measured\":{},\
                 \"max_deviation_pct\":{:.3},\"within_tolerance\":{}}}",
                json_str(&p.name),
                p.units,
                p.pointers,
                kinds(p.target),
                kinds(p.measured),
                p.max_deviation(),
                p.within(KIND_TOLERANCE_PCT)
            ));
        }
        s.push_str("],\"escapes\":[");
        for (i, e) in self.escapes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"unit\":{},\"mutant\":{},\"class\":\"{}\",\"description\":{}}}",
                json_str(&e.unit),
                e.mutant,
                e.class,
                json_str(&e.description)
            ));
        }
        s.push_str("],\"divergences\":[");
        for (i, d) in self.divergences.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"unit\":{},\"detail\":{}}}",
                json_str(&d.unit),
                json_str(&d.detail)
            ));
        }
        s.push_str("],\"cure_failures\":[");
        for (i, (u, why)) in self.cure_failures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"unit\":{},\"detail\":{}}}",
                json_str(u),
                json_str(why)
            ));
        }
        s.push_str(&format!(
            "],\"cache_hit_rate\":{:.6},\"wall_ns\":{}}}",
            self.cache_hit_rate,
            self.wall.as_nanos()
        ));
        s
    }
}

/// What the sharded stage records for one unit.
#[derive(Debug, Default)]
struct UnitResult {
    divergence: Option<String>,
    cure_failure: Option<String>,
    crash: Option<CrashTestReport>,
}

/// Runs a campaign.
///
/// # Errors
///
/// I/O errors writing units or running the batch stage. Per-unit failures
/// (cure errors, divergences, escapes) are recorded in the report, never
/// propagated.
///
/// # Panics
///
/// Panics if `cfg.profiles` is empty or `cfg.units` is zero.
pub fn run_campaign(cfg: &CampaignConfig) -> io::Result<CampaignReport> {
    assert!(
        !cfg.profiles.is_empty(),
        "campaign needs at least one profile"
    );
    assert!(cfg.units > 0, "campaign needs at least one unit");
    let start = Instant::now();

    // Stage 1: generate, splitting the unit budget round-robin.
    let nprof = cfg.profiles.len();
    let mut units: Vec<(usize, Workload)> = Vec::with_capacity(cfg.units);
    for (pi, p) in cfg.profiles.iter().enumerate() {
        let n = cfg.units / nprof + usize::from(pi < cfg.units % nprof);
        let pseed = cfg.seed ^ (pi as u64 + 1).wrapping_mul(GOLDEN);
        for w in gen::generate(p, n, pseed) {
            units.push((pi, w));
        }
    }

    // Stage 2: write the corpus and batch-cure it (kind histograms +
    // cache exercise under the full worker pool).
    fs::create_dir_all(&cfg.out_dir)?;
    let mut paths = Vec::with_capacity(units.len());
    for (_, w) in &units {
        let path = cfg.out_dir.join(format!("{}.c", w.name));
        fs::write(&path, &w.source)?;
        paths.push(path);
    }
    let mut bcfg = BatchConfig::new(Curer::new());
    bcfg.jobs = cfg.jobs;
    bcfg.cache_dir = cfg.cache_dir.clone();
    bcfg.use_cache = cfg.use_cache;
    bcfg.limits = cfg.limits;
    let batch = run_batch(&bcfg, &paths)?;

    let mut cure_failures: Vec<(String, String)> = Vec::new();
    let mut prof_sums = vec![[0u64; 4]; nprof];
    for out in &batch.units {
        let Some(pi) = cfg
            .profiles
            .iter()
            .position(|p| unit_of_path(&out.path).starts_with(&format!("synth_{}_", p.name)))
        else {
            continue;
        };
        if let Some(r) = &out.report {
            prof_sums[pi][0] += r.safe;
            prof_sums[pi][1] += r.seq;
            prof_sums[pi][2] += r.wild;
            prof_sums[pi][3] += r.rtti;
        }
        if !out.verdict.is_cured() {
            cure_failures.push((
                unit_of_path(&out.path).to_string(),
                format!("batch: {}: {}", out.verdict.label(), out.verdict.detail()),
            ));
        }
    }

    // Stage 3: differential + crash-test, sharded over the worker pool.
    let jobs = effective_jobs(cfg.jobs, units.len());
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..units.len()).collect());
    let slots: Vec<Mutex<UnitResult>> = (0..units.len())
        .map(|_| Mutex::new(UnitResult::default()))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let queue = &queue;
            let slots = &slots;
            let units = &units;
            // The tree engine recurses on guest calls; size worker stacks
            // like the batch engine does.
            std::thread::Builder::new()
                .stack_size(8 << 20)
                .spawn_scoped(scope, move || loop {
                    let Some(idx) = queue.lock().unwrap().pop_front() else {
                        return;
                    };
                    let r = check_unit(&units[idx].1, idx, cfg);
                    *slots[idx].lock().unwrap() = r;
                })
                .expect("spawn campaign worker");
        }
    });

    // Stage 4: aggregate, in unit order so the report is deterministic.
    let mut classes = [ClassStat::default(); 6];
    let mut escapes = Vec::new();
    let mut divergences = Vec::new();
    let mut mutants = 0u64;
    for (idx, slot) in slots.into_iter().enumerate() {
        let r = slot.into_inner().unwrap();
        let unit = &units[idx].1.name;
        if let Some(d) = r.divergence {
            divergences.push(Divergence {
                unit: unit.clone(),
                detail: d,
            });
        }
        if let Some(f) = r.cure_failure {
            cure_failures.push((unit.clone(), f));
        }
        if let Some(rep) = r.crash {
            for run in &rep.runs {
                mutants += 1;
                let ci = FaultClass::ALL
                    .iter()
                    .position(|c| *c == run.class)
                    .unwrap_or(0);
                classes[ci].add(run.outcome);
                if run.outcome == Outcome::Escaped {
                    escapes.push(Escape {
                        unit: unit.clone(),
                        mutant: run.id,
                        class: run.class.name().to_string(),
                        description: run.description.clone(),
                    });
                }
            }
        }
    }

    let profiles = cfg
        .profiles
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            let sums = prof_sums[pi];
            let total: u64 = sums.iter().sum();
            let pct = |k: u64| {
                if total == 0 {
                    0.0
                } else {
                    100.0 * k as f64 / total as f64
                }
            };
            let (tf_sf, tf_sq, tf_w, tf_rt) = p.kind_fractions();
            ProfileStat {
                name: p.name.to_string(),
                units: units.iter().filter(|(i, _)| *i == pi).count(),
                pointers: total,
                target: (tf_sf * 100.0, tf_sq * 100.0, tf_w * 100.0, tf_rt * 100.0),
                measured: (pct(sums[0]), pct(sums[1]), pct(sums[2]), pct(sums[3])),
            }
        })
        .collect();

    Ok(CampaignReport {
        seed: cfg.seed,
        units: units.len(),
        mutants_per_unit: cfg.mutants_per_unit,
        jobs,
        mutants,
        profiles,
        classes,
        escapes,
        divergences,
        cure_failures,
        cache_hit_rate: batch.hit_rate(),
        wall: start.elapsed(),
    })
}

/// Differential + crash-test for one unit.
fn check_unit(w: &Workload, idx: usize, cfg: &CampaignConfig) -> UnitResult {
    let mut r = UnitResult::default();

    // Cure once; the crash-test harness re-cures mutants itself.
    match isolated(|| Curer::new().cure_source(&w.source)) {
        Err(e) => {
            r.cure_failure = Some(format!("cure: {e}"));
            return r;
        }
        Ok(cured) => {
            let tree = observe(&cured, Engine::Tree, w, cfg.limits);
            let vm = observe(&cured, Engine::Vm, w, cfg.limits);
            if let Some(detail) = diff(&tree, &vm) {
                r.divergence = Some(detail);
            } else if tree.exit != w.expect_exit || tree.error.is_some() {
                // Engines agree but the unit's self-check failed: the
                // cure changed observable behaviour.
                r.divergence = Some(format!(
                    "self-check failed: exit {} (expected {}), error {:?}",
                    tree.exit, w.expect_exit, tree.error
                ));
            }
        }
    }

    // Fault-injection matrix: rotate the class preference with the global
    // mutant index and alternate engines per unit.
    let ct = CrashTest::new(
        cfg.mutants_per_unit,
        cfg.seed ^ (idx as u64).wrapping_mul(GOLDEN),
    )
    .with_limits(cfg.limits)
    .with_engine(if idx.is_multiple_of(2) {
        Engine::Vm
    } else {
        Engine::Tree
    })
    .with_class_offset(idx * cfg.mutants_per_unit % FaultClass::ALL.len());
    match crash_test(std::slice::from_ref(w), &ct) {
        Ok(rep) => r.crash = Some(rep),
        Err(e) => r.cure_failure = Some(format!("crash-test lower: {e}")),
    }
    r
}

/// Everything observable about one engine's run of a cured unit.
struct Observation {
    exit: i64,
    error: Option<String>,
    output: Vec<u8>,
    counters: [u64; 14],
}

fn observe(cured: &ccured::Cured, engine: Engine, w: &Workload, limits: Limits) -> Observation {
    let mut interp = Interp::new(&cured.program, ExecMode::cured(cured));
    interp.set_engine(engine);
    interp.set_limits(limits);
    interp.set_input(w.input.clone());
    let (exit, error) = match interp.run() {
        Ok(code) => (code, None),
        Err(e) => (0, Some(e.to_string())),
    };
    let c = &interp.counters;
    Observation {
        exit,
        error,
        output: interp.output().to_vec(),
        counters: [
            c.loads,
            c.stores,
            c.calls,
            c.extern_calls,
            c.io_ops,
            c.null_checks,
            c.seq_bounds_checks,
            c.seq_to_safe_checks,
            c.wild_bounds_checks,
            c.wild_tag_checks,
            c.rtti_checks,
            c.escape_checks,
            c.index_checks,
            c.tag_updates,
        ],
    }
}

/// First observable tree-vs-VM difference, if any.
fn diff(tree: &Observation, vm: &Observation) -> Option<String> {
    if tree.exit != vm.exit {
        return Some(format!("exit: tree {} vs vm {}", tree.exit, vm.exit));
    }
    if tree.error != vm.error {
        return Some(format!("error: tree {:?} vs vm {:?}", tree.error, vm.error));
    }
    if tree.output != vm.output {
        return Some(format!(
            "output: tree {} bytes vs vm {} bytes",
            tree.output.len(),
            vm.output.len()
        ));
    }
    if tree.counters != vm.counters {
        return Some(format!(
            "counters: tree {:?} vs vm {:?}",
            tree.counters, vm.counters
        ));
    }
    None
}

fn effective_jobs(jobs: usize, n_units: usize) -> usize {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        jobs
    };
    jobs.clamp(1, n_units.max(1))
}

/// The unit name of a batch path (`/dir/synth_mixed_0001.c` →
/// `synth_mixed_0001`).
fn unit_of_path(path: &str) -> &str {
    let file = path.rsplit(['/', '\\']).next().unwrap_or(path);
    file.strip_suffix(".c").unwrap_or(file)
}

/// JSON string literal with the escapes the report can actually produce.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("ccured-campaign-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn small_campaign_is_sound_and_deterministic() {
        let dir = scratch("small");
        let mut cfg = CampaignConfig::new(dir.clone());
        cfg.units = 8;
        cfg.mutants_per_unit = 2;
        cfg.seed = 77;
        let a = run_campaign(&cfg).expect("campaign");
        assert!(a.ok(), "{}", a.render());
        assert_eq!(a.units, 8);
        assert_eq!(a.mutants, 16);
        // Deterministic: a rerun (warm cache, same seed) reports the same
        // JSON modulo wall-clock and cache hit rate.
        let b = run_campaign(&cfg).expect("campaign rerun");
        let strip = |mut r: CampaignReport| {
            r.wall = Duration::ZERO;
            r.cache_hit_rate = 0.0;
            r.to_json()
        };
        assert_eq!(strip(a), strip(b));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn class_rotation_covers_the_matrix() {
        let dir = scratch("classes");
        let mut cfg = CampaignConfig::new(dir.clone());
        cfg.units = 12;
        cfg.mutants_per_unit = 2;
        cfg.seed = 5;
        let rep = run_campaign(&cfg).expect("campaign");
        assert!(rep.ok(), "{}", rep.render());
        let seeded = rep.classes.iter().filter(|c| c.total > 0).count();
        assert!(
            seeded >= 4,
            "expected >= 4 fault classes across the matrix:\n{}",
            rep.render()
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
