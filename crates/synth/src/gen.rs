//! The deterministic C unit generator.
//!
//! Units are assembled from *blocks* with exactly known pointer-kind
//! contributions, calibrated against the inference engine:
//!
//! - a SAFE block is an identity-alias chain (`int *p1 = p0; ...`) over a
//!   global cell — every link is one declared SAFE pointer;
//! - a SEQ block walks a global array with one of five loop shapes and
//!   extends the parameter with `+1` arithmetic links — the parameter and
//!   every link infer SEQ;
//! - a WILD block reinterprets a `double` array as `long`s (a bad cast)
//!   and aliases the result — the whole chain infects WILD;
//! - an RTTI block is a kind-tagged struct family (`struct_fanout`
//!   variants, each extending its prefix by `struct_depth` fields) with
//!   dispatch functions whose parameter infers RTTI and whose per-branch
//!   downcast locals infer SAFE (one RTTI + `fanout` SAFE per dispatcher).
//!
//! A per-unit pointer budget is split across kinds by the profile's target
//! percentages with fractional error carried between consecutive units
//! (error diffusion), so a generated corpus's aggregate histogram tracks
//! the requested targets to within a pointer or two — well inside the 10%
//! tolerance the campaign asserts.
//!
//! Every unit is self-checking: the generator mirrors the C arithmetic in
//! Rust and emits `return s == EXPECTED ? 0 : 1;`, so original runs, cured
//! runs, and both engines must all exit 0 — any other exit is a signal,
//! not noise.

use crate::profiles::Profile;
use ccured_workloads::prng::SplitMix64;
use ccured_workloads::Workload;
use std::fmt::Write as _;

/// Odd constant from SplitMix64's stream derivation; spreads consecutive
/// unit indices into unrelated seeds.
pub(crate) const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Length of the global arrays SEQ blocks walk (divisible by 4 for the
/// nested shape).
const ARR_LEN: u32 = 16;

/// Length of the `double` array WILD blocks reinterpret.
const WILD_LEN: u32 = 8;

/// The loop shapes SEQ blocks cycle through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopShape {
    /// `for (i = 0; i < n; i++)`
    Up,
    /// `for (i = n - 1; i >= 0; i = i - 1)` — widened since the
    /// direction-agnostic canonicalization.
    Down,
    /// `for (i = 0; i < n; i = i + 2)` — widened since stride
    /// generalization.
    Stride2,
    /// Row-major nested pair over 4-element rows.
    Nested,
    /// `while (i < n)` with a unit step.
    While,
}

impl LoopShape {
    /// All shapes, in [`Profile::loop_mix`] weight order.
    pub const ALL: [LoopShape; 5] = [
        LoopShape::Up,
        LoopShape::Down,
        LoopShape::Stride2,
        LoopShape::Nested,
        LoopShape::While,
    ];

    /// Indices of `a[0..n]` the shape visits (the array is filled with 1s,
    /// so this is also the loop's contribution to the checksum).
    fn visited(self, n: u32) -> u32 {
        match self {
            LoopShape::Stride2 => n.div_ceil(2),
            _ => n,
        }
    }
}

/// Fractional pointer-kind budget carried between consecutive units, so
/// rounding error never accumulates across a corpus.
#[derive(Debug, Clone, Copy, Default)]
pub struct Carry {
    safe: f64,
    seq: f64,
    wild: f64,
    rtti: f64,
}

/// Generates `units` self-checking units for `profile` from `seed`.
/// Deterministic: the same `(profile, units, seed)` reproduces every byte.
pub fn generate(profile: &Profile, units: usize, seed: u64) -> Vec<Workload> {
    let mut carry = Carry::default();
    (0..units)
        .map(|i| generate_unit(profile, seed, i, &mut carry))
        .collect()
}

/// Generates one unit. `carry` diffuses fractional kind budgets between
/// consecutive calls; pass a fresh default to generate a unit standalone.
pub fn generate_unit(profile: &Profile, seed: u64, index: usize, carry: &mut Carry) -> Workload {
    let mut rng = SplitMix64::new(seed ^ (index as u64).wrapping_mul(GOLDEN));
    let (lo, hi) = profile.ptrs_per_unit;
    let budget = rng.range(lo as i64, hi as i64 + 1) as f64;
    let (f_sf, f_sq, f_w, f_rt) = profile.kind_fractions();

    // Error-diffused integer allocation, most constrained kind first.
    let ideal_rt = budget * f_rt + carry.rtti;
    let n_rt = ideal_rt.round().max(0.0) as u32;
    carry.rtti = ideal_rt - n_rt as f64;

    let ideal_w = budget * f_w + carry.wild;
    let n_w = if f_w > 0.0 && rng.below(100) < profile.wild_pressure as u64 {
        // Cap a long-deferred WILD carry at half the unit's budget; the
        // remainder keeps diffusing.
        ideal_w.round().clamp(0.0, budget / 2.0) as u32
    } else {
        0
    };
    carry.wild = ideal_w - n_w as f64;

    // Each dispatcher's per-branch downcast locals infer SAFE; they come
    // out of the SAFE budget so the aggregate stays on target.
    let safe_from_rtti = n_rt * profile.struct_fanout;
    let ideal_sf = budget * f_sf + carry.safe;
    let n_sf = (ideal_sf.round() as i64 - safe_from_rtti as i64).max(0) as u32;
    carry.safe = ideal_sf - (n_sf + safe_from_rtti) as f64;

    let ideal_sq = budget * f_sq + carry.seq;
    let n_sq = ideal_sq.round().max(0.0) as u32;
    carry.seq = ideal_sq - n_sq as f64;

    emit_unit(profile, index, n_sf, n_sq, n_w, n_rt, &mut rng)
}

/// Splits a kind budget into chain lengths in `[min_len, max_len]`.
fn chains(total: u32, min_len: u32, max_len: u32, rng: &mut SplitMix64) -> Vec<u32> {
    let mut left = total;
    let mut out = Vec::new();
    while left > 0 {
        let len = rng.range(min_len as i64, max_len as i64 + 1) as u32;
        let len = len.min(left);
        out.push(len);
        left -= len;
    }
    out
}

/// Emits an alias-chain body: `<ty> *p1 = p0; ...`, with an explicit
/// identity cast on `cast_density`% of the links.
fn chain_links(
    body: &mut String,
    ty: &str,
    base: &str,
    len: u32,
    arith: bool,
    density: u32,
    rng: &mut SplitMix64,
) {
    for k in 1..len {
        let prev = if k == 1 {
            base.to_string()
        } else {
            format!("{base}{k}", base = chain_name(base), k = k - 1)
        };
        let rhs = if arith {
            format!("{prev} + 1")
        } else {
            prev.clone()
        };
        let rhs = if rng.below(100) < density as u64 {
            if arith {
                format!("({ty} *)({rhs})")
            } else {
                format!("({ty} *){rhs}")
            }
        } else {
            rhs
        };
        let _ = writeln!(body, "  {ty} *{}{} = {};", chain_name(base), k, rhs);
    }
}

/// Chain-link variable stem for a base variable (`p0` links are `p1..`,
/// `a` links are `q1..`, `w0` links are `w1..`).
fn chain_name(base: &str) -> &'static str {
    match base {
        "p0" => "p",
        "a" => "q",
        _ => "w",
    }
}

#[allow(clippy::too_many_lines)]
fn emit_unit(
    profile: &Profile,
    index: usize,
    n_sf: u32,
    n_sq: u32,
    n_w: u32,
    n_rt: u32,
    rng: &mut SplitMix64,
) -> Workload {
    let u = index;
    let density = profile.cast_density;
    let mut decls = String::new();
    let mut funcs = String::new();
    let mut main_setup = String::new();
    let mut main_calls = String::new();
    let mut expected: i64 = 0;

    // --- RTTI family: one tagged struct hierarchy, n_rt dispatchers. ---
    if n_rt > 0 {
        let fanout = profile.struct_fanout;
        let depth = profile.struct_depth;
        let _ = writeln!(decls, "struct Shape_u{u} {{ int kind; int pad; }};");
        for t in 0..fanout {
            let mut fields = String::new();
            for f in 0..(t + 1) * depth {
                let _ = write!(fields, " int f{f};");
            }
            let _ = writeln!(decls, "struct V{t}_u{u} {{ int kind; int pad;{fields} }};");
        }
        for d in 0..n_rt {
            let _ = writeln!(funcs, "int dispatch{d}_u{u}(struct Shape_u{u} *s) {{");
            for t in 0..fanout {
                let last = (t + 1) * depth - 1;
                if t + 1 < fanout {
                    let _ = writeln!(
                        funcs,
                        "  if (s->kind == {t}) {{ struct V{t}_u{u} *v = (struct V{t}_u{u} *)s; return v->f{last}; }}"
                    );
                } else {
                    let _ = writeln!(
                        funcs,
                        "  struct V{t}_u{u} *v = (struct V{t}_u{u} *)s;\n  return v->f{last};"
                    );
                }
            }
            let _ = writeln!(funcs, "}}");
        }
        // The caller owns one local of each variant and exercises every
        // dispatcher against every variant.
        let _ = writeln!(funcs, "int rtti_use_u{u}(void) {{");
        for t in 0..fanout {
            let _ = write!(
                funcs,
                "  struct V{t}_u{u} x{t}; x{t}.kind = {t}; x{t}.pad = 0;"
            );
            for f in 0..(t + 1) * depth {
                let val = if f == (t + 1) * depth - 1 { t + 1 } else { 0 };
                let _ = write!(funcs, " x{t}.f{f} = {val};");
            }
            let _ = writeln!(funcs);
        }
        let _ = writeln!(funcs, "  int s = 0;");
        for d in 0..n_rt {
            for t in 0..fanout {
                let _ = writeln!(
                    funcs,
                    "  s += dispatch{d}_u{u}((struct Shape_u{u} *)&x{t});"
                );
            }
        }
        let _ = writeln!(funcs, "  return s;\n}}");
        let calls = 1 + rng.below(2) as i64;
        call_block(&mut main_calls, &format!("rtti_use_u{u}()"), calls, u, 900);
        // Each dispatcher returns variant t's last field, set to t+1.
        let per_call: i64 = i64::from(n_rt) * i64::from(fanout * (fanout + 1) / 2);
        expected += per_call * calls;
    }

    // --- SAFE alias chains over global cells. ---
    for (b, len) in chains(n_sf, 3, 6, rng).into_iter().enumerate() {
        let cell = format!("g_cell_u{u}_{b}");
        let val = i64::from(b as u32 % 7) + 1;
        let _ = writeln!(decls, "int {cell};");
        let _ = writeln!(funcs, "int safe{b}_u{u}(int *p0) {{");
        chain_links(&mut funcs, "int", "p0", len, false, density, rng);
        let last = if len == 1 {
            "p0".to_string()
        } else {
            format!("p{}", len - 1)
        };
        let _ = writeln!(funcs, "  return *{last};\n}}");
        let _ = writeln!(main_setup, "  {cell} = {val};");
        let calls = 1 + rng.below(3) as i64;
        call_block(
            &mut main_calls,
            &format!("safe{b}_u{u}(&{cell})"),
            calls,
            u,
            b as u32,
        );
        expected += val * calls;
    }

    // --- SEQ array walks, loop shape per block from the profile mix. ---
    for (b, len) in chains(n_sq, 2, 4, rng).into_iter().enumerate() {
        let arr = format!("g_arr_u{u}_{b}");
        let shape = profile.pick_loop(rng.next_u64());
        let _ = writeln!(decls, "int {arr}[{ARR_LEN}];");
        let _ = writeln!(funcs, "int seq{b}_u{u}(int *a, int n) {{");
        let _ = writeln!(funcs, "  int s = 0;\n  int i;");
        chain_links(&mut funcs, "int", "a", len, true, density, rng);
        match shape {
            LoopShape::Up => {
                let _ = writeln!(funcs, "  for (i = 0; i < n; i++) s += a[i];");
            }
            LoopShape::Down => {
                let _ = writeln!(funcs, "  for (i = n - 1; i >= 0; i = i - 1) s += a[i];");
            }
            LoopShape::Stride2 => {
                let _ = writeln!(funcs, "  for (i = 0; i < n; i = i + 2) s += a[i];");
            }
            LoopShape::Nested => {
                let _ = writeln!(
                    funcs,
                    "  int k;\n  for (i = 0; i < n; i = i + 4)\n    for (k = 0; k < 4; k = k + 1) s += a[i + k];"
                );
            }
            LoopShape::While => {
                let _ = writeln!(
                    funcs,
                    "  i = 0;\n  while (i < n) {{ s += a[i]; i = i + 1; }}"
                );
            }
        }
        for k in 1..len {
            let _ = writeln!(funcs, "  s += *q{k};");
        }
        let _ = writeln!(funcs, "  return s;\n}}");
        let _ = writeln!(
            main_setup,
            "  for (i = 0; i < {ARR_LEN}; i++) {arr}[i] = 1;"
        );
        let calls = 1 + rng.below(3) as i64;
        call_block(
            &mut main_calls,
            &format!("seq{b}_u{u}({arr}, {ARR_LEN})"),
            calls,
            u,
            100 + b as u32,
        );
        let per_call = i64::from(shape.visited(ARR_LEN)) + i64::from(len - 1);
        expected += per_call * calls;
    }

    // --- WILD blocks: a bad cast plus an alias chain. ---
    for (b, len) in chains(n_w, 2, 3, rng).into_iter().enumerate() {
        let _ = writeln!(funcs, "int wild{b}_u{u}(void) {{");
        let _ = writeln!(
            funcs,
            "  double d[{WILD_LEN}];\n  int i;\n  for (i = 0; i < {WILD_LEN}; i++) d[i] = 1.0;"
        );
        let _ = writeln!(funcs, "  long *w0 = (long *)d;");
        chain_links(&mut funcs, "long", "w0", len, false, density, rng);
        let _ = writeln!(funcs, "  int s = 0;");
        let _ = writeln!(
            funcs,
            "  for (i = 0; i < {WILD_LEN}; i++) s += w0[i] != 0 ? 1 : 0;"
        );
        for k in 1..len {
            let _ = writeln!(funcs, "  s += w{k}[0] != 0 ? 1 : 0;");
        }
        let _ = writeln!(funcs, "  return s;\n}}");
        let calls = 1 + rng.below(2) as i64;
        call_block(
            &mut main_calls,
            &format!("wild{b}_u{u}()"),
            calls,
            u,
            200 + b as u32,
        );
        expected += (i64::from(WILD_LEN) + i64::from(len - 1)) * calls;
    }

    let name = format!("synth_{}_{index:04}", profile.name);
    let source = format!(
        "/* {name}: generated unit (profile {}, pointer plan safe={} seq={} wild={} rtti={}) */\n\
         {decls}{funcs}\
         int main(void) {{\n  int s = 0;\n  int i;\n{main_setup}{main_calls}  \
         return s == {expected} ? 0 : 1;\n}}\n",
        profile.name,
        n_sf + n_rt * profile.struct_fanout,
        n_sq,
        n_w,
        n_rt,
    );
    Workload::new(name, source).without_wrappers()
}

/// Emits `s += <call>;`, wrapped in a repeat loop when `calls > 1`. Each
/// repeat loop gets a unique counter so main never reuses one.
fn call_block(main_calls: &mut String, call: &str, calls: i64, unit: usize, tag: u32) {
    if calls <= 1 {
        let _ = writeln!(main_calls, "  s += {call};");
    } else {
        let r = format!("r{unit}_{tag}");
        let _ = writeln!(main_calls, "  {{ int {r};");
        let _ = writeln!(
            main_calls,
            "    for ({r} = 0; {r} < {calls}; {r} = {r} + 1) s += {call}; }}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use ccured_workloads::runner;

    #[test]
    fn generation_is_deterministic() {
        let p = profiles::mixed();
        let a = generate(&p, 6, 42);
        let b = generate(&p, 6, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.source, y.source);
        }
        let c = generate(&p, 6, 43);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.source != y.source),
            "different seeds must differ"
        );
    }

    #[test]
    fn generated_units_self_check_in_every_mode() {
        for p in profiles::all() {
            for w in generate(&p, 3, 7) {
                let orig = runner::run_original(&w).expect("frontend");
                assert!(orig.ok(), "{}: original: {:?}", w.name, orig.error);
                assert_eq!(orig.exit, 0, "{}: checksum mismatch\n{}", w.name, w.source);
                let cured = runner::run_cured(&w, &ccured_infer_defaults()).expect("cure");
                assert!(
                    cured.stats.ok(),
                    "{}: cured: {:?}",
                    w.name,
                    cured.stats.error
                );
                assert_eq!(cured.stats.exit, 0, "{}", w.name);
                assert_eq!(orig.output, cured.stats.output, "{}", w.name);
            }
        }
    }

    fn ccured_infer_defaults() -> ccured_infer::InferOptions {
        ccured_infer::InferOptions::default()
    }

    #[test]
    fn wild_pressure_concentrates_but_preserves_the_aggregate() {
        let p = profiles::mixed();
        let ws = generate(&p, 24, 11);
        let wildless = ws.iter().filter(|w| !w.source.contains("wild0_")).count();
        assert!(
            wildless > 0,
            "some units must stay WILD-free under pressure"
        );
        assert!(
            ws.iter().any(|w| w.source.contains("wild0_")),
            "the aggregate WILD share must land somewhere"
        );
    }
}
