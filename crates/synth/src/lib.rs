//! Generative C workload synthesis and differential soundness campaigns.
//!
//! The paper validated CCured on a fixed corpus of real programs; this
//! crate turns that test volume into a dial. [`gen`] is a deterministic,
//! seedable generator that emits arbitrarily many well-formed,
//! self-checking C units matching a configurable [`profiles::Profile`] —
//! pointer-kind mix, cast density, struct-hierarchy depth/fanout, loop
//! shapes, and WILD pressure, the same statistics
//! `ccured_workloads::PaperStats` records for the paper corpus (including
//! OpenSSL/bind/OpenSSH-shaped profiles). [`campaign`] pipes a generated
//! corpus through the parallel batch curer, a tree-vs-VM differential
//! check, and the fault-injection crash-test matrix, and scores the
//! measured pointer-kind histograms against the requested targets.
//!
//! Everything is reproducible from a single seed: the same
//! `(profiles, units, seed)` triple regenerates every source byte, every
//! mutant, and every verdict.

pub mod campaign;
pub mod gen;
pub mod profiles;

pub use campaign::{
    run_campaign, CampaignConfig, CampaignReport, ClassStat, Divergence, Escape, ProfileStat,
    KIND_TOLERANCE_PCT,
};
pub use gen::{generate, generate_unit, Carry, LoopShape};
pub use profiles::Profile;
