//! Named generation profiles: the statistical targets one family of
//! synthesized units is shaped to hit.
//!
//! A profile pins down the same statistics [`ccured_workloads::PaperStats`]
//! records for the paper corpus — the pointer-kind mix, cast density,
//! struct-hierarchy shape, loop shapes, and WILD pressure — so the
//! campaign can check the *measured* inference histogram of a generated
//! corpus against the *requested* targets. The OpenSSL/bind/OpenSSH
//! profiles reuse the pointer-kind percentages the paper reports for those
//! programs (the same tuples `daemons.rs` attaches as `PaperStats`), which
//! previously had no synthetic workload behind them.

use crate::gen::LoopShape;

/// Statistical targets for one family of generated units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Profile name (also the unit-name prefix: `synth_<name>_<index>`).
    pub name: &'static str,
    /// Target pointer-kind percentages `(safe, seq, wild, rtti)` over
    /// *declared* pointers, matching `PaperStats::pct`. Interpreted as
    /// weights, so paper tuples that round to 101 are fine as-is.
    pub kind_pct: (u32, u32, u32, u32),
    /// Percentage of alias-chain links written through an explicit
    /// (identity) cast rather than a plain assignment.
    pub cast_density: u32,
    /// Variants in each RTTI dispatch family (struct-hierarchy fanout).
    pub struct_fanout: u32,
    /// Fields each successive variant adds over its prefix
    /// (struct-hierarchy depth).
    pub struct_depth: u32,
    /// Percentage of units eligible to carry WILD blocks. Lower pressure
    /// concentrates the same aggregate WILD share into fewer, wilder units.
    pub wild_pressure: u32,
    /// Per-unit declared-pointer budget `(min, max)`, inclusive.
    pub ptrs_per_unit: (u32, u32),
    /// Relative weights for the five loop shapes, in [`LoopShape::ALL`]
    /// order (up, down, stride-2, nested, while).
    pub loop_mix: [u32; 5],
}

impl Profile {
    /// Looks a profile up by name.
    pub fn named(name: &str) -> Option<Profile> {
        all().into_iter().find(|p| p.name == name)
    }

    /// The kind-percentage weights normalized to fractions summing to 1.
    pub fn kind_fractions(&self) -> (f64, f64, f64, f64) {
        let (sf, sq, w, rt) = self.kind_pct;
        let total = (sf + sq + w + rt).max(1) as f64;
        (
            sf as f64 / total,
            sq as f64 / total,
            w as f64 / total,
            rt as f64 / total,
        )
    }

    /// Weighted loop-shape choice for one generated loop.
    pub(crate) fn pick_loop(&self, roll: u64) -> LoopShape {
        let total: u32 = self.loop_mix.iter().sum::<u32>().max(1);
        let mut point = (roll % total as u64) as u32;
        for (i, w) in self.loop_mix.iter().enumerate() {
            if point < *w {
                return LoopShape::ALL[i];
            }
            point -= w;
        }
        LoopShape::Up
    }
}

/// The default mixed-diet profile: every pointer kind and loop shape is
/// represented, WILD pressure spread over roughly a third of the units.
pub fn mixed() -> Profile {
    Profile {
        name: "mixed",
        kind_pct: (58, 27, 5, 10),
        cast_density: 50,
        struct_fanout: 3,
        struct_depth: 1,
        wild_pressure: 35,
        ptrs_per_unit: (16, 28),
        loop_mix: [3, 2, 2, 2, 1],
    }
}

/// OpenSSL-shaped units: the paper's (67, 27, 0, 6) kind split with deeper
/// struct hierarchies behind the RTTI share.
pub fn openssl() -> Profile {
    Profile {
        name: "openssl",
        kind_pct: (67, 27, 0, 6),
        cast_density: 60,
        struct_fanout: 3,
        struct_depth: 2,
        wild_pressure: 0,
        ptrs_per_unit: (18, 30),
        loop_mix: [4, 1, 2, 1, 1],
    }
}

/// bind-shaped units: the paper's (79, 21, 0, 0) split and the heaviest
/// cast traffic in the corpus (bind's 82k pointer casts).
pub fn bind() -> Profile {
    Profile {
        name: "bind",
        kind_pct: (79, 21, 0, 0),
        cast_density: 85,
        struct_fanout: 4,
        struct_depth: 2,
        wild_pressure: 0,
        ptrs_per_unit: (18, 30),
        loop_mix: [3, 2, 1, 2, 2],
    }
}

/// OpenSSH-shaped units: the paper's (70, 28, 0, 3) split, light casts.
pub fn openssh() -> Profile {
    Profile {
        name: "openssh",
        kind_pct: (70, 28, 0, 3),
        cast_density: 35,
        struct_fanout: 2,
        struct_depth: 1,
        wild_pressure: 0,
        ptrs_per_unit: (16, 26),
        loop_mix: [3, 2, 1, 1, 3],
    }
}

/// Every named profile, campaign order.
pub fn all() -> Vec<Profile> {
    vec![mixed(), openssl(), bind(), openssh()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_lookup_round_trips() {
        for p in all() {
            assert_eq!(Profile::named(p.name), Some(p.clone()), "{}", p.name);
        }
        assert!(Profile::named("no-such-profile").is_none());
    }

    #[test]
    fn profiles_are_well_formed() {
        for p in all() {
            let (sf, sq, w, rt) = p.kind_pct;
            let sum = sf + sq + w + rt;
            assert!((100..=101).contains(&sum), "{}: pct sum {sum}", p.name);
            assert!(p.ptrs_per_unit.0 <= p.ptrs_per_unit.1, "{}", p.name);
            assert!(p.ptrs_per_unit.0 >= 8, "{}: budget too small", p.name);
            assert!(p.struct_fanout >= 2 || rt == 0, "{}", p.name);
            assert!(
                w == 0 || p.wild_pressure > 0,
                "{}: wild unreachable",
                p.name
            );
            assert!(p.loop_mix.iter().sum::<u32>() > 0, "{}", p.name);
        }
    }

    #[test]
    fn loop_pick_covers_all_weighted_shapes() {
        let p = mixed();
        let mut seen = [false; 5];
        for roll in 0..100 {
            let s = p.pick_loop(roll);
            seen[LoopShape::ALL.iter().position(|x| *x == s).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
