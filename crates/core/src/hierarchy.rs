//! The global physical-subtype hierarchy used by RTTI pointers
//! (paper Section 3.2).
//!
//! Nodes are the (structurally deduplicated) pointee types of the program's
//! pointer types. Because prefixes of a type are totally ordered, the
//! "longest proper prefix" parent relation forms a forest; we add a virtual
//! `void` root (every type is a physical subtype of `void`).
//!
//! `isSubtype` is answered two ways: a parent-chain walk (the paper's
//! run-time function) and an O(1) Cohen-style pre/post interval check, used
//! as an ablation in the benchmarks.

use ccured_cil::ir::Program;
use ccured_cil::phys::PhysCtx;
use ccured_cil::types::{Type, TypeId};

/// Identifier of a node in the hierarchy.
pub type NodeId = u32;

#[derive(Debug, Clone)]
struct HNode {
    ty: Option<TypeId>,
    parent: Option<NodeId>,
    pre: u32,
    post: u32,
    depth: u32,
}

/// The physical-subtype tree of a program's pointee types.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    nodes: Vec<HNode>,
}

/// The virtual root node representing `void` (the empty aggregate).
pub const VOID_NODE: NodeId = 0;

impl Hierarchy {
    /// Builds the hierarchy for a program.
    pub fn build(prog: &Program) -> Hierarchy {
        let mut phys = PhysCtx::new(&prog.types);
        // Collect representative pointee types, deduplicated by *physical*
        // equality (distinct struct tags with identical layout share a node:
        // they are indistinguishable to the checked-downcast machinery).
        let mut reps: Vec<TypeId> = Vec::new();
        for i in 0..prog.types.len() {
            if let Type::Ptr(base, _) = prog.types.get(TypeId(i as u32)) {
                if matches!(prog.types.get(*base), Type::Void | Type::Func(_)) {
                    continue;
                }
                let base = *base;
                if !reps
                    .iter()
                    .any(|r| prog.types.same_type(*r, base) || phys.phys_eq(*r, base))
                {
                    reps.push(base);
                }
            }
        }
        // Deterministic order (registration order is already stable).
        reps.sort_by_key(|t| (prog.types.size_of(*t).unwrap_or(0), t.0));

        // Parent selection: the *closest* proper supertype. The prefixes of
        // a type are totally ordered by the prefix relation (note that a
        // supertype can have the same byte size when the subtype fills its
        // trailing padding), so the closest one is the candidate that is a
        // subtype of every other candidate.
        let mut nodes = vec![HNode {
            ty: None,
            parent: None,
            pre: 0,
            post: 0,
            depth: 0,
        }];
        let mut parents: Vec<NodeId> = vec![VOID_NODE; reps.len()];
        for (i, t) in reps.iter().enumerate() {
            let mut best: Option<usize> = None;
            for (j, u) in reps.iter().enumerate() {
                if i == j || !phys.is_proper_subtype(*t, *u) {
                    continue;
                }
                best = match best {
                    None => Some(j),
                    Some(b) if phys.is_proper_subtype(*u, reps[b]) => Some(j),
                    other => other,
                };
            }
            if let Some(b) = best {
                parents[i] = (b + 1) as NodeId;
            }
        }
        for (i, t) in reps.iter().enumerate() {
            nodes.push(HNode {
                ty: Some(*t),
                parent: Some(parents[i]),
                pre: 0,
                post: 0,
                depth: 0,
            });
        }

        let mut h = Hierarchy { nodes };
        h.number();
        h
    }

    /// Assigns pre/post interval numbers and depths via DFS from the root.
    fn number(&mut self) {
        let n = self.nodes.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                children[p as usize].push(i);
            }
        }
        let mut clock = 0u32;
        // Iterative DFS from the void root.
        let mut stack: Vec<(usize, usize, u32)> = vec![(0, 0, 0)];
        self.nodes[0].pre = 0;
        while let Some((node, child_idx, depth)) = stack.pop() {
            if child_idx == 0 {
                self.nodes[node].pre = clock;
                self.nodes[node].depth = depth;
                clock += 1;
            }
            if child_idx < children[node].len() {
                stack.push((node, child_idx + 1, depth));
                stack.push((children[node][child_idx], 0, depth + 1));
            } else {
                self.nodes[node].post = clock;
                clock += 1;
            }
        }
    }

    /// Number of nodes, including the `void` root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the `void` root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Maximum depth of the tree (root = 0).
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// `rttiOf`: the node for a static type, using structural then physical
    /// equality. `void` maps to the root.
    pub fn node_of(&self, prog: &Program, t: TypeId) -> Option<NodeId> {
        if matches!(prog.types.get(t), Type::Void) {
            return Some(VOID_NODE);
        }
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            if prog.types.same_type(n.ty.expect("typed node"), t) {
                return Some(i as NodeId);
            }
        }
        let mut phys = PhysCtx::new(&prog.types);
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            if phys.phys_eq(n.ty.expect("typed node"), t) {
                return Some(i as NodeId);
            }
        }
        None
    }

    /// `isSubtype(a, b)` via the parent-chain walk (the paper's run-time
    /// check). Returns the number of steps walked alongside the answer, for
    /// the cost model.
    pub fn is_subtype_walk(&self, a: NodeId, b: NodeId) -> (bool, u32) {
        let mut cur = Some(a);
        let mut steps = 0;
        while let Some(i) = cur {
            if i == b {
                return (true, steps);
            }
            steps += 1;
            cur = self.nodes[i as usize].parent;
        }
        (false, steps)
    }

    /// `isSubtype(a, b)` via O(1) interval containment (ablation encoding).
    pub fn is_subtype_interval(&self, a: NodeId, b: NodeId) -> bool {
        let (na, nb) = (&self.nodes[a as usize], &self.nodes[b as usize]);
        nb.pre <= na.pre && na.post <= nb.post
    }

    /// The parent of a node.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n as usize].parent
    }

    /// The type a node stands for (`None` for the void root).
    pub fn type_of(&self, n: NodeId) -> Option<TypeId> {
        self.nodes[n as usize].ty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> (Program, Hierarchy) {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        let h = Hierarchy::build(&prog);
        (prog, h)
    }

    #[test]
    fn empty_program_has_root_only() {
        let (_, h) = build("int x;");
        assert!(h.is_empty());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn figure_circle_tree() {
        let (p, h) = build(
            "struct Figure { void *vt; } *f;\n\
             struct Circle { void *vt; int radius; } *c;\n\
             struct Square { void *vt; int side; int area; } *s;",
        );
        let tf = p
            .types
            .ptr_parts(p.globals[p.find_global("f").unwrap().idx()].ty)
            .unwrap()
            .0;
        let tc = p
            .types
            .ptr_parts(p.globals[p.find_global("c").unwrap().idx()].ty)
            .unwrap()
            .0;
        let ts = p
            .types
            .ptr_parts(p.globals[p.find_global("s").unwrap().idx()].ty)
            .unwrap()
            .0;
        let nf = h.node_of(&p, tf).unwrap();
        let nc = h.node_of(&p, tc).unwrap();
        let ns = h.node_of(&p, ts).unwrap();
        // Circle's parent is Figure; Square's parent is Circle (its layout
        // extends Circle's: ptr, int, int vs ptr, int).
        assert_eq!(h.parent(nc), Some(nf));
        assert!(h.is_subtype_walk(nc, nf).0);
        assert!(h.is_subtype_walk(ns, nf).0);
        assert!(!h.is_subtype_walk(nf, nc).0);
        // Interval encoding agrees with the walk.
        assert!(h.is_subtype_interval(nc, nf));
        assert!(h.is_subtype_interval(ns, nf));
        assert!(!h.is_subtype_interval(nf, nc));
    }

    #[test]
    fn every_node_is_subtype_of_void() {
        let (p, h) = build("struct A { int x; } *a; double *d;");
        for name in ["a", "d"] {
            let t = p
                .types
                .ptr_parts(p.globals[p.find_global(name).unwrap().idx()].ty)
                .unwrap()
                .0;
            let n = h.node_of(&p, t).unwrap();
            assert!(h.is_subtype_walk(n, VOID_NODE).0);
            assert!(h.is_subtype_interval(n, VOID_NODE));
        }
    }

    #[test]
    fn unrelated_types_are_not_subtypes() {
        let (p, h) = build("long *l; double *d;");
        let tl = p
            .types
            .ptr_parts(p.globals[p.find_global("l").unwrap().idx()].ty)
            .unwrap()
            .0;
        let td = p
            .types
            .ptr_parts(p.globals[p.find_global("d").unwrap().idx()].ty)
            .unwrap()
            .0;
        let nl = h.node_of(&p, tl).unwrap();
        let nd = h.node_of(&p, td).unwrap();
        assert!(!h.is_subtype_walk(nl, nd).0);
        assert!(!h.is_subtype_interval(nl, nd));
    }

    #[test]
    fn node_of_dedups_structurally() {
        let (p, h) = build("int *a; int *b;");
        let ta = p.types.ptr_parts(p.globals[0].ty).unwrap().0;
        let tb = p.types.ptr_parts(p.globals[1].ty).unwrap().0;
        assert_eq!(h.node_of(&p, ta), h.node_of(&p, tb));
        assert_eq!(h.len(), 2, "root + one int node");
    }

    #[test]
    fn walk_reports_steps() {
        let (p, h) = build(
            "struct A { long x; } *a;\n\
             struct B { long x; long y; } *b;\n\
             struct C { long x; long y; long z; } *c;",
        );
        let tc = p
            .types
            .ptr_parts(p.globals[p.find_global("c").unwrap().idx()].ty)
            .unwrap()
            .0;
        let ta = p
            .types
            .ptr_parts(p.globals[p.find_global("a").unwrap().idx()].ty)
            .unwrap()
            .0;
        let nc = h.node_of(&p, tc).unwrap();
        let na = h.node_of(&p, ta).unwrap();
        let (ok, steps) = h.is_subtype_walk(nc, na);
        assert!(ok);
        assert_eq!(steps, 2, "C -> B -> A");
        assert_eq!(h.max_depth(), 3, "void -> A -> B -> C");
    }
}
