//! Library wrappers and the link audit (paper Section 4.1).
//!
//! A `#pragma ccuredWrapperOf("w", "f")` directs CCured to route every call
//! to the external `f` through the program-defined wrapper `w`. Wrapper
//! bodies use the helper externals `__ptrof` (strip metadata), `__mkptr`
//! (rebuild a wide pointer from a thin one plus a donor), `__verify_nul`
//! (NUL-termination within bounds) and `__bounds_check_n` (explicit length
//! precondition); the `ccured-rt` interpreter implements these helpers for
//! every pointer representation.
//!
//! The link audit reproduces CCured's "fail to link rather than crash"
//! guarantee: any direct external call that would receive a wide
//! (metadata-carrying, non-SPLIT) pointer is reported.

use ccured_cil::ir::*;
use ccured_cil::lower::is_alloc_fn;
use ccured_infer::{PtrKind, Solution};

/// Rewrites calls to wrapped externals into calls to their wrappers.
///
/// Calls inside a wrapper body itself are left alone (the wrapper must be
/// able to call the real function). Returns the `(wrapper, external)` pairs
/// that were applied.
pub fn apply_wrappers(prog: &mut Program) -> Vec<(String, String)> {
    let mut applied = Vec::new();
    let pairs: Vec<(String, String)> = prog
        .pragmas
        .iter()
        .filter_map(|p| match p {
            CcuredPragma::WrapperOf { wrapper, external } => {
                Some((wrapper.clone(), external.clone()))
            }
            _ => None,
        })
        .collect();
    // Wrapper bodies are boundary specifications: raw external calls inside
    // *any* wrapper must stay raw (they already operate on thin pointers via
    // `__ptrof`), so collect the whole wrapper set first and exempt it.
    let wrapper_fns: Vec<FuncId> = pairs
        .iter()
        .filter_map(|(w, _)| prog.find_function(w))
        .collect();
    for (wrapper, external) in pairs {
        let (wid, xid) = match (prog.find_function(&wrapper), prog.find_external(&external)) {
            (Some(w), Some(x)) => (w, x),
            _ => continue,
        };
        for (fi, f) in prog.functions.iter_mut().enumerate() {
            if wrapper_fns.contains(&FuncId(fi as u32)) {
                continue;
            }
            for s in &mut f.body {
                rewrite_stmt(s, xid, wid);
            }
        }
        applied.push((wrapper, external));
    }
    applied
}

fn rewrite_stmt(s: &mut Stmt, from: ExternId, to: FuncId) {
    match s {
        Stmt::Instr(is) => {
            for i in is {
                if let Instr::Call(_, callee, _, _) = i {
                    if matches!(callee, Callee::Extern(x) if *x == from) {
                        *callee = Callee::Func(to);
                    }
                }
            }
        }
        Stmt::If(_, t, e) => {
            for s in t.iter_mut().chain(e.iter_mut()) {
                rewrite_stmt(s, from, to);
            }
        }
        Stmt::Loop(b) | Stmt::Block(b) => {
            for s in b {
                rewrite_stmt(s, from, to);
            }
        }
        Stmt::Switch(_, arms) => {
            for arm in arms {
                for s in &mut arm.body {
                    rewrite_stmt(s, from, to);
                }
            }
        }
        _ => {}
    }
}

/// One incompatibility found by the link audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkIssue {
    /// The external function being called.
    pub external: String,
    /// The calling function.
    pub caller: String,
    /// Human-readable reason.
    pub detail: String,
}

/// Audits every direct external call for representation compatibility:
/// pointer arguments must be thin (SAFE without metadata) or SPLIT.
///
/// `meta` is the per-type metadata table from
/// [`ccured_infer::split::compute_meta_types`].
pub fn check_link(prog: &Program, sol: &Solution, meta: &[bool]) -> Vec<LinkIssue> {
    let mut issues = Vec::new();
    for f in &prog.functions {
        for s in &f.body {
            audit_stmt(prog, sol, meta, f, s, &mut issues);
        }
    }
    issues
}

fn audit_stmt(
    prog: &Program,
    sol: &Solution,
    meta: &[bool],
    f: &Function,
    s: &Stmt,
    issues: &mut Vec<LinkIssue>,
) {
    match s {
        Stmt::Instr(is) => {
            for i in is {
                let (callee, args) = match i {
                    Instr::Call(_, Callee::Extern(x), args, _) => (*x, args),
                    _ => continue,
                };
                let name = &prog.externals[callee.idx()].name;
                if name.is_empty() || name.starts_with("__") || is_alloc_fn(name) {
                    continue;
                }
                // Variadic externals are runtime-provided builtins (printf
                // family) that accept any representation.
                if let ccured_cil::types::Type::Func(sig) =
                    prog.types.get(prog.externals[callee.idx()].ty)
                {
                    if sig.varargs {
                        continue;
                    }
                }
                for (idx, a) in args.iter().enumerate() {
                    if let Some((pointee, q)) = prog.types.ptr_parts(a.ty()) {
                        let kind = sol.kind(q);
                        let wide = kind != PtrKind::Safe || sol.is_rtti(q);
                        let deep_meta = meta.get(pointee.0 as usize).copied().unwrap_or(false);
                        let compatible = (!wide && !deep_meta) || sol.is_split(q);
                        if !compatible {
                            issues.push(LinkIssue {
                                external: name.clone(),
                                caller: f.name.clone(),
                                detail: format!(
                                    "argument {} is a {:?}{} pointer; write a wrapper or use SPLIT types",
                                    idx + 1,
                                    kind,
                                    if deep_meta { " (metadata-carrying)" } else { "" }
                                ),
                            });
                        }
                    }
                }
            }
        }
        Stmt::If(_, t, e) => {
            for s in t.iter().chain(e.iter()) {
                audit_stmt(prog, sol, meta, f, s, issues);
            }
        }
        Stmt::Loop(b) | Stmt::Block(b) => {
            for s in b {
                audit_stmt(prog, sol, meta, f, s, issues);
            }
        }
        Stmt::Switch(_, arms) => {
            for arm in arms {
                for s in &arm.body {
                    audit_stmt(prog, sol, meta, f, s, issues);
                }
            }
        }
        _ => {}
    }
}

/// The C-source prelude shipping CCured's standard-library wrappers
/// (Section 4.1: "wrappers for about 100 commonly-used functions"; we ship
/// the subset our external library implements).
///
/// Prepend this to a program (before its own code) to get `strchr`,
/// `strcpy`, `strlen`-style calls automatically checked and representation-
/// converted at the library boundary.
pub fn stdlib_wrapper_source() -> &'static str {
    r#"
/* ---- CCured helper externals (interpreted by the runtime) ---------- */
extern char * __SAFE __ptrof(char *p);
extern char *__mkptr(char * __SAFE p, char *within);
extern void __verify_nul(char *p);
extern void __bounds_check_n(char *p, unsigned long n);

/* ---- raw library externals (thin pointers only) --------------------- */
extern unsigned long strlen(char *s);
extern char *strchr(char *s, int c);
extern char *strcpy(char *dst, char *src);
extern char *strncpy(char *dst, char *src, unsigned long n);
extern char *strcat(char *dst, char *src);
extern int strcmp(char *a, char *b);
extern int strncmp(char *a, char *b, unsigned long n);
extern void *memcpy(void *dst, void *src, unsigned long n);
extern void *memset(void *dst, int c, unsigned long n);
extern int atoi(char *s);
extern char *strrchr(char *s, int c);
extern char *strstr(char *hay, char *needle);
extern char *strncat(char *dst, char *src, unsigned long n);
extern char *memchr(char *buf, int c, unsigned long n);
extern char *strdup(char *s);

/* ---- wrappers -------------------------------------------------------- */
#pragma ccuredWrapperOf("strlen_wrapper", "strlen")
unsigned long strlen_wrapper(char *s) {
    __verify_nul(s);
    return strlen(__ptrof(s));
}

#pragma ccuredWrapperOf("strchr_wrapper", "strchr")
char *strchr_wrapper(char *str, int chr) {
    __verify_nul(str);
    char *result = strchr(__ptrof(str), chr);
    return __mkptr(result, str);
}

#pragma ccuredWrapperOf("strcpy_wrapper", "strcpy")
char *strcpy_wrapper(char *dst, char *src) {
    unsigned long n;
    __verify_nul(src);
    n = strlen(__ptrof(src));
    __bounds_check_n(dst, n + 1);
    strcpy(__ptrof(dst), __ptrof(src));
    return dst;
}

#pragma ccuredWrapperOf("strncpy_wrapper", "strncpy")
char *strncpy_wrapper(char *dst, char *src, unsigned long n) {
    __bounds_check_n(dst, n);
    __bounds_check_n(src, 0);
    strncpy(__ptrof(dst), __ptrof(src), n);
    return dst;
}

#pragma ccuredWrapperOf("strcat_wrapper", "strcat")
char *strcat_wrapper(char *dst, char *src) {
    unsigned long nd;
    unsigned long ns;
    __verify_nul(dst);
    __verify_nul(src);
    nd = strlen(__ptrof(dst));
    ns = strlen(__ptrof(src));
    __bounds_check_n(dst, nd + ns + 1);
    strcat(__ptrof(dst), __ptrof(src));
    return dst;
}

#pragma ccuredWrapperOf("strcmp_wrapper", "strcmp")
int strcmp_wrapper(char *a, char *b) {
    __verify_nul(a);
    __verify_nul(b);
    return strcmp(__ptrof(a), __ptrof(b));
}

#pragma ccuredWrapperOf("strncmp_wrapper", "strncmp")
int strncmp_wrapper(char *a, char *b, unsigned long n) {
    __bounds_check_n(a, 0);
    __bounds_check_n(b, 0);
    return strncmp(__ptrof(a), __ptrof(b), n);
}

#pragma ccuredWrapperOf("memcpy_wrapper", "memcpy")
void *memcpy_wrapper(void *dst, void *src, unsigned long n) {
    __bounds_check_n(dst, n);
    __bounds_check_n(src, n);
    memcpy(__ptrof(dst), __ptrof(src), n);
    return dst;
}

#pragma ccuredWrapperOf("memset_wrapper", "memset")
void *memset_wrapper(void *dst, int c, unsigned long n) {
    __bounds_check_n(dst, n);
    memset(__ptrof(dst), c, n);
    return dst;
}

#pragma ccuredWrapperOf("atoi_wrapper", "atoi")
int atoi_wrapper(char *s) {
    __verify_nul(s);
    return atoi(__ptrof(s));
}

#pragma ccuredWrapperOf("strrchr_wrapper", "strrchr")
char *strrchr_wrapper(char *str, int chr) {
    __verify_nul(str);
    char *result = strrchr(__ptrof(str), chr);
    return __mkptr(result, str);
}

#pragma ccuredWrapperOf("strstr_wrapper", "strstr")
char *strstr_wrapper(char *hay, char *needle) {
    __verify_nul(hay);
    __verify_nul(needle);
    char *result = strstr(__ptrof(hay), __ptrof(needle));
    return __mkptr(result, hay);
}

#pragma ccuredWrapperOf("strncat_wrapper", "strncat")
char *strncat_wrapper(char *dst, char *src, unsigned long n) {
    unsigned long nd;
    __verify_nul(dst);
    __verify_nul(src);
    nd = strlen(__ptrof(dst));
    __bounds_check_n(dst, nd + n + 1);
    strncat(__ptrof(dst), __ptrof(src), n);
    return dst;
}

#pragma ccuredWrapperOf("memchr_wrapper", "memchr")
char *memchr_wrapper(char *buf, int c, unsigned long n) {
    __bounds_check_n(buf, n);
    char *result = memchr(__ptrof(buf), c, n);
    return __mkptr(result, buf);
}

#pragma ccuredWrapperOf("strdup_wrapper", "strdup")
char *strdup_wrapper(char *s) {
    __verify_nul(s);
    char *fresh = strdup(__ptrof(s));
    /* fresh is its own allocation: its bounds come from itself */
    return __mkptr(fresh, fresh);
}
"#
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccured_infer::{infer, InferOptions};

    fn lower(src: &str) -> Program {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        ccured_cil::lower_translation_unit(&tu).expect("lower")
    }

    #[test]
    fn wrapper_rewrites_calls() {
        let mut prog = lower(
            "extern char *strchr(char *s, int c);\n\
             #pragma ccuredWrapperOf(\"my_wrap\", \"strchr\")\n\
             char *my_wrap(char *s, int c) { return strchr(s, c); }\n\
             char *use(char *s) { return strchr(s, 47); }",
        );
        let applied = apply_wrappers(&mut prog);
        assert_eq!(applied.len(), 1);
        // `use` now calls my_wrap...
        let use_fn = prog.find_function("use").unwrap();
        let called_wrapper = calls_function(&prog.functions[use_fn.idx()], "my_wrap", &prog);
        assert!(
            called_wrapper,
            "call site must be redirected to the wrapper"
        );
        // ...while the wrapper still calls the raw external.
        let w = prog.find_function("my_wrap").unwrap();
        let raw = calls_extern(&prog.functions[w.idx()], "strchr", &prog);
        assert!(raw, "wrapper must keep calling the real external");
    }

    fn calls_function(f: &Function, name: &str, prog: &Program) -> bool {
        fn walk(s: &Stmt, name: &str, prog: &Program) -> bool {
            match s {
                Stmt::Instr(is) => is.iter().any(|i| {
                    matches!(i, Instr::Call(_, Callee::Func(fid), _, _)
                        if prog.functions[fid.idx()].name == name)
                }),
                Stmt::If(_, t, e) => t.iter().chain(e.iter()).any(|s| walk(s, name, prog)),
                Stmt::Loop(b) | Stmt::Block(b) => b.iter().any(|s| walk(s, name, prog)),
                _ => false,
            }
        }
        f.body.iter().any(|s| walk(s, name, prog))
    }

    fn calls_extern(f: &Function, name: &str, prog: &Program) -> bool {
        fn walk(s: &Stmt, name: &str, prog: &Program) -> bool {
            match s {
                Stmt::Instr(is) => is.iter().any(|i| {
                    matches!(i, Instr::Call(_, Callee::Extern(x), _, _)
                        if prog.externals[x.idx()].name == name)
                }),
                Stmt::If(_, t, e) => t.iter().chain(e.iter()).any(|s| walk(s, name, prog)),
                Stmt::Loop(b) | Stmt::Block(b) => b.iter().any(|s| walk(s, name, prog)),
                _ => false,
            }
        }
        f.body.iter().any(|s| walk(s, name, prog))
    }

    #[test]
    fn link_audit_flags_wide_pointer_to_external() {
        let prog = lower(
            "extern void use_buf(char *buf);\n\
             void f(char *b, int i) { b = b + i; use_buf(b); }",
        );
        let res = infer(&prog, &InferOptions::default());
        let meta = ccured_infer::split::compute_meta_types(&prog, &res.solution);
        let issues = check_link(&prog, &res.solution, &meta);
        assert_eq!(
            issues.len(),
            1,
            "SEQ argument to an external must be flagged"
        );
        assert_eq!(issues[0].external, "use_buf");
    }

    #[test]
    fn link_audit_accepts_thin_pointer() {
        let prog = lower(
            "extern void use_one(int *p);\n\
             void f(int *p) { use_one(p); }",
        );
        let res = infer(&prog, &InferOptions::default());
        let meta = ccured_infer::split::compute_meta_types(&prog, &res.solution);
        assert!(check_link(&prog, &res.solution, &meta).is_empty());
    }

    #[test]
    fn link_audit_accepts_split_pointer() {
        let tu = ccured_ast::parse_translation_unit(
            "struct msg { char *buf; };\n\
             extern void sendmsg_like(struct msg *m);\n\
             void f(struct msg *m, int i) { m->buf = m->buf + i; sendmsg_like(m); }",
        )
        .unwrap();
        let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
        let opts = InferOptions {
            split_at_boundaries: true,
            ..InferOptions::default()
        };
        let res = infer(&prog, &opts);
        let meta = ccured_infer::split::compute_meta_types(&prog, &res.solution);
        let issues = check_link(&prog, &res.solution, &meta);
        assert!(
            issues.is_empty(),
            "split representation makes the call compatible: {issues:?}"
        );
    }

    #[test]
    fn stdlib_wrappers_parse_and_lower() {
        let prog = lower(stdlib_wrapper_source());
        assert!(prog.find_function("strcpy_wrapper").is_some());
        assert!(prog.find_function("strchr_wrapper").is_some());
        assert!(prog.pragmas.len() >= 10);
    }
}
