//! The end-to-end CCured pipeline: parse → lower → infer → wrap →
//! instrument → optimize → audit.

use crate::hierarchy::Hierarchy;
use crate::instrument::{instrument, CheckCounts, CheckSite};
use crate::wrappers::{apply_wrappers, check_link, LinkIssue};
use ccured_analysis::{optimize_program, ElisionStats, OptResult, StaticFailure};
use ccured_cil::ir::Program;
use ccured_infer::solve::AnnotationViolation;
use ccured_infer::{infer, CastCensus, InferOptions, KindCounts, Provenance, Solution};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors produced while curing a program.
#[derive(Debug, Clone)]
pub enum CureError {
    /// Lexing, parsing, lowering, or type-checking failed.
    Frontend(ccured_ast::Diag),
    /// The strict link audit found incompatible external calls.
    Link(Vec<LinkIssue>),
    /// The pipeline itself panicked — a curer bug, not a program error.
    /// Produced only by [`isolated`], which converts panics into errors so
    /// one hostile input cannot abort a whole batch (fault injection,
    /// fuzzing).
    Internal(String),
    /// The cure blew its wall-clock budget ([`Curer::deadline`]). A
    /// pathological unit becomes a structured, terminal error instead of a
    /// wedged worker; callers (batch, serve) may retry it with backoff.
    Timeout {
        /// Pipeline stage that noticed the overrun.
        stage: &'static str,
        /// The configured budget.
        budget: Duration,
    },
}

impl fmt::Display for CureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CureError::Frontend(d) => write!(f, "frontend error: {d}"),
            CureError::Link(issues) => {
                writeln!(f, "link audit failed ({} issues):", issues.len())?;
                for i in issues {
                    writeln!(f, "  {} -> {}: {}", i.caller, i.external, i.detail)?;
                }
                Ok(())
            }
            CureError::Internal(d) => write!(f, "internal curer error: {d}"),
            CureError::Timeout { stage, budget } => write!(
                f,
                "cure deadline exceeded: budget {budget:?} spent by stage `{stage}`"
            ),
        }
    }
}

/// Runs `f` with panic isolation: any panic inside becomes
/// [`CureError::Internal`] instead of unwinding into (and aborting) the
/// caller's batch. Used by the fault-injection harness and the fuzz driver,
/// where one pathological mutant must not take down the whole run.
///
/// # Errors
///
/// Whatever `f` returns, plus [`CureError::Internal`] if `f` panicked.
pub fn isolated<T>(f: impl FnOnce() -> Result<T, CureError>) -> Result<T, CureError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(CureError::Internal(msg))
        }
    }
}

impl std::error::Error for CureError {}

impl From<ccured_ast::Diag> for CureError {
    fn from(d: ccured_ast::Diag) -> Self {
        CureError::Frontend(d)
    }
}

/// Wall-clock time attributed to each pipeline stage by the timing hooks
/// in [`Curer::cure_source`]. Consumed by the batch engine's per-stage
/// cache counters and the `fig-batch` speedup table.
///
/// Timings are observability data, *not* part of [`CureReport`]: two cures
/// of the same unit must produce identical reports even though their
/// timings differ.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Lexing + parsing to the AST.
    pub parse: Duration,
    /// Lowering the AST to CIL.
    pub lower: Duration,
    /// Wrapper application, pointer-kind inference, and the link audit.
    pub infer: Duration,
    /// Hierarchy construction + run-time check insertion.
    pub instrument: Duration,
    /// Redundant-check elimination (zero when the optimizer is off).
    pub optimize: Duration,
}

impl StageTimings {
    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.parse + self.lower + self.infer + self.instrument + self.optimize
    }

    /// The stage durations as nanoseconds, in pipeline order
    /// (parse, lower, infer, instrument, optimize).
    pub fn as_ns(&self) -> [u64; 5] {
        [
            self.parse.as_nanos() as u64,
            self.lower.as_nanos() as u64,
            self.infer.as_nanos() as u64,
            self.instrument.as_nanos() as u64,
            self.optimize.as_nanos() as u64,
        ]
    }

    /// Rebuilds timings from [`StageTimings::as_ns`] output (cache entries
    /// store the original cure's timings to compute time saved on hits).
    pub fn from_ns(ns: [u64; 5]) -> Self {
        StageTimings {
            parse: Duration::from_nanos(ns[0]),
            lower: Duration::from_nanos(ns[1]),
            infer: Duration::from_nanos(ns[2]),
            instrument: Duration::from_nanos(ns[3]),
            optimize: Duration::from_nanos(ns[4]),
        }
    }
}

/// Summary of what the cure did — the numbers the paper reports per
/// program (kind percentages, cast census, check counts).
#[derive(Debug, Clone)]
pub struct CureReport {
    /// Qualifier counts per effective kind (the `sf/sq/w/rt` columns).
    pub kind_counts: KindCounts,
    /// Cast classification census.
    pub census: CastCensus,
    /// Static counts of inserted run-time checks (before elimination).
    pub checks_inserted: CheckCounts,
    /// Static counts of checks the optimizer proved redundant and deleted.
    pub checks_elided: ElisionStats,
    /// Check instructions the loop optimizer rewrote to run once per loop
    /// entry (loop-invariant null/RTTI hoisting).
    pub checks_hoisted: u64,
    /// Per-iteration SEQ bounds checks the loop optimizer folded into one
    /// whole-trip range probe.
    pub checks_widened: u64,
    /// Checks provable to *always* fail at run time (compile-time
    /// diagnostics; the checks themselves are kept so behaviour is
    /// unchanged).
    pub static_failures: Vec<StaticFailure>,
    /// `(wrapper, external)` pairs applied.
    pub wrappers_applied: Vec<(String, String)>,
    /// Trusted casts in the program (the code-review surface).
    pub trusted_casts: usize,
    /// SPLIT qualifier count.
    pub split_quals: usize,
    /// Annotation assertions violated by the inference.
    pub annotation_violations: Vec<AnnotationViolation>,
    /// Link-audit findings (fatal only in strict mode).
    pub link_issues: Vec<LinkIssue>,
    /// Validate-and-retry iterations the solver used.
    pub solver_iterations: usize,
}

impl CureReport {
    /// A canonical, fully deterministic rendering of the report, suitable
    /// for content digests (the batch cache) and differential comparison.
    /// Two cures of the same source under the same configuration must
    /// produce byte-identical canonical forms regardless of thread
    /// interleaving or hash-map iteration order — the report vectors are
    /// sorted by [`Curer::cure_program`] before this is called.
    pub fn canonical(&self) -> String {
        format!("{self:#?}")
    }
}

/// Which execution engine `ccured_rt` should run the program on. The cure
/// itself is engine-independent (the fingerprint and report ignore this);
/// the selector merely travels with the [`Cured`] artifact so drivers pick
/// the same engine everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The recursive tree-walking interpreter: the reference semantics and
    /// the differential oracle for the bytecode engine.
    Tree,
    /// The bytecode register VM: identical observable behaviour (output,
    /// exit codes, errors, counters), much faster dispatch.
    #[default]
    Vm,
}

impl Engine {
    /// Both engines, oracle first.
    pub const ALL: [Engine; 2] = [Engine::Tree, Engine::Vm];

    /// The CLI flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Tree => "tree",
            Engine::Vm => "vm",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tree" => Ok(Engine::Tree),
            "vm" => Ok(Engine::Vm),
            other => Err(format!("unknown engine `{other}` (expected tree|vm)")),
        }
    }
}

/// A cured program, ready for execution by `ccured-rt`.
#[derive(Debug, Clone)]
pub struct Cured {
    /// The instrumented program.
    pub program: Program,
    /// The check-site table built by the instrumentation, indexed by
    /// [`SiteId`](ccured_cil::ir::SiteId); the per-site substrate of
    /// `ccured profile`. Not part of [`CureReport::canonical`].
    pub sites: Vec<CheckSite>,
    /// Pointer-kind solution consulted by the runtime for representations.
    pub solution: Solution,
    /// The physical-subtype hierarchy for RTTI checks.
    pub hierarchy: Hierarchy,
    /// Qualifier-promotion provenance recorded by the solver, consumed by
    /// the blame explainer (`ccured-analysis`).
    pub provenance: Provenance,
    /// Cure summary.
    pub report: CureReport,
    /// Per-stage wall-clock attribution for this cure (zero for `parse`
    /// and `lower` when entering via [`Curer::cure_program`]).
    pub timings: StageTimings,
    /// The execution engine drivers should run this program on.
    pub engine: Engine,
    /// Whether the cure emitted temporal lock-and-key checks — runners must
    /// enable temporal semantics on the interpreter so `free` revokes keys.
    pub temporal: bool,
}

/// Builder for the CCured transformation (non-consuming, [`Default`]).
///
/// # Examples
///
/// ```
/// use ccured::Curer;
///
/// let cured = Curer::new()
///     .rtti(true)
///     .cure_source("int f(int *p) { return *p; }")
///     .unwrap();
/// assert_eq!(cured.report.checks_inserted.null, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Curer {
    pub(crate) options: InferOptions,
    pub(crate) strict_link: bool,
    pub(crate) optimize: bool,
    pub(crate) loop_opt: bool,
    pub(crate) temporal: bool,
    pub(crate) prelude: Option<String>,
    pub(crate) engine: Engine,
    pub(crate) deadline: Option<Duration>,
}

impl Default for Curer {
    fn default() -> Self {
        Self::new()
    }
}

impl Curer {
    /// A curer with the paper's default configuration (physical subtyping
    /// and RTTI on, SPLIT only where annotated).
    pub fn new() -> Self {
        Curer {
            options: InferOptions::default(),
            strict_link: false,
            optimize: true,
            loop_opt: true,
            temporal: false,
            prelude: None,
            engine: Engine::default(),
            deadline: None,
        }
    }

    /// A curer mimicking the original (POPL 2002) CCured: no physical
    /// subtyping, no RTTI.
    pub fn original_ccured() -> Self {
        Curer {
            options: InferOptions::original_ccured(),
            strict_link: false,
            optimize: true,
            loop_opt: true,
            temporal: false,
            prelude: None,
            engine: Engine::default(),
            deadline: None,
        }
    }

    /// Enables/disables the RTTI pointer kind.
    pub fn rtti(&mut self, on: bool) -> &mut Self {
        self.options.rtti = on;
        self
    }

    /// Enables/disables physical subtyping for upcasts.
    pub fn physical_subtyping(&mut self, on: bool) -> &mut Self {
        self.options.physical_subtyping = on;
        self
    }

    /// Seeds SPLIT automatically at external-call boundaries.
    pub fn split_at_boundaries(&mut self, on: bool) -> &mut Self {
        self.options.split_at_boundaries = on;
        self
    }

    /// Forces the SPLIT representation everywhere (overhead experiment).
    pub fn split_everything(&mut self, on: bool) -> &mut Self {
        self.options.split_everything = on;
        self
    }

    /// Makes link-audit findings fatal ([`CureError::Link`]).
    pub fn strict_link(&mut self, on: bool) -> &mut Self {
        self.strict_link = on;
        self
    }

    /// Enables/disables redundant-check elimination (on by default; the
    /// CLI's `--no-opt` ablation flag turns it off).
    pub fn optimize(&mut self, on: bool) -> &mut Self {
        self.optimize = on;
        self
    }

    /// Enables/disables the second-generation loop optimizer (invariant
    /// check hoisting + SEQ bounds widening; on by default, and a no-op
    /// when [`Curer::optimize`] is off).
    pub fn loop_optimize(&mut self, on: bool) -> &mut Self {
        self.loop_opt = on;
        self
    }

    /// Enables temporal lock-and-key checking (`--temporal`): every pointer
    /// carries a capability key stamped at allocation, `free` revokes it
    /// (the bytes stay live under the cured GC semantics), and every
    /// dereference gets a `CHECK_TEMPORAL` comparing the key — an ordinary
    /// check instruction with a [`SiteId`], so the optimizer, profiler,
    /// blame explainer, and both engines apply unchanged. Off by default.
    pub fn temporal(&mut self, on: bool) -> &mut Self {
        self.temporal = on;
        self
    }

    /// Selects the execution engine recorded on the [`Cured`] artifact
    /// (default [`Engine::Vm`]; `tree` is the reference oracle). Does not
    /// affect the cure output or the cache fingerprint.
    pub fn engine(&mut self, engine: Engine) -> &mut Self {
        self.engine = engine;
        self
    }

    /// Sets a wall-clock budget for each cure entry point. When the budget
    /// is spent, the pipeline stops at the next stage boundary (or, on the
    /// incremental path, the next function boundary) with
    /// [`CureError::Timeout`] — a pathological unit becomes a structured
    /// error instead of a wedged worker.
    ///
    /// The deadline is deliberately **not** part of
    /// [`Curer::config_fingerprint`]: it can only abort a cure, never
    /// change the output of one that completes, so cache entries stay
    /// valid across deadline changes. A zero budget trips deterministically
    /// at the first boundary (used by tests to exercise the path without
    /// wall-clock flakiness).
    pub fn deadline(&mut self, d: Option<Duration>) -> &mut Self {
        self.deadline = d;
        self
    }

    /// Fails with [`CureError::Timeout`] when the budget set by
    /// [`Curer::deadline`] is already spent at a stage boundary.
    pub(crate) fn check_deadline(
        &self,
        start: Instant,
        stage: &'static str,
    ) -> Result<(), CureError> {
        match self.deadline {
            Some(budget) if start.elapsed() >= budget => Err(CureError::Timeout { stage, budget }),
            _ => Ok(()),
        }
    }

    /// Prepends the standard-library wrapper prelude
    /// ([`crate::wrappers::stdlib_wrapper_source`]) to cured sources.
    pub fn with_stdlib_wrappers(&mut self) -> &mut Self {
        self.prelude = Some(crate::wrappers::stdlib_wrapper_source().to_string());
        self
    }

    /// The current inference options.
    pub fn options(&self) -> &InferOptions {
        &self.options
    }

    /// A stable, human-readable rendering of everything that influences the
    /// cure's output: inference options, optimizer and link-audit settings,
    /// and the prelude text. Part of the batch cache key — two curers with
    /// equal fingerprints produce byte-identical cures for equal sources.
    pub fn config_fingerprint(&self) -> String {
        format!(
            "rtti={} phys={} split_bound={} split_all={} strict_link={} optimize={} loop_opt={} temporal={} prelude={:?}",
            self.options.rtti,
            self.options.physical_subtyping,
            self.options.split_at_boundaries,
            self.options.split_everything,
            self.strict_link,
            self.optimize,
            self.loop_opt,
            self.temporal,
            self.prelude.as_deref().unwrap_or("")
        )
    }

    /// Cures a C source string.
    ///
    /// # Errors
    ///
    /// [`CureError::Frontend`] on parse/type errors; [`CureError::Link`] in
    /// strict mode when the link audit fails.
    pub fn cure_source(&self, src: &str) -> Result<Cured, CureError> {
        let start = Instant::now();
        let full = match &self.prelude {
            Some(p) => format!("{p}\n{src}"),
            None => src.to_string(),
        };
        let t = Instant::now();
        let tu = ccured_ast::parse_translation_unit(&full)?;
        let parse = t.elapsed();
        self.check_deadline(start, "parse")?;
        let t = Instant::now();
        let prog = ccured_cil::lower_translation_unit(&tu)?;
        let lower = t.elapsed();
        self.check_deadline(start, "lower")?;
        let mut cured = self.cure_program_with_deadline(prog, start)?;
        cured.timings.parse = parse;
        cured.timings.lower = lower;
        Ok(cured)
    }

    /// Cures an already-lowered program.
    ///
    /// # Errors
    ///
    /// [`CureError::Link`] in strict mode when the link audit fails.
    pub fn cure_program(&self, prog: Program) -> Result<Cured, CureError> {
        self.cure_program_with_deadline(prog, Instant::now())
    }

    /// [`Curer::cure_program`] with an externally-started clock, so the
    /// budget set by [`Curer::deadline`] covers the whole entry point
    /// (parse and lower included when called from [`Curer::cure_source`]).
    fn cure_program_with_deadline(
        &self,
        mut prog: Program,
        start: Instant,
    ) -> Result<Cured, CureError> {
        // Wrappers first: redirected calls change what the inference sees
        // at library boundaries.
        let t = Instant::now();
        let mut wrappers_applied = apply_wrappers(&mut prog);

        let result = infer(&prog, &self.options);

        let meta = ccured_infer::split::compute_meta_types(&prog, &result.solution);
        let mut link_issues = check_link(&prog, &result.solution, &meta);
        sort_link_issues(&mut link_issues);
        if self.strict_link && !link_issues.is_empty() {
            return Err(CureError::Link(link_issues));
        }
        let infer_time = t.elapsed();
        self.check_deadline(start, "infer")?;

        let t = Instant::now();
        let hierarchy = Hierarchy::build(&prog);
        let (checks_inserted, mut sites) =
            instrument(&mut prog, &result.solution, &hierarchy, self.temporal);
        let instrument_time = t.elapsed();
        self.check_deadline(start, "instrument")?;
        // The static optimizer: redundant-check elimination (the real
        // CCured's optimizer — facts established by earlier checks delete
        // dominated ones), then loop-invariant hoisting and SEQ bounds
        // widening over the survivors.
        let t = Instant::now();
        let opt = if self.optimize {
            optimize_program(&mut prog, self.loop_opt)
        } else {
            OptResult::default()
        };
        let optimize_time = t.elapsed();
        self.check_deadline(start, "optimize")?;
        let mut elision = opt.elision;

        // Attribute the optimizer's work back to the site table so the
        // profiler can report what was deleted statically and why the rest
        // had to stay.
        for s in &mut sites {
            if let Some(n) = elision.site_elides.get(&s.id.0) {
                s.elided = *n;
            }
            if let Some(why) = elision.site_keeps.get(&s.id.0) {
                s.keep_reason = Some(why.clone());
            }
            if let Some(a) = opt.actions.get(&s.id.0) {
                s.opt_action = Some(a.name());
            }
        }

        // Canonical report ordering: every user-visible vector is sorted by
        // (span, symbol) so parallel batch workers and hash-map iteration
        // order can never reorder diagnostics between two cures of the same
        // unit (asserted by the differential batch test).
        elision
            .failures
            .sort_by(|a, b| key_of_failure(a).cmp(&key_of_failure(b)));
        wrappers_applied.sort();
        let mut annotation_violations = result.annotation_violations;
        annotation_violations.sort_by_key(|v| v.qual.0);

        let trusted_casts = prog.casts.iter().filter(|c| c.trusted).count();
        let report = CureReport {
            kind_counts: declared_kind_counts(&prog, &result.solution),
            census: result.census,
            checks_inserted,
            checks_elided: elision.stats,
            checks_hoisted: opt.hoisted,
            checks_widened: opt.widened,
            static_failures: elision.failures,
            wrappers_applied,
            trusted_casts,
            split_quals: result.solution.split_count(),
            annotation_violations,
            link_issues,
            solver_iterations: result.iterations,
        };

        Ok(Cured {
            program: prog,
            sites,
            solution: result.solution,
            hierarchy,
            provenance: result.provenance,
            report,
            timings: StageTimings {
                parse: Duration::ZERO,
                lower: Duration::ZERO,
                infer: infer_time,
                instrument: instrument_time,
                optimize: optimize_time,
            },
            engine: self.engine,
            temporal: self.temporal,
        })
    }
}

impl Cured {
    /// The code-review surface (paper Section 5: "A security code review of
    /// bind should start with these 380 casts"): every trusted cast and
    /// every residual bad cast, rendered with source positions.
    pub fn review_surface(&self, map: &ccured_ast::SourceMap) -> Vec<String> {
        self.review_surface_shifted(map, 0)
    }

    /// Like [`Cured::review_surface`], shifting reported line numbers down
    /// by `prelude_lines` (casts inside a prepended prelude are attributed
    /// to `<wrappers>`).
    pub fn review_surface_shifted(
        &self,
        map: &ccured_ast::SourceMap,
        prelude_lines: u32,
    ) -> Vec<String> {
        let mut phys = ccured_cil::phys::PhysCtx::new(&self.program.types);
        let mut out = Vec::new();
        for site in self.program.casts.iter() {
            let interesting = site.trusted
                || (!site.alloc
                    && matches!(
                        phys.classify_cast(site.from, site.to),
                        ccured_cil::phys::CastClass::Bad
                    ));
            if !interesting {
                continue;
            }
            let pos = map.lookup(site.span.lo);
            let label = if site.trusted {
                "trusted cast"
            } else {
                "BAD cast (WILD)"
            };
            let location = if pos.line > prelude_lines {
                format!("{}:{}:{}", map.name(), pos.line - prelude_lines, pos.col)
            } else {
                format!("<wrappers>:{}:{}", pos.line, pos.col)
            };
            out.push(format!(
                "{location}: {label} from `{}` to `{}`",
                self.program.types.display(site.from),
                self.program.types.display(site.to)
            ));
        }
        out
    }
}

pub(crate) fn key_of_failure(f: &StaticFailure) -> (u32, u32, String, &'static str, String) {
    (
        f.span.lo,
        f.span.hi,
        f.func.clone(),
        f.check,
        f.message.clone(),
    )
}

pub(crate) fn sort_link_issues(issues: &mut [LinkIssue]) {
    issues.sort_by(|a, b| {
        (&a.caller, &a.external, &a.detail).cmp(&(&b.caller, &b.external, &b.detail))
    });
}

/// Counts pointer kinds over *declared* pointers — named locals, globals
/// and struct fields — matching the paper's "% of static pointer
/// declarations" metric (compiler temporaries are excluded; they would
/// dilute the percentages).
pub(crate) fn declared_kind_counts(prog: &Program, sol: &Solution) -> KindCounts {
    use ccured_cil::types::{Type, TypeId};
    let mut counts = KindCounts::default();
    let mut bump = |sol: &Solution, q: ccured_cil::types::QualId| match sol.effective(q) {
        ccured_infer::EffectiveKind::Safe => counts.safe += 1,
        ccured_infer::EffectiveKind::Seq => counts.seq += 1,
        ccured_infer::EffectiveKind::Wild => counts.wild += 1,
        ccured_infer::EffectiveKind::Rtti => counts.rtti += 1,
    };
    // Walk a declared type: its own pointer levels (but not into comps,
    // whose fields are counted once below).
    fn quals_of(prog: &Program, t: TypeId, out: &mut Vec<ccured_cil::types::QualId>) {
        match prog.types.get(t) {
            Type::Ptr(base, q) => {
                out.push(*q);
                quals_of(prog, *base, out);
            }
            Type::Array(elem, _) => quals_of(prog, *elem, out),
            Type::Func(sig) => {
                quals_of(prog, sig.ret, out);
                for p in &sig.params {
                    quals_of(prog, *p, out);
                }
            }
            _ => {}
        }
    }
    // The wrapper library ships with the curer; its pointers are not part
    // of the program under measurement (the paper reports per-program
    // percentages with the wrappers as given infrastructure).
    let wrapper_fns: std::collections::HashSet<&str> = prog
        .pragmas
        .iter()
        .filter_map(|p| match p {
            ccured_cil::ir::CcuredPragma::WrapperOf { wrapper, .. } => Some(wrapper.as_str()),
            _ => None,
        })
        .collect();
    let mut quals = Vec::new();
    for g in &prog.globals {
        quals_of(prog, g.ty, &mut quals);
    }
    for f in &prog.functions {
        if wrapper_fns.contains(f.name.as_str()) {
            continue;
        }
        for l in &f.locals {
            if !l.is_temp {
                quals_of(prog, l.ty, &mut quals);
            }
        }
    }
    for c in prog.types.comps() {
        if c.name.starts_with("__meta") {
            continue;
        }
        for fld in &c.fields {
            quals_of(prog, fld.ty, &mut quals);
        }
    }
    for q in quals {
        bump(sol, q);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cure_simple_program() {
        let cured = Curer::new()
            .cure_source("int f(int *p) { return *p; }")
            .expect("cure");
        assert_eq!(cured.report.checks_inserted.null, 1);
        assert_eq!(cured.report.kind_counts.wild, 0);
    }

    #[test]
    fn cure_reports_kind_percentages() {
        let cured = Curer::new()
            .cure_source("int f(int *p, char *s, int n) { return p[n] + *s; }")
            .expect("cure");
        let (sf, sq, w, rt) = cured.report.kind_counts.percentages();
        assert!(sf > 0);
        assert!(sq > 0);
        assert_eq!(w, 0);
        assert_eq!(rt, 0);
    }

    #[test]
    fn strict_link_rejects_wide_external_arg() {
        let err = Curer::new()
            .strict_link(true)
            .cure_source(
                "extern void use_buf(char *b);\n\
                 void f(char *b, int i) { b = b + i; use_buf(b); }",
            )
            .unwrap_err();
        assert!(matches!(err, CureError::Link(_)));
    }

    #[test]
    fn wrappers_fix_the_link() {
        let cured = Curer::new()
            .strict_link(true)
            .with_stdlib_wrappers()
            .cure_source("int f(char *b, int i) { b = b + i; return (int)strlen(b); }")
            .expect("wrapped strlen call must link");
        assert!(cured
            .report
            .wrappers_applied
            .iter()
            .any(|(w, x)| w == "strlen_wrapper" && x == "strlen"));
    }

    #[test]
    fn frontend_errors_surface() {
        let err = Curer::new().cure_source("int f( {").unwrap_err();
        assert!(matches!(err, CureError::Frontend(_)));
    }

    #[test]
    fn original_ccured_mode_is_wilder() {
        let src = "struct F { void *vt; } gf;\n\
                   struct C { void *vt; int r; } gc;\n\
                   int g(struct F *f) { struct C *c; c = (struct C *)f; return c->r; }";
        let new = Curer::new().cure_source(src).expect("cure");
        let old = Curer::original_ccured().cure_source(src).expect("cure");
        assert!(old.report.kind_counts.wild > new.report.kind_counts.wild);
        assert_eq!(new.report.kind_counts.wild, 0);
    }

    #[test]
    fn redundant_checks_are_elided_by_default() {
        // Two SAFE derefs of an unchanged `p`: the second null check is
        // dominated by the first and must be deleted.
        let cured = Curer::new()
            .cure_source("int f(int *p) { int a; a = *p; a = a + *p; return a; }")
            .expect("cure");
        assert_eq!(cured.report.checks_inserted.null, 2);
        assert_eq!(cured.report.checks_elided.null, 1);
        // The surviving program really has one check fewer.
        let remaining = count_checks(&cured.program);
        assert_eq!(
            remaining as u64,
            cured.report.checks_inserted.total() as u64 - cured.report.checks_elided.total()
        );
    }

    #[test]
    fn no_opt_keeps_every_check() {
        let src = "int f(int *p) { int a; a = *p; a = a + *p; return a; }";
        let cured = Curer::new().optimize(false).cure_source(src).expect("cure");
        assert_eq!(cured.report.checks_elided.total(), 0);
        assert_eq!(
            count_checks(&cured.program),
            cured.report.checks_inserted.total()
        );
    }

    #[test]
    fn static_failures_surface_in_the_report() {
        let cured = Curer::new()
            .cure_source("int main(void) { int *p; p = 0; return *p; }")
            .expect("cure");
        assert_eq!(
            cured.report.static_failures.len(),
            1,
            "{:?}",
            cured.report.static_failures
        );
        assert!(cured.report.static_failures[0].message.contains("null"));
    }

    fn count_checks(prog: &Program) -> usize {
        use ccured_cil::ir::{Instr, Stmt};
        fn walk(stmts: &[Stmt], n: &mut usize) {
            for s in stmts {
                match s {
                    Stmt::Instr(is) => {
                        *n += is.iter().filter(|i| matches!(i, Instr::Check(..))).count()
                    }
                    Stmt::If(_, t, e) => {
                        walk(t, n);
                        walk(e, n);
                    }
                    Stmt::Loop(b) | Stmt::Block(b) => walk(b, n),
                    Stmt::Switch(_, arms) => {
                        for a in arms {
                            walk(&a.body, n);
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut n = 0;
        for f in &prog.functions {
            walk(&f.body, &mut n);
        }
        n
    }

    #[test]
    fn isolated_converts_panics_to_internal_errors() {
        let err = isolated::<()>(|| panic!("boom {}", 42)).unwrap_err();
        assert!(
            matches!(&err, CureError::Internal(m) if m.contains("boom 42")),
            "{err}"
        );
        assert_eq!(isolated(|| Ok(7)).unwrap(), 7);
    }

    #[test]
    fn report_counts_trusted_casts() {
        let cured = Curer::new()
            .cure_source("int f(double *d) { return *((int * __TRUSTED)d); }")
            .expect("cure");
        assert_eq!(cured.report.trusted_casts, 1);
    }
}
