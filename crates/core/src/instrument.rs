//! Instrumentation: inserts the run-time checks of paper Figures 10–11
//! according to the inferred pointer kinds.
//!
//! * SAFE/RTTI dereferences get null checks,
//! * SEQ dereferences get bounds checks against the carried `b`/`e` fields,
//! * WILD dereferences get header bounds checks, and pointer reads through
//!   WILD pointers get tag checks,
//! * static array indexing gets a bound check against the declared length,
//! * SEQ-to-SAFE conversions get a "full element in bounds" check,
//! * checked downcasts get `isSubtype` RTTI checks,
//! * pointer stores to the heap or globals get stack-escape checks.
//!
//! The representation changes themselves (fat pointers, tags, RTTI words)
//! are value-level and are carried out by the `ccured-rt` interpreter, which
//! consults the same [`Solution`].

use crate::hierarchy::Hierarchy;
use ccured_cil::ir::*;
use ccured_cil::phys::{CastClass, PhysCtx};
use ccured_cil::types::Type;
use ccured_infer::gen::lval_type;
use ccured_infer::{PtrKind, Solution};

/// Static counts of inserted checks, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct CheckCounts {
    pub null: usize,
    pub seq_bounds: usize,
    pub seq_to_safe: usize,
    pub wild_bounds: usize,
    pub wild_tag: usize,
    pub rtti: usize,
    pub no_stack_escape: usize,
    pub index_bound: usize,
    pub temporal: usize,
}

impl CheckCounts {
    /// Total checks inserted.
    pub fn total(&self) -> usize {
        self.null
            + self.seq_bounds
            + self.seq_to_safe
            + self.wild_bounds
            + self.wild_tag
            + self.rtti
            + self.no_stack_escape
            + self.index_bound
            + self.temporal
    }

    /// Accumulates another set of counts (per-function instrumentation
    /// results merged into a whole-unit report).
    pub fn add(&mut self, o: &CheckCounts) {
        self.null += o.null;
        self.seq_bounds += o.seq_bounds;
        self.seq_to_safe += o.seq_to_safe;
        self.wild_bounds += o.wild_bounds;
        self.wild_tag += o.wild_tag;
        self.rtti += o.rtti;
        self.no_stack_escape += o.no_stack_escape;
        self.index_bound += o.index_bound;
        self.temporal += o.temporal;
    }

    fn bump(&mut self, c: &Check) {
        match c {
            Check::Null { .. } => self.null += 1,
            Check::SeqBounds { .. } => self.seq_bounds += 1,
            Check::SeqToSafe { .. } => self.seq_to_safe += 1,
            Check::WildBounds { .. } => self.wild_bounds += 1,
            Check::WildTag { .. } => self.wild_tag += 1,
            Check::Rtti { .. } => self.rtti += 1,
            Check::NoStackEscape { .. } => self.no_stack_escape += 1,
            Check::IndexBound { .. } => self.index_bound += 1,
            Check::Temporal { .. } => self.temporal += 1,
            // Synthesized by the loop optimizer, never by instrumentation.
            Check::Probe { .. } | Check::Guarded { .. } | Check::GuardReset { .. } => {}
        }
    }
}

/// The static identity behind a [`SiteId`]: where a check was emitted and
/// what it guards. Rows are numbered in emission order, so two cures of the
/// same program with the same configuration always agree on the table.
/// `elided`/`keep_reason` start empty and are filled in by the optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckSite {
    /// The id stamped on every instruction emitted for this site.
    pub id: SiteId,
    /// Enclosing function.
    pub func: String,
    /// Source span the checks of this site inherit.
    pub span: ccured_ast::Span,
    /// Check kind ([`Check::name`]).
    pub check: &'static str,
    /// Pointer kind the check guards (`safe`/`seq`/`wild`/`rtti`, or `-`
    /// for checks not tied to a pointer representation).
    pub ptr_kind: &'static str,
    /// Check instructions emitted with this id (one source site can
    /// instrument several accesses of the same expression).
    pub static_count: u32,
    /// How many of those instructions the optimizer deleted.
    pub elided: u64,
    /// Why the optimizer kept the surviving instructions (`None` until the
    /// optimizer runs, or when it deleted every one).
    pub keep_reason: Option<String>,
    /// What the loop optimizer did to the surviving instructions
    /// (`"hoisted"` / `"widened"`, `None` when untouched).
    pub opt_action: Option<&'static str>,
}

/// The inferred pointer kind a check guards, as rendered in profiles.
pub fn check_ptr_kind(c: &Check) -> &'static str {
    match c {
        Check::Null { .. } => "safe",
        Check::SeqBounds { .. } | Check::SeqToSafe { .. } => "seq",
        Check::WildBounds { .. } | Check::WildTag { .. } => "wild",
        Check::Rtti { .. } => "rtti",
        // Temporal checks guard the allocation, not a particular fat
        // representation; like index/escape checks they render kind-less.
        Check::NoStackEscape { .. } | Check::IndexBound { .. } | Check::Temporal { .. } => "-",
        // Guard machinery reports the kind of the check it stands in for.
        Check::Guarded { inner, .. } => check_ptr_kind(inner),
        Check::Probe { inner, .. } => inner.first().map_or("-", check_ptr_kind),
        Check::GuardReset { .. } => "-",
    }
}

/// Instruments every function body in `prog` in place; returns the static
/// check counts and the check-site table indexed by [`SiteId`].
pub fn instrument(
    prog: &mut Program,
    sol: &Solution,
    hier: &Hierarchy,
    temporal: bool,
) -> (CheckCounts, Vec<CheckSite>) {
    // `#pragma ccured_trusted(fn)` marks a function as part of the trusted
    // interface: its body gets no checks (the programmer vouches for it).
    let trusted: std::collections::HashSet<&str> = prog
        .pragmas
        .iter()
        .filter_map(|p| match p {
            ccured_cil::ir::CcuredPragma::TrustedFn(name) => Some(name.as_str()),
            _ => None,
        })
        .collect();
    let (new_bodies, counts, sites) = {
        let mut ctx = Ctx {
            prog,
            sol,
            hier,
            phys: PhysCtx::new(&prog.types),
            counts: CheckCounts::default(),
            span: ccured_ast::Span::DUMMY,
            sites: Vec::new(),
            site_ids: std::collections::HashMap::new(),
            temporal,
        };
        let bodies: Vec<Option<Vec<Stmt>>> = prog
            .functions
            .iter()
            .map(|f| {
                if trusted.contains(f.name.as_str()) {
                    None
                } else {
                    Some(ctx.rewrite_stmts(f, &f.body))
                }
            })
            .collect();
        (bodies, ctx.counts, ctx.sites)
    };
    for (f, body) in prog.functions.iter_mut().zip(new_bodies) {
        if let Some(body) = body {
            f.body = body;
        }
    }
    (counts, sites)
}

/// Instruments a single function body in place; returns the static check
/// counts for that function alone.
///
/// Site ids assigned here are function-local (they restart from zero), so
/// they differ from the globally-numbered ids [`instrument`] assigns — but
/// site ids never appear in the rendered program text or the check counts,
/// which is what the incremental recure path caches. The spliced output is
/// byte-identical to whole-program instrumentation.
pub fn instrument_function(
    prog: &mut Program,
    fi: usize,
    sol: &Solution,
    hier: &Hierarchy,
    temporal: bool,
) -> CheckCounts {
    let fname = prog.functions[fi].name.clone();
    let trusted = prog
        .pragmas
        .iter()
        .any(|p| matches!(p, ccured_cil::ir::CcuredPragma::TrustedFn(n) if n == &fname));
    if trusted {
        return CheckCounts::default();
    }
    let (body, counts) = {
        let mut ctx = Ctx {
            prog,
            sol,
            hier,
            phys: PhysCtx::new(&prog.types),
            counts: CheckCounts::default(),
            span: ccured_ast::Span::DUMMY,
            sites: Vec::new(),
            site_ids: std::collections::HashMap::new(),
            temporal,
        };
        let f = &prog.functions[fi];
        (ctx.rewrite_stmts(f, &f.body), ctx.counts)
    };
    prog.functions[fi].body = body;
    counts
}

struct Ctx<'a> {
    prog: &'a Program,
    sol: &'a Solution,
    hier: &'a Hierarchy,
    phys: PhysCtx<'a>,
    counts: CheckCounts,
    // Span of the instruction currently being instrumented; inserted checks
    // inherit it so diagnostics and blame output have source positions.
    span: ccured_ast::Span,
    // The site table under construction, and the dedup index over it keyed
    // by (span, function, check kind) — the pointer kind is implied by the
    // check kind and need not widen the key.
    sites: Vec<CheckSite>,
    site_ids: std::collections::HashMap<(ccured_ast::Span, String, &'static str), SiteId>,
    // `--temporal`: every dereference additionally gets a lock-and-key
    // check after its spatial check.
    temporal: bool,
}

impl<'a> Ctx<'a> {
    fn rewrite_stmts(&mut self, f: &Function, stmts: &[Stmt]) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            match s {
                Stmt::Instr(is) => {
                    let mut list = Vec::with_capacity(is.len());
                    for i in is {
                        self.checks_for_instr(f, i, &mut list);
                        list.push(i.clone());
                    }
                    out.push(Stmt::Instr(list));
                }
                Stmt::If(c, t, e) => {
                    self.flush_exp_checks(f, c, &mut out);
                    out.push(Stmt::If(
                        c.clone(),
                        self.rewrite_stmts(f, t),
                        self.rewrite_stmts(f, e),
                    ));
                }
                Stmt::Loop(b) => out.push(Stmt::Loop(self.rewrite_stmts(f, b))),
                Stmt::Block(b) => out.push(Stmt::Block(self.rewrite_stmts(f, b))),
                Stmt::Return(Some(e)) => {
                    self.flush_exp_checks(f, e, &mut out);
                    out.push(Stmt::Return(Some(e.clone())));
                }
                Stmt::Switch(e, arms) => {
                    self.flush_exp_checks(f, e, &mut out);
                    let arms = arms
                        .iter()
                        .map(|a| SwitchArm {
                            values: a.values.clone(),
                            body: self.rewrite_stmts(f, &a.body),
                        })
                        .collect();
                    out.push(Stmt::Switch(e.clone(), arms));
                }
                other => out.push(other.clone()),
            }
        }
        out
    }

    fn flush_exp_checks(&mut self, f: &Function, e: &Exp, out: &mut Vec<Stmt>) {
        // Conditions and return expressions have no instruction span; fall
        // back to the enclosing function's so diagnostics stay anchored.
        self.span = f.span;
        let mut list = Vec::new();
        self.checks_for_exp(f, e, &mut list);
        if !list.is_empty() {
            out.push(Stmt::Instr(list));
        }
    }

    fn push(&mut self, f: &Function, c: Check, out: &mut Vec<Instr>) {
        self.counts.bump(&c);
        let site = self.site_id(f, &c);
        out.push(Instr::Check(c, self.span, site));
    }

    /// The stable site id for a check at the current span: existing row if
    /// this (span, function, kind) was seen before, fresh row otherwise.
    fn site_id(&mut self, f: &Function, c: &Check) -> SiteId {
        use std::collections::hash_map::Entry;
        match self.site_ids.entry((self.span, f.name.clone(), c.name())) {
            Entry::Occupied(e) => {
                let id = *e.get();
                self.sites[id.0 as usize].static_count += 1;
                id
            }
            Entry::Vacant(e) => {
                let id = SiteId(self.sites.len() as u32);
                e.insert(id);
                self.sites.push(CheckSite {
                    id,
                    func: f.name.clone(),
                    span: self.span,
                    check: c.name(),
                    ptr_kind: check_ptr_kind(c),
                    static_count: 1,
                    elided: 0,
                    keep_reason: None,
                    opt_action: None,
                });
                id
            }
        }
    }

    /// Access size for a bounds check on `pointee`. `void` accesses are
    /// byte-granular (GNU semantics, matching the interpreter); any other
    /// unsized type here is a frontend invariant violation — panic rather
    /// than emit a check with a made-up size (the pipeline's panic
    /// isolation turns this into `CureError::Internal`).
    fn access_size(&self, pointee: ccured_cil::types::TypeId) -> u64 {
        if matches!(self.prog.types.get(pointee), Type::Void) {
            return 1;
        }
        match self.prog.types.size_of(pointee) {
            Ok(s) => s,
            Err(e) => panic!("cannot instrument access to unsized type: {e}"),
        }
    }

    fn checks_for_instr(&mut self, f: &Function, i: &Instr, out: &mut Vec<Instr>) {
        if let Instr::Set(_, _, s) | Instr::Call(_, _, _, s) = i {
            self.span = *s;
        }
        match i {
            Instr::Set(lv, e, _) => {
                self.checks_for_lval(f, lv, out);
                self.checks_for_exp(f, e, out);
                // Pointer stores to memory must not leak stack addresses
                // (Appendix A: write checks).
                let stored_to_memory = lv.is_deref() || matches!(lv.base, LvBase::Global(_));
                if stored_to_memory && self.prog.types.is_ptr(e.ty()) {
                    self.push(f, Check::NoStackEscape { value: e.clone() }, out);
                }
            }
            Instr::Call(ret, callee, args, _) => {
                for a in args {
                    self.checks_for_exp(f, a, out);
                }
                if let Some(lv) = ret {
                    self.checks_for_lval(f, lv, out);
                }
                if let Callee::Ptr(e) = callee {
                    self.checks_for_exp(f, e, out);
                    self.push(f, Check::Null { ptr: e.clone() }, out);
                }
            }
            Instr::Check(..) => {}
        }
    }

    fn checks_for_exp(&mut self, f: &Function, e: &Exp, out: &mut Vec<Instr>) {
        match e {
            Exp::Load(lv, ty) => {
                self.checks_for_lval(f, lv, out);
                // Reading a pointer out of a WILD area needs a tag check.
                if self.prog.types.is_ptr(*ty) {
                    if let LvBase::Deref(p) = &lv.base {
                        if let Some((_, q)) = self.prog.types.ptr_parts(p.ty()) {
                            if self.sol.kind(q) == PtrKind::Wild {
                                self.push(f, Check::WildTag { ptr: (**p).clone() }, out);
                            }
                        }
                    }
                }
            }
            Exp::AddrOf(lv, _) | Exp::StartOf(lv, _) => {
                self.checks_for_lval(f, lv, out);
            }
            Exp::Unop(_, x, _) => self.checks_for_exp(f, x, out),
            Exp::Binop(_, a, b, _) => {
                self.checks_for_exp(f, a, out);
                self.checks_for_exp(f, b, out);
            }
            Exp::Cast(id, x, _) => {
                self.checks_for_exp(f, x, out);
                self.cast_checks(f, *id, x, out);
            }
            Exp::Const(..) | Exp::FnAddr(..) | Exp::SizeOf(..) => {}
        }
    }

    fn checks_for_lval(&mut self, f: &Function, lv: &Lval, out: &mut Vec<Instr>) {
        if let LvBase::Deref(p) = &lv.base {
            self.checks_for_exp(f, p, out);
            if let Some((pointee, q)) = self.prog.types.ptr_parts(p.ty()) {
                let size = self.access_size(pointee);
                match self.sol.kind(q) {
                    PtrKind::Safe => {
                        self.push(f, Check::Null { ptr: (**p).clone() }, out);
                    }
                    PtrKind::Seq => {
                        self.push(
                            f,
                            Check::SeqBounds {
                                ptr: (**p).clone(),
                                access_size: size,
                            },
                            out,
                        );
                    }
                    PtrKind::Wild => {
                        self.push(
                            f,
                            Check::WildBounds {
                                ptr: (**p).clone(),
                                access_size: size,
                            },
                            out,
                        );
                    }
                }
                // Temporal check *after* the spatial one: a null or
                // out-of-bounds pointer is blamed spatially first, so
                // enabling `--temporal` never changes which check an
                // already-failing program dies on.
                if self.temporal {
                    self.push(f, Check::Temporal { ptr: (**p).clone() }, out);
                }
            }
        }
        // Walk offsets for index checks (need the running type).
        let mut ty = match &lv.base {
            LvBase::Local(l) => f.locals[l.idx()].ty,
            LvBase::Global(g) => self.prog.globals[g.idx()].ty,
            LvBase::Deref(e) => match self.prog.types.ptr_parts(e.ty()) {
                Some((base, _)) => base,
                None => return,
            },
        };
        for off in &lv.offsets {
            match off {
                Offset::Field(cid, idx) => {
                    ty = self.prog.types.comp(*cid).fields[*idx].ty;
                }
                Offset::Index(i) => {
                    self.checks_for_exp(f, i, out);
                    let (elem, len) = match self.prog.types.get(ty) {
                        Type::Array(elem, len) => (*elem, *len),
                        _ => return,
                    };
                    if let Some(n) = len {
                        // Constant in-bounds indexes need no dynamic check.
                        let statically_ok = matches!(
                            i,
                            Exp::Const(Const::Int(v, _), _) if *v >= 0 && (*v as u64) < n
                        );
                        if !statically_ok {
                            self.push(
                                f,
                                Check::IndexBound {
                                    index: i.clone(),
                                    len: n,
                                },
                                out,
                            );
                        }
                    }
                    ty = elem;
                }
            }
        }
        let _ = lval_type; // typing retained via the walk above
    }

    fn cast_checks(&mut self, f: &Function, id: CastId, x: &Exp, out: &mut Vec<Instr>) {
        let site = &self.prog.casts[id.idx()];
        if site.trusted || site.alloc {
            return;
        }
        let (fp, tp) = (
            self.prog.types.ptr_parts(site.from),
            self.prog.types.ptr_parts(site.to),
        );
        let ((fb, fq), (tb, tq)) = match (fp, tp) {
            (Some(a), Some(b)) => (a, b),
            _ => return,
        };
        let (kf, kt) = (self.sol.kind(fq), self.sol.kind(tq));
        let class = self.phys.classify_cast(site.from, site.to);
        // SEQ to thin: the pointer must address a whole target element.
        if kf == PtrKind::Seq && kt == PtrKind::Safe {
            let size = self.access_size(tb);
            self.push(
                f,
                Check::SeqToSafe {
                    ptr: x.clone(),
                    access_size: size,
                },
                out,
            );
        }
        // Checked downcast (Figure 2): source carries RTTI.
        if class == CastClass::Downcast && kf == PtrKind::Safe && self.sol.is_rtti(fq) {
            let node = self
                .hier
                .node_of(self.prog, tb)
                .expect("downcast target type is registered in the hierarchy");
            self.push(
                f,
                Check::Rtti {
                    ptr: x.clone(),
                    target_node: node,
                },
                out,
            );
        }
        let _ = fb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccured_infer::{infer, InferOptions};

    fn instrumented(src: &str) -> (Program, CheckCounts) {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let mut prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        let res = infer(&prog, &InferOptions::default());
        let hier = Hierarchy::build(&prog);
        let (counts, _) = instrument(&mut prog, &res.solution, &hier, false);
        (prog, counts)
    }

    fn sites_of(src: &str) -> Vec<CheckSite> {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let mut prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        let res = infer(&prog, &InferOptions::default());
        let hier = Hierarchy::build(&prog);
        instrument(&mut prog, &res.solution, &hier, false).1
    }

    #[test]
    fn safe_deref_gets_null_check() {
        let (_, c) = instrumented("int f(int *p) { return *p; }");
        assert_eq!(c.null, 1);
        assert_eq!(c.seq_bounds, 0);
    }

    #[test]
    fn seq_deref_gets_bounds_check() {
        let (_, c) = instrumented("int f(int *p, int i) { return p[i]; }");
        assert!(c.seq_bounds >= 1);
        assert_eq!(c.null, 0);
    }

    #[test]
    fn static_array_index_checked() {
        let (_, c) = instrumented("int f(int i) { int a[10]; a[0] = 1; return a[i]; }");
        // a[0] is statically in bounds; a[i] needs a dynamic check.
        assert_eq!(c.index_bound, 1);
    }

    #[test]
    fn wild_deref_gets_wild_checks() {
        let (_, c) = instrumented(
            "int f(double *d) { int **pp; int *q; pp = (int **)d; q = *pp; return *q; }",
        );
        assert!(c.wild_bounds >= 1);
        assert!(
            c.wild_tag >= 1,
            "reading a pointer through WILD needs a tag check"
        );
    }

    #[test]
    fn downcast_gets_rtti_check() {
        let (_, c) = instrumented(
            "struct F { void *vt; } gf;\n\
             struct C { void *vt; int r; } gc;\n\
             int g(struct F *f) { struct C *c; c = (struct C *)f; return c->r; }",
        );
        assert_eq!(c.rtti, 1);
    }

    #[test]
    fn upcast_gets_no_check() {
        let (_, c) = instrumented(
            "struct F { void *vt; } gf;\n\
             struct C { void *vt; int r; } gc;\n\
             void take(struct F *f) { }\n\
             void g(struct C *c) { take((struct F *)c); }",
        );
        assert_eq!(c.rtti, 0);
        assert_eq!(c.seq_to_safe, 0);
    }

    #[test]
    fn pointer_store_to_heap_gets_escape_check() {
        let (_, c) = instrumented("void f(int **pp, int *v) { *pp = v; }");
        assert!(c.no_stack_escape >= 1);
    }

    #[test]
    fn pointer_store_to_local_gets_no_escape_check() {
        let (_, c) = instrumented("void f(int *v) { int *q; q = v; }");
        assert_eq!(c.no_stack_escape, 0);
    }

    #[test]
    fn indirect_call_gets_null_check() {
        let (_, c) = instrumented("int apply(int (*fp)(int), int x) { return fp(x); }");
        assert!(c.null >= 1);
    }

    #[test]
    fn condition_checks_precede_if() {
        let (p, c) = instrumented("int f(int *p) { if (*p) return 1; return 0; }");
        assert_eq!(c.null, 1);
        // The check must be a statement before the If in the body.
        let f = &p.functions[0];
        let has_check_stmt = f.body.iter().any(|s| match s {
            Stmt::Instr(is) => is.iter().any(|i| matches!(i, Instr::Check(..))),
            _ => false,
        });
        assert!(has_check_stmt);
    }

    #[test]
    fn trusted_cast_unchecked() {
        let (_, c) =
            instrumented("int f(double *d) { int *q; q = (int * __TRUSTED)d; return *q; }");
        assert_eq!(c.rtti, 0);
        assert_eq!(c.seq_to_safe, 0);
        // The SAFE deref of q still gets its null check.
        assert!(c.null >= 1);
    }

    #[test]
    fn trusted_functions_are_left_unchecked() {
        let (p, c) = instrumented(
            "#pragma ccured_trusted(raw_peek)\n\
             int raw_peek(int *p) { return *p; }\n\
             int checked_peek(int *p) { return *p; }",
        );
        // Only checked_peek gets the null check.
        assert_eq!(c.null, 1);
        let raw = p.find_function("raw_peek").unwrap();
        let has_check = p.functions[raw.idx()].body.iter().any(|s| match s {
            Stmt::Instr(is) => is.iter().any(|i| matches!(i, Instr::Check(..))),
            _ => false,
        });
        assert!(!has_check, "trusted function must stay unchecked");
    }

    #[test]
    fn check_totals_add_up() {
        let (_, c) =
            instrumented("int f(int *p, int i) { int a[4]; a[i] = *p; return a[i] + p[i]; }");
        assert_eq!(
            c.total(),
            c.null
                + c.seq_bounds
                + c.seq_to_safe
                + c.wild_bounds
                + c.wild_tag
                + c.rtti
                + c.no_stack_escape
                + c.index_bound
        );
        assert!(c.total() >= 4);
    }

    #[test]
    fn site_table_is_dense_and_matches_emitted_checks() {
        let src = "int f(int *p, int i) { int a[4]; a[i] = *p; return a[i] + p[i]; }";
        let (prog, c) = instrumented(src);
        let sites = sites_of(src);
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.id.0 as usize, i, "table index is the id");
            assert!(s.id.index().is_some());
            assert!(s.static_count >= 1);
        }
        let static_total: u32 = sites.iter().map(|s| s.static_count).sum();
        assert_eq!(static_total as usize, c.total(), "every check has a site");
        // Every emitted instruction carries an id that resolves in the table.
        let mut stamped = 0usize;
        for f in &prog.functions {
            visit_site_ids(&f.body, &mut |site| {
                assert!((site.0 as usize) < sites.len());
                stamped += 1;
            });
        }
        assert_eq!(stamped, c.total());
    }

    fn visit_site_ids(body: &[Stmt], f: &mut impl FnMut(SiteId)) {
        for s in body {
            match s {
                Stmt::Instr(is) => {
                    for i in is {
                        if let Instr::Check(_, _, site) = i {
                            f(*site);
                        }
                    }
                }
                Stmt::If(_, t, e) => {
                    visit_site_ids(t, f);
                    visit_site_ids(e, f);
                }
                Stmt::Loop(b) | Stmt::Block(b) => visit_site_ids(b, f),
                Stmt::Switch(_, arms) => {
                    for a in arms {
                        visit_site_ids(&a.body, f);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn site_table_is_deterministic() {
        let src = "int f(int *p, int i) { int a[4]; a[i] = *p; return a[i] + p[i]; }\n\
                   int g(int *q) { return *q; }";
        assert_eq!(sites_of(src), sites_of(src));
    }

    #[test]
    fn sites_record_function_kind_and_ptr_kind() {
        let sites = sites_of("int f(int *p) { return *p; }");
        let null = sites
            .iter()
            .find(|s| s.check == "null")
            .expect("null-check site");
        assert_eq!(null.func, "f");
        assert_eq!(null.ptr_kind, "safe");
        assert_eq!(null.elided, 0, "optimizer has not run");
        assert!(null.keep_reason.is_none());
    }
}
