//! The compatible metadata representation: the `C(t)` and `Meta(t)` type
//! functions of paper Figure 6, and the boundary representations of
//! Figure 7.
//!
//! * `C(t)` strips all pointer qualifiers: it is the type an external C
//!   library expects. In this implementation the in-memory layout engine
//!   already uses C layout for all data (wide-pointer metadata is
//!   virtualized by the runtime), so `C(t)` has the same layout as `t`;
//!   the function is still materialized for fidelity and for the runtime's
//!   shadow-shape computation.
//! * `Meta(t)` is the parallel metadata structure: `void` for metadata-free
//!   types; for a SEQ pointer a `{b, e, m}` record; for a SAFE pointer a
//!   `{m}` record (omitted when the base has no metadata); for a structure
//!   the structure of its fields' metadata.

use ccured_cil::types::{FuncSig, IntKind, QualId, Type, TypeId, TypeTable};
use ccured_infer::{PtrKind, Solution};
use std::collections::HashMap;

/// Builds `C(t)` / `Meta(t)` types inside a (mutable) type table.
///
/// # Examples
///
/// See the module tests, which reproduce the paper's `struct hostent`
/// example (Figures 4–6).
pub struct SplitTypes<'s> {
    sol: &'s Solution,
    /// Least-fixpoint "has metadata" flag per pre-existing [`TypeId`],
    /// computed once so recursive types never fabricate metadata.
    has_meta: Vec<bool>,
    meta_cache: HashMap<TypeId, Option<TypeId>>,
    comp_meta: HashMap<u32, Option<ccured_cil::types::CompId>>,
}

impl<'s> SplitTypes<'s> {
    /// Creates a builder; `types` is inspected to precompute the metadata
    /// least fixpoint over the current type population.
    pub fn new(types: &TypeTable, sol: &'s Solution) -> Self {
        let n = types.len();
        let mut has_meta = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                if has_meta[i] {
                    continue;
                }
                let t = TypeId(i as u32);
                let m = match types.get(t) {
                    Type::Ptr(base, q) => {
                        sol.kind(*q) != PtrKind::Safe
                            || sol.is_rtti(*q)
                            || has_meta[base.0 as usize]
                    }
                    Type::Array(elem, _) => has_meta[elem.0 as usize],
                    Type::Comp(cid) => types
                        .comp(*cid)
                        .fields
                        .iter()
                        .any(|f| has_meta[f.ty.0 as usize]),
                    _ => false,
                };
                if m {
                    has_meta[i] = true;
                    changed = true;
                }
            }
        }
        SplitTypes {
            sol,
            has_meta,
            meta_cache: HashMap::new(),
            comp_meta: HashMap::new(),
        }
    }

    /// `C(t)`: the external-library view of `t`. Layout-identical to `t` in
    /// this implementation (see module docs); returned as-is.
    pub fn c_type(&self, _types: &TypeTable, t: TypeId) -> TypeId {
        t
    }

    /// `Meta(t)`: the metadata type, or `None` when `Meta(t) = void`.
    pub fn meta_type(&mut self, types: &mut TypeTable, t: TypeId) -> Option<TypeId> {
        // The precomputed least fixpoint decides *whether* metadata exists;
        // the builder below only decides its shape (so recursion through
        // struct pointers cannot fabricate metadata).
        if !self.has_meta.get(t.0 as usize).copied().unwrap_or(false) {
            return None;
        }
        if let Some(cached) = self.meta_cache.get(&t) {
            return *cached;
        }
        let result = self.build_meta(types, t);
        self.meta_cache.insert(t, result);
        result
    }

    fn build_meta(&mut self, types: &mut TypeTable, t: TypeId) -> Option<TypeId> {
        match types.get(t).clone() {
            Type::Void | Type::Int(_) | Type::Float(_) | Type::Func(_) => None,
            Type::Ptr(base, q) => {
                let kind = self.sol.kind(q);
                let rtti = self.sol.is_rtti(q);
                let base_meta = self.meta_type(types, base);
                match (kind, rtti) {
                    (PtrKind::Safe, false) => {
                        // Meta(t *SAFE) = struct { Meta(t) *m } — omitted
                        // entirely if Meta(t) = void.
                        let bm = base_meta?;
                        let name = format!("__meta_safe_{}", t.0);
                        let cid = types.declare_comp(name, false);
                        let mq = types.fresh_qual();
                        let mp = types.mk_ptr_with_qual(bm, mq);
                        let fq = types.fresh_qual();
                        types.define_comp(cid, vec![("m".into(), mp, fq)]).ok()?;
                        Some(types.mk_comp(cid))
                    }
                    (PtrKind::Seq, _) | (PtrKind::Wild, _) => {
                        // Meta(t *SEQ) = struct { C(t) *b, *e; Meta(t) *m? }.
                        let name = format!("__meta_seq_{}", t.0);
                        let cid = types.declare_comp(name, false);
                        let cb = self.c_type(types, base);
                        let bq = types.fresh_qual();
                        let bp = types.mk_ptr_with_qual(cb, bq);
                        let eq = types.fresh_qual();
                        let ep = types.mk_ptr_with_qual(cb, eq);
                        let (fqb, fqe) = (types.fresh_qual(), types.fresh_qual());
                        let mut fields =
                            vec![("b".to_string(), bp, fqb), ("e".to_string(), ep, fqe)];
                        if let Some(bm) = base_meta {
                            let mq = types.fresh_qual();
                            let mp = types.mk_ptr_with_qual(bm, mq);
                            let fqm = types.fresh_qual();
                            fields.push(("m".into(), mp, fqm));
                        }
                        types.define_comp(cid, fields).ok()?;
                        Some(types.mk_comp(cid))
                    }
                    (PtrKind::Safe, true) => {
                        // RTTI pointers carry a type word: Meta = { t; m? }.
                        let name = format!("__meta_rtti_{}", t.0);
                        let cid = types.declare_comp(name, false);
                        let word = types.mk_int(IntKind::ULong);
                        let fqt = types.fresh_qual();
                        let mut fields = vec![("t".to_string(), word, fqt)];
                        if let Some(bm) = base_meta {
                            let mq = types.fresh_qual();
                            let mp = types.mk_ptr_with_qual(bm, mq);
                            let fqm = types.fresh_qual();
                            fields.push(("m".into(), mp, fqm));
                        }
                        types.define_comp(cid, fields).ok()?;
                        Some(types.mk_comp(cid))
                    }
                }
            }
            Type::Array(elem, len) => {
                let em = self.meta_type(types, elem)?;
                Some(types.mk_array(em, len))
            }
            Type::Comp(cid) => {
                if let Some(m) = self.comp_meta.get(&cid.0) {
                    return m.map(|c| types.mk_comp(c));
                }
                let info = types.comp(cid).clone();
                if !info.defined {
                    return None;
                }
                // Pre-declare to break recursion through struct pointers.
                let meta_cid = types.declare_comp(format!("__meta_{}", info.name), info.is_union);
                self.comp_meta.insert(cid.0, Some(meta_cid));
                let mut fields = Vec::new();
                for f in &info.fields {
                    if let Some(fm) = self.meta_type(types, f.ty) {
                        let q = types.fresh_qual();
                        fields.push((f.name.clone(), fm, q));
                    }
                }
                debug_assert!(
                    !fields.is_empty(),
                    "has_meta fixpoint guarantees at least one metadata field"
                );
                types.define_comp(meta_cid, fields).ok()?;
                Some(types.mk_comp(meta_cid))
            }
        }
    }

    /// Whether a SPLIT pointer qualifier needs an `m` metadata-pointer field
    /// in its representation (the paper's "31% of these pointers need a
    /// metadata pointer" statistic).
    pub fn needs_meta_ptr(&mut self, types: &mut TypeTable, ptr_ty: TypeId) -> bool {
        match types.get(ptr_ty) {
            Type::Ptr(base, _) => {
                let base = *base;
                self.meta_type(types, base).is_some()
            }
            _ => false,
        }
    }
}

/// Convenience: the qualifier of a pointer type, if any.
pub fn qual_of(types: &TypeTable, t: TypeId) -> Option<QualId> {
    types.ptr_parts(t).map(|(_, q)| q)
}

/// Builds the `FuncSig`-shaped metadata summary used by the runtime when
/// calling split-typed functions: per parameter, whether metadata travels
/// alongside.
pub fn param_meta_shape(types: &mut TypeTable, sol: &Solution, sig: &FuncSig) -> Vec<bool> {
    let mut st = SplitTypes::new(types, sol);
    sig.params
        .iter()
        .map(|p| match types.get(*p) {
            Type::Ptr(base, _) => {
                let base = *base;
                st.meta_type(types, base).is_some()
            }
            _ => false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccured_infer::{infer, InferOptions};

    fn setup(src: &str) -> (ccured_cil::Program, Solution) {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        let res = infer(&prog, &InferOptions::default());
        (prog, res.solution)
    }

    #[test]
    fn scalar_meta_is_void() {
        let (mut prog, sol) = setup("int x; double d;");
        let mut st = SplitTypes::new(&prog.types, &sol);
        let tx = prog.globals[0].ty;
        assert!(st.meta_type(&mut prog.types, tx).is_none());
    }

    #[test]
    fn safe_ptr_to_scalar_has_no_meta() {
        let (mut prog, sol) = setup("int *p; int f(void) { return *p; }");
        let mut st = SplitTypes::new(&prog.types, &sol);
        let tp = prog.globals[0].ty;
        assert!(
            st.meta_type(&mut prog.types, tp).is_none(),
            "Meta(int *SAFE) = void"
        );
    }

    #[test]
    fn seq_ptr_has_bounds_meta() {
        let (mut prog, sol) = setup("int *p; int f(int i) { return p[i]; }");
        let mut st = SplitTypes::new(&prog.types, &sol);
        let tp = prog.globals[0].ty;
        let m = st.meta_type(&mut prog.types, tp).expect("SEQ has metadata");
        match prog.types.get(m) {
            Type::Comp(cid) => {
                let info = prog.types.comp(*cid);
                let names: Vec<&str> = info.fields.iter().map(|f| f.name.as_str()).collect();
                assert_eq!(names, vec!["b", "e"], "Meta(int *SEQ) = {{b, e}}");
            }
            other => panic!("expected struct metadata, got {other:?}"),
        }
    }

    #[test]
    fn hostent_meta_shape_matches_paper() {
        // struct hostent { char *h_name; char **h_aliases; int h_addrtype; }
        // with h_name and h_aliases (and its elements) SEQ: the metadata is
        // struct { meta_seq h_name; meta_seq_seq h_aliases; } — h_addrtype
        // contributes nothing (paper Figures 4–6).
        let (mut prog, sol) = setup(
            "struct hostent { char *h_name; char **h_aliases; int h_addrtype; };\n\
             int f(struct hostent *h, int i, int j) {\n\
               return h->h_name[i] + h->h_aliases[i][j];\n\
             }",
        );
        let cid = prog.types.find_comp("hostent", false).unwrap();
        let t = prog.types.mk_comp(cid);
        let mut st = SplitTypes::new(&prog.types, &sol);
        let m = st
            .meta_type(&mut prog.types, t)
            .expect("hostent has metadata");
        match prog.types.get(m) {
            Type::Comp(mc) => {
                let info = prog.types.comp(*mc);
                let names: Vec<&str> = info.fields.iter().map(|f| f.name.as_str()).collect();
                assert_eq!(
                    names,
                    vec!["h_name", "h_aliases"],
                    "h_addrtype has void metadata and is omitted"
                );
                // h_aliases metadata must include b, e and m (element
                // strings carry their own bounds).
                let fa = &info.fields[1];
                match prog.types.get(fa.ty) {
                    Type::Comp(ac) => {
                        let ai = prog.types.comp(*ac);
                        let an: Vec<&str> = ai.fields.iter().map(|f| f.name.as_str()).collect();
                        assert_eq!(an, vec!["b", "e", "m"]);
                    }
                    other => panic!("expected struct, got {other:?}"),
                }
            }
            other => panic!("expected struct metadata, got {other:?}"),
        }
    }

    #[test]
    fn recursive_list_meta_terminates() {
        let (mut prog, sol) = setup(
            "struct L { struct L *next; char *data; };\n\
             int f(struct L *l, int i) { return l->data[i]; }",
        );
        let cid = prog.types.find_comp("L", false).unwrap();
        let t = prog.types.mk_comp(cid);
        let mut st = SplitTypes::new(&prog.types, &sol);
        // data is SEQ -> L carries metadata; next is SAFE pointing to a
        // metadata-carrying type -> next's metadata is {m}.
        let m = st.meta_type(&mut prog.types, t);
        assert!(m.is_some(), "list metadata must exist and terminate");
    }

    #[test]
    fn meta_free_struct_has_void_meta() {
        let (mut prog, sol) = setup("struct P { int x; int y; }; struct P g;");
        let cid = prog.types.find_comp("P", false).unwrap();
        let t = prog.types.mk_comp(cid);
        let mut st = SplitTypes::new(&prog.types, &sol);
        assert!(st.meta_type(&mut prog.types, t).is_none());
    }

    #[test]
    fn needs_meta_ptr_matches_paper_rule() {
        let (mut prog, sol) = setup(
            "char **argv_like;\n\
             int *plain;\n\
             int f(int i, int j) { return argv_like[i][j] + *plain; }",
        );
        let mut st = SplitTypes::new(&prog.types, &sol);
        let t_argv = prog.globals[0].ty;
        let t_plain = prog.globals[1].ty;
        assert!(st.needs_meta_ptr(&mut prog.types, t_argv));
        assert!(!st.needs_meta_ptr(&mut prog.types, t_plain));
    }
}
