//! Function-level incremental recuring.
//!
//! A long-lived cure service (`ccured serve`) sees the same translation
//! unit over and over with small edits. Whole-unit caching (the batch
//! cache) only helps when the unit is byte-identical; this module caches
//! at *function* granularity instead, so touching one function re-runs
//! instrumentation and optimization for that function only, and splices
//! the cached renderings of every other function around it.
//!
//! What makes this sound:
//!
//! * Pointer-kind inference is whole-program, so the warm path always
//!   re-runs parse → lower → wrappers → infer → link audit. Only the
//!   *back half* of the pipeline — instrumentation and the check
//!   optimizer — is cached, and both are intraprocedural
//!   ([`crate::instrument::instrument_function`],
//!   [`ccured_analysis::optimize_function`]).
//! * A cache entry is keyed by a fingerprint of **everything the back
//!   half reads** for that function: the function's pre-instrumentation
//!   rendering, instruction spans (relative to the function start),
//!   every pointer qualifier's inferred kind collected positionally
//!   (ids shift across edits; positions do not), cast metadata, and the
//!   signatures of called/addressed functions. A separate *environment*
//!   fingerprint covers the whole-unit inputs (config, declarations,
//!   aggregate layouts, pragmas, the RTTI hierarchy, tracked globals);
//!   when it changes the whole cache is invalidated.
//! * [`ccured_cil::pretty::dump_program`] is defined as
//!   `dump_decls + Σ dump_function`, so splicing cached per-function
//!   renderings reproduces the cold rendering byte-for-byte; check
//!   counts and elision stats are per-function sums, and static-failure
//!   spans are cached relative to the function start and rebased on hit.
//!
//! The differential test in `tests/` asserts the end-to-end property:
//! a warm incremental cure is byte-identical (text and canonical
//! report) to a cold [`Curer::cure_source`] at any edit.

use crate::hierarchy::Hierarchy;
use crate::instrument::{instrument_function, CheckCounts};
use crate::pipeline::{
    declared_kind_counts, isolated, key_of_failure, sort_link_issues, CureError, CureReport, Curer,
    StageTimings,
};
use crate::wrappers::{apply_wrappers, check_link};
use ccured_analysis::{optimize_function, StaticFailure};
use ccured_cil::ir::{Callee, Check, Exp, FnRef, Function, Instr, Lval, Offset, Program, Stmt};
use ccured_cil::pretty::{dump_decls, dump_function};
use ccured_cil::types::{Type, TypeId};
use ccured_infer::{infer, Solution};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// FNV-1a 64-bit, the default content hash (same algorithm the batch
/// cache uses for unit keys; kept local so `ccured` does not depend on
/// the batch crate).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A static failure with its span stored relative to the owning
/// function's span start, so the cached entry survives the function
/// moving wholesale within the file (the common case: an edit above
/// it). [`ccured_ast::Span::DUMMY`] round-trips via `None` — rebasing
/// arithmetic must never manufacture a non-dummy span from a dummy one.
#[derive(Debug, Clone)]
struct RelFailure {
    check: &'static str,
    message: String,
    /// `(lo, hi)` relative to `Function::span.lo`; `None` for DUMMY.
    rel: Option<(u32, u32)>,
}

impl RelFailure {
    fn from_absolute(f: &StaticFailure, base: u32) -> RelFailure {
        RelFailure {
            check: f.check,
            message: f.message.clone(),
            rel: if f.span == ccured_ast::Span::DUMMY {
                None
            } else {
                (f.span.lo >= base && f.span.hi >= base)
                    .then(|| (f.span.lo - base, f.span.hi - base))
            },
        }
    }

    fn to_absolute(&self, func: &str, base: u32) -> StaticFailure {
        StaticFailure {
            func: func.to_string(),
            check: self.check,
            message: self.message.clone(),
            span: match self.rel {
                None => ccured_ast::Span::DUMMY,
                Some((lo, hi)) => ccured_ast::Span {
                    lo: base + lo,
                    hi: base + hi,
                },
            },
        }
    }
}

/// One cached back-half result: everything the report and the rendered
/// program need from instrumenting and optimizing a single function.
#[derive(Debug, Clone)]
struct FnEntry {
    /// `dump_function` of the instrumented, optimized function.
    text: String,
    /// Static check counts inserted into this function.
    counts: CheckCounts,
    /// Checks the optimizer deleted in this function.
    elided: ccured_analysis::ElisionStats,
    /// Check instructions hoisted / widened by the loop optimizer.
    hoisted: u64,
    widened: u64,
    /// Static always-fail diagnostics, spans relative to the function.
    failures: Vec<RelFailure>,
}

/// The per-function result cache behind [`Curer::cure_source_incremental`].
///
/// Owns nothing about *which* unit it serves: entries are keyed by
/// content fingerprints, and an environment fingerprint guards against
/// cross-configuration or cross-declaration reuse. One cache can serve
/// many units (the cure daemon keeps exactly one, shared across
/// requests under a mutex).
pub struct FnCache {
    entries: HashMap<u64, FnEntry>,
    hasher: fn(&[u8]) -> u64,
    env_fp: Option<u64>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Default for FnCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FnCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnCache")
            .field("entries", &self.entries.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("invalidations", &self.invalidations)
            .finish()
    }
}

impl FnCache {
    /// An empty cache using the built-in FNV-1a content hash.
    pub fn new() -> Self {
        Self::with_hasher(fnv1a)
    }

    /// An empty cache with a caller-supplied content hash (the daemon
    /// passes the batch crate's hash so both caches agree on keys'
    /// provenance in diagnostics).
    pub fn with_hasher(hasher: fn(&[u8]) -> u64) -> Self {
        FnCache {
            entries: HashMap::new(),
            hasher,
            env_fp: None,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Cached function entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime function-level hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime function-level misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Times the environment fingerprint changed and dropped all entries.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Drops every entry (the daemon's `reset` request).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.env_fp = None;
    }

    /// Ensures the cache is keyed under `env`; wipes it when the
    /// environment changed since the last cure.
    fn enter_env(&mut self, env: u64) {
        if self.env_fp != Some(env) {
            if self.env_fp.is_some() {
                self.invalidations += 1;
            }
            self.entries.clear();
            self.env_fp = Some(env);
        }
    }
}

/// Result of an incremental cure: the rendered program plus the same
/// report a cold cure produces (byte-identical canonical form), with
/// cache-effectiveness counters for this call.
#[derive(Debug, Clone)]
pub struct IncrementalCured {
    /// The rendered instrumented program — byte-identical to
    /// `dump_program` of the cold cure's program.
    pub text: String,
    /// The cure report — canonical form byte-identical to the cold one.
    pub report: CureReport,
    /// Functions whose back half was spliced from cache in this call.
    pub fn_hits: usize,
    /// Functions whose back half was recomputed in this call.
    pub fn_misses: usize,
    /// Stage timings for this call (the per-function loop is attributed
    /// to `instrument`; `optimize` is folded in and reported as zero).
    pub timings: StageTimings,
}

/// Collects the effective kind / RTTI / SPLIT triple of every pointer
/// qualifier reachable from `t`, in deterministic walk order. Kinds are
/// recorded *positionally* — qualifier ids shift when unrelated code is
/// edited, positions within one declared type do not.
fn push_type_quals(prog: &Program, sol: &Solution, t: TypeId, out: &mut String) {
    fn walk(prog: &Program, sol: &Solution, t: TypeId, out: &mut String, depth: usize) {
        if depth > 64 {
            return; // cyclic via comps; comp fields are fingerprinted in the env
        }
        match prog.types.get(t) {
            Type::Ptr(base, q) => {
                let _ = write!(
                    out,
                    "|{:?}{}{}",
                    sol.effective(*q),
                    if sol.is_rtti(*q) { "r" } else { "" },
                    if sol.is_split(*q) { "s" } else { "" }
                );
                walk(prog, sol, *base, out, depth + 1);
            }
            Type::Array(elem, _) => walk(prog, sol, *elem, out, depth + 1),
            Type::Func(sig) => {
                walk(prog, sol, sig.ret, out, depth + 1);
                for p in &sig.params {
                    walk(prog, sol, *p, out, depth + 1);
                }
            }
            Type::Void | Type::Int(_) | Type::Float(_) | Type::Comp(_) => {}
        }
    }
    walk(prog, sol, t, out, 0);
}

/// The whole-unit environment fingerprint: everything outside a single
/// function's body that instrumentation or optimization can read. Two
/// cures under equal environments may share per-function entries.
fn env_fingerprint(curer: &Curer, prog: &Program, sol: &Solution, hier: &Hierarchy) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "config {}", curer.config_fingerprint());
    let _ = writeln!(s, "version {}", env!("CARGO_PKG_VERSION"));
    s.push_str("decls\n");
    s.push_str(&dump_decls(prog));
    for g in &prog.globals {
        push_type_quals(prog, sol, g.ty, &mut s);
        let _ = write!(
            s,
            "|g{:?}{}",
            sol.effective(g.addr_qual),
            if sol.is_split(g.addr_qual) { "s" } else { "" }
        );
    }
    s.push('\n');
    for c in prog.types.comps() {
        let _ = write!(
            s,
            "comp {} u={} sz={} al={}",
            c.name, c.is_union, c.size, c.align
        );
        for f in &c.fields {
            let _ = write!(s, " {}@{}:{}", f.name, f.offset, prog.types.display(f.ty));
            push_type_quals(prog, sol, f.ty, &mut s);
            let _ = write!(s, "|f{:?}", sol.effective(f.addr_qual));
        }
        s.push('\n');
    }
    for e in &prog.externals {
        let _ = write!(s, "extern {}:{}", e.name, prog.types.display(e.ty));
        push_type_quals(prog, sol, e.ty, &mut s);
        s.push('\n');
    }
    let _ = writeln!(s, "pragmas {:?}", prog.pragmas);
    let _ = writeln!(s, "hierarchy {hier:?}");
    let mut tracked: Vec<u32> = ccured_analysis::tracked_globals(prog).into_iter().collect();
    tracked.sort_unstable();
    let _ = writeln!(s, "tracked {tracked:?}");
    s
}

/// Appends the fingerprint contributions of one expression tree:
/// qualifier kinds of every node's type, cast metadata, and the
/// signatures of referenced functions.
fn push_exp(prog: &Program, sol: &Solution, e: &Exp, out: &mut String) {
    push_type_quals(prog, sol, e.ty(), out);
    match e {
        Exp::Const(..) | Exp::FnAddr(FnRef::Ext(_), _) => {}
        Exp::FnAddr(FnRef::Def(fid), _) => {
            let callee = &prog.functions[fid.idx()];
            let _ = write!(out, "|fn&{}:{}", callee.name, prog.types.display(callee.ty));
            push_type_quals(prog, sol, callee.ty, out);
        }
        Exp::Load(lv, _) | Exp::AddrOf(lv, _) | Exp::StartOf(lv, _) => {
            push_lval(prog, sol, lv, out);
        }
        Exp::Unop(_, x, _) => push_exp(prog, sol, x, out),
        Exp::Binop(_, a, b, _) => {
            push_exp(prog, sol, a, out);
            push_exp(prog, sol, b, out);
        }
        Exp::Cast(id, x, _) => {
            let c = &prog.casts[id.idx()];
            let _ = write!(
                out,
                "|cast {}=>{} t={} a={} i={} z={}",
                prog.types.display(c.from),
                prog.types.display(c.to),
                c.trusted,
                c.alloc,
                c.implicit,
                c.from_zero
            );
            push_type_quals(prog, sol, c.from, out);
            push_type_quals(prog, sol, c.to, out);
            push_exp(prog, sol, x, out);
        }
        Exp::SizeOf(t, n, _) => {
            let _ = write!(out, "|sizeof {} {}", prog.types.display(*t), n);
        }
    }
}

fn push_lval(prog: &Program, sol: &Solution, lv: &Lval, out: &mut String) {
    match &lv.base {
        ccured_cil::ir::LvBase::Local(_) | ccured_cil::ir::LvBase::Global(_) => {}
        ccured_cil::ir::LvBase::Deref(e) => push_exp(prog, sol, e, out),
    }
    for off in &lv.offsets {
        if let Offset::Index(e) = off {
            push_exp(prog, sol, e, out);
        }
    }
}

fn push_instr(prog: &Program, sol: &Solution, i: &Instr, base: u32, out: &mut String) {
    let span = match i {
        Instr::Set(_, _, sp) | Instr::Call(_, _, _, sp) | Instr::Check(_, sp, _) => *sp,
    };
    // Relative instruction spans: static-failure diagnostics inherit
    // them, and the cached entry stores failures relative to the same
    // base — so span-only edits inside the function must miss.
    if span == ccured_ast::Span::DUMMY {
        out.push_str("|@dummy");
    } else if span.lo >= base {
        let _ = write!(
            out,
            "|@{}+{}",
            span.lo - base,
            span.hi.saturating_sub(span.lo)
        );
    } else {
        let _ = write!(out, "|@abs{}:{}", span.lo, span.hi);
    }
    match i {
        Instr::Set(lv, e, _) => {
            push_lval(prog, sol, lv, out);
            if let Some(t) = lval_ty(prog, lv) {
                push_type_quals(prog, sol, t, out);
            }
            push_exp(prog, sol, e, out);
        }
        Instr::Call(ret, callee, args, _) => {
            if let Some(lv) = ret {
                push_lval(prog, sol, lv, out);
                if let Some(t) = lval_ty(prog, lv) {
                    push_type_quals(prog, sol, t, out);
                }
            }
            match callee {
                Callee::Func(fid) => {
                    let f = &prog.functions[fid.idx()];
                    let _ = write!(out, "|call {}:{}", f.name, prog.types.display(f.ty));
                    push_type_quals(prog, sol, f.ty, out);
                }
                Callee::Extern(x) => {
                    let e = &prog.externals[x.idx()];
                    let _ = write!(out, "|xcall {}:{}", e.name, prog.types.display(e.ty));
                    push_type_quals(prog, sol, e.ty, out);
                }
                Callee::Ptr(e) => push_exp(prog, sol, e, out),
            }
            for a in args {
                push_exp(prog, sol, a, out);
            }
        }
        // Pre-instrumentation bodies contain no checks; synthetic IR
        // (tests) might — fingerprint the check's operand conservatively.
        Instr::Check(c, _, _) => {
            let _ = write!(out, "|chk {}", c.name());
            if let Check::Null { ptr }
            | Check::SeqBounds { ptr, .. }
            | Check::SeqToSafe { ptr, .. }
            | Check::WildBounds { ptr, .. }
            | Check::WildTag { ptr, .. } = c
            {
                push_exp(prog, sol, ptr, out);
            }
        }
    }
}

/// The declared type of an lvalue as the fingerprint needs it: the
/// *base* declared type. Local bases return `None` — every local's type
/// is already fingerprinted by the locals walk; offsets' field types
/// are covered by the env fingerprint, index expressions by
/// [`push_exp`].
fn lval_ty(prog: &Program, lv: &Lval) -> Option<TypeId> {
    match &lv.base {
        ccured_cil::ir::LvBase::Local(_) => None,
        ccured_cil::ir::LvBase::Global(g) => Some(prog.globals[g.idx()].ty),
        ccured_cil::ir::LvBase::Deref(e) => Some(e.ty()),
    }
}

fn push_stmts(prog: &Program, sol: &Solution, stmts: &[Stmt], base: u32, out: &mut String) {
    for s in stmts {
        match s {
            Stmt::Instr(is) => {
                for i in is {
                    push_instr(prog, sol, i, base, out);
                }
            }
            Stmt::If(c, t, e) => {
                push_exp(prog, sol, c, out);
                push_stmts(prog, sol, t, base, out);
                push_stmts(prog, sol, e, base, out);
            }
            Stmt::Loop(b) | Stmt::Block(b) => push_stmts(prog, sol, b, base, out),
            Stmt::Return(Some(e)) => push_exp(prog, sol, e, out),
            Stmt::Switch(e, arms) => {
                push_exp(prog, sol, e, out);
                for a in arms {
                    push_stmts(prog, sol, &a.body, base, out);
                }
            }
            Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Goto(_) | Stmt::Label(_) => {}
        }
    }
}

/// The per-function fingerprint: the function's pre-instrumentation
/// rendering plus every inferred fact its instrumentation and
/// optimization consult. Function name is part of the rendering, so two
/// same-bodied functions in one unit get distinct keys only through
/// their names — which is exactly the granularity the splice needs.
fn fn_fingerprint(curer: &Curer, prog: &Program, sol: &Solution, f: &Function) -> String {
    let mut s = dump_function(prog, f);
    let trusted = prog
        .pragmas
        .iter()
        .any(|p| matches!(p, ccured_cil::ir::CcuredPragma::TrustedFn(n) if n == &f.name));
    let _ = write!(
        s,
        "\n#trusted={trusted} opt={} loop={}",
        curer.optimize, curer.loop_opt
    );
    push_type_quals(prog, sol, f.ty, &mut s);
    for l in &f.locals {
        push_type_quals(prog, sol, l.ty, &mut s);
        let _ = write!(
            s,
            "|l{:?}{}",
            sol.effective(l.addr_qual),
            if sol.is_split(l.addr_qual) { "s" } else { "" }
        );
    }
    s.push('\n');
    push_stmts(prog, sol, &f.body, f.span.lo, &mut s);
    s
}

impl Curer {
    /// Cures a C source string with function-level incremental reuse.
    ///
    /// The front half of the pipeline (parse, lower, wrappers,
    /// whole-program inference, link audit) always runs — inference is
    /// whole-program and cannot be cached per function. The back half
    /// (instrumentation + check optimization) runs only for functions
    /// whose fingerprint misses `cache`; hits splice the cached
    /// rendering and counts. The result is byte-identical to a cold
    /// [`Curer::cure_source`]: same rendered text, same canonical
    /// report.
    ///
    /// # Errors
    ///
    /// Same as [`Curer::cure_source`], plus [`CureError::Timeout`] at
    /// function boundaries when a [`Curer::deadline`] is set.
    pub fn cure_source_incremental(
        &self,
        src: &str,
        cache: &mut FnCache,
    ) -> Result<IncrementalCured, CureError> {
        let start = Instant::now();
        let full = match &self.prelude {
            Some(p) => format!("{p}\n{src}"),
            None => src.to_string(),
        };
        let t = Instant::now();
        let tu = ccured_ast::parse_translation_unit(&full)?;
        let parse = t.elapsed();
        self.check_deadline(start, "parse")?;
        let t = Instant::now();
        let mut prog = ccured_cil::lower_translation_unit(&tu)?;
        let lower = t.elapsed();
        self.check_deadline(start, "lower")?;

        let t = Instant::now();
        let mut wrappers_applied = apply_wrappers(&mut prog);
        let result = infer(&prog, &self.options);
        let meta = ccured_infer::split::compute_meta_types(&prog, &result.solution);
        let mut link_issues = check_link(&prog, &result.solution, &meta);
        sort_link_issues(&mut link_issues);
        if self.strict_link && !link_issues.is_empty() {
            return Err(CureError::Link(link_issues));
        }
        let infer_time = t.elapsed();
        self.check_deadline(start, "infer")?;

        let t = Instant::now();
        let hierarchy = Hierarchy::build(&prog);
        let sol = &result.solution;
        cache.enter_env((cache.hasher)(
            env_fingerprint(self, &prog, sol, &hierarchy).as_bytes(),
        ));

        // Whole-program inputs of the per-function back half, identical
        // pre/post instrumentation (checks only clone existing exprs).
        let tracked = ccured_analysis::tracked_globals(&prog);
        let kind_counts = declared_kind_counts(&prog, sol);
        let trusted_casts = prog.casts.iter().filter(|c| c.trusted).count();

        let mut text = dump_decls(&prog);
        let mut checks_inserted = CheckCounts::default();
        let mut elided = ccured_analysis::ElisionStats::default();
        let mut hoisted = 0u64;
        let mut widened = 0u64;
        let mut static_failures: Vec<StaticFailure> = Vec::new();
        let (mut fn_hits, mut fn_misses) = (0usize, 0usize);

        for fi in 0..prog.functions.len() {
            self.check_deadline(start, "incremental")?;
            let key = {
                let f = &prog.functions[fi];
                (cache.hasher)(fn_fingerprint(self, &prog, sol, f).as_bytes())
            };
            let (fname, span_lo) = {
                let f = &prog.functions[fi];
                (f.name.clone(), f.span.lo)
            };
            if cache.entries.contains_key(&key) {
                fn_hits += 1;
                cache.hits += 1;
            } else {
                fn_misses += 1;
                cache.misses += 1;
                let counts = instrument_function(&mut prog, fi, sol, &hierarchy, self.temporal);
                let opt = if self.optimize {
                    optimize_function(&mut prog, fi, &tracked, self.loop_opt)
                } else {
                    ccured_analysis::OptResult::default()
                };
                let rendered = dump_function(&prog, &prog.functions[fi]);
                cache.entries.insert(
                    key,
                    FnEntry {
                        text: rendered,
                        counts,
                        elided: opt.elision.stats,
                        hoisted: opt.hoisted,
                        widened: opt.widened,
                        failures: opt
                            .elision
                            .failures
                            .iter()
                            .map(|f| RelFailure::from_absolute(f, span_lo))
                            .collect(),
                    },
                );
            }
            let entry = &cache.entries[&key];
            text.push_str(&entry.text);
            checks_inserted.add(&entry.counts);
            elided.add(&entry.elided);
            hoisted += entry.hoisted;
            widened += entry.widened;
            static_failures.extend(
                entry
                    .failures
                    .iter()
                    .map(|f| f.to_absolute(&fname, span_lo)),
            );
        }
        let back_half = t.elapsed();

        // Identical canonical ordering to the cold path.
        static_failures.sort_by(|a, b| key_of_failure(a).cmp(&key_of_failure(b)));
        wrappers_applied.sort();
        let mut annotation_violations = result.annotation_violations;
        annotation_violations.sort_by_key(|v| v.qual.0);

        let report = CureReport {
            kind_counts,
            census: result.census,
            checks_inserted,
            checks_elided: elided,
            checks_hoisted: hoisted,
            checks_widened: widened,
            static_failures,
            wrappers_applied,
            trusted_casts,
            split_quals: sol.split_count(),
            annotation_violations,
            link_issues,
            solver_iterations: result.iterations,
        };

        Ok(IncrementalCured {
            text,
            report,
            fn_hits,
            fn_misses,
            timings: StageTimings {
                parse,
                lower,
                infer: infer_time,
                instrument: back_half,
                optimize: std::time::Duration::ZERO,
            },
        })
    }
}

/// [`Curer::cure_source_incremental`] with panic isolation, mirroring
/// what the daemon's workers run per request.
pub fn cure_source_incremental_isolated(
    curer: &Curer,
    src: &str,
    cache: &mut FnCache,
) -> Result<IncrementalCured, CureError> {
    isolated(move || curer.cure_source_incremental(src, cache))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccured_cil::pretty::dump_program;

    fn demo_source(body_mark: &str) -> String {
        format!(
            "int g = 7;\n\
             int sum(int *a, int n) {{ int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; }}\n\
             int scale(int *a, int n, int k) {{ for (int i = 0; i < n; i++) a[i] = a[i] * k {body_mark}; return 0; }}\n\
             int main(void) {{ int buf[4]; buf[0] = 1; return sum(buf, 4) + scale(buf, 4, 2); }}\n"
        )
    }

    #[test]
    fn warm_recure_is_byte_identical_to_cold() {
        let curer = Curer::new();
        let mut cache = FnCache::new();
        let v1 = demo_source("+ 0");
        let v2 = demo_source("+ 1");

        let warm0 = curer.cure_source_incremental(&v1, &mut cache).unwrap();
        assert_eq!(warm0.fn_hits, 0);
        let warm = curer.cure_source_incremental(&v2, &mut cache).unwrap();
        let cold = curer.cure_source(&v2).unwrap();
        assert_eq!(warm.text, dump_program(&cold.program));
        assert_eq!(warm.report.canonical(), cold.report.canonical());
        // Only the edited function (and none other) re-cured.
        assert_eq!(warm.fn_misses, 1, "exactly the edited function misses");
        assert_eq!(warm.fn_hits, 2);
    }

    #[test]
    fn identical_source_is_a_full_function_hit() {
        let curer = Curer::new();
        let mut cache = FnCache::new();
        let src = demo_source("+ 0");
        curer.cure_source_incremental(&src, &mut cache).unwrap();
        let again = curer.cure_source_incremental(&src, &mut cache).unwrap();
        assert_eq!(again.fn_misses, 0);
        assert_eq!(again.fn_hits, 3);
    }

    #[test]
    fn config_change_invalidates_the_cache() {
        let mut curer = Curer::new();
        let mut cache = FnCache::new();
        let src = demo_source("+ 0");
        curer.cure_source_incremental(&src, &mut cache).unwrap();
        curer.loop_optimize(false);
        let warm = curer.cure_source_incremental(&src, &mut cache).unwrap();
        assert_eq!(warm.fn_hits, 0, "changed config must not reuse entries");
        assert_eq!(cache.invalidations(), 1);
        let cold = Curer::new().loop_optimize(false).cure_source(&src).unwrap();
        assert_eq!(warm.text, dump_program(&cold.program));
        assert_eq!(warm.report.canonical(), cold.report.canonical());
    }

    #[test]
    fn static_failure_spans_rebase_across_moves() {
        let curer = Curer::new();
        let mut cache = FnCache::new();
        // `bad` indexes out of bounds statically; shifting it down the
        // file must keep its diagnostic span pointing at the new site.
        let v1 = "int bad(void) { int a[2]; return a[5]; }\n".to_string();
        let v2 = format!("int pad(void) {{ return 42; }}\n{v1}");
        let w1 = curer.cure_source_incremental(&v1, &mut cache).unwrap();
        assert!(!w1.report.static_failures.is_empty());
        let w2 = curer.cure_source_incremental(&v2, &mut cache).unwrap();
        let cold = curer.cure_source(&v2).unwrap();
        assert_eq!(w2.report.canonical(), cold.report.canonical());
    }
}
