//! # ccured
//!
//! The CCured pipeline: a memory-safety transformation system for C
//! programs, reproducing *CCured in the Real World* (PLDI 2003).
//!
//! Given C source in the supported subset, [`Curer`] runs:
//!
//! 1. parse and lower to the CIL-like IR (`ccured-ast`, `ccured-cil`),
//! 2. whole-program pointer-kind inference with physical subtyping, RTTI
//!    and SPLIT representation inference (`ccured-infer`),
//! 3. wrapper application for external library functions (Section 4.1),
//! 4. construction of the global physical-subtype hierarchy used by RTTI
//!    checks (Section 3.2),
//! 5. instrumentation with run-time checks (Figures 10–11),
//! 6. redundant-check elimination (`ccured-analysis`): dataflow facts
//!    delete checks an earlier check already proved,
//! 7. a link audit that flags incompatible external calls (Section 4).
//!
//! The result is a [`Cured`] program that `ccured-rt` can execute with full
//! memory-safety guarantees.
//!
//! # Examples
//!
//! ```
//! use ccured::Curer;
//!
//! let cured = Curer::new()
//!     .cure_source("int sum(int *a, int n) { int s = 0; for (int i = 0; i < n; i++) s += a[i]; return s; }")
//!     .unwrap();
//! assert!(cured.report.checks_inserted.total() > 0);
//! ```

pub mod hierarchy;
pub mod incr;
pub mod instrument;
pub mod pipeline;
pub mod split;
pub mod wrappers;

pub use hierarchy::Hierarchy;
pub use incr::{cure_source_incremental_isolated, FnCache, IncrementalCured};
pub use pipeline::{isolated, CureError, CureReport, Cured, Curer, Engine, StageTimings};
// Re-exported so downstream users of the report types need not name the
// analysis crate directly.
pub use ccured_analysis::{ElisionStats, StaticFailure};
