//! The byte-accurate memory model (a miniature Miri).
//!
//! Memory is a set of allocations; a [`Pointer`] is an allocation id plus a
//! byte offset (which may stray out of bounds until dereferenced — C pointer
//! arithmetic semantics). Each allocation tracks:
//!
//! * raw bytes,
//! * an initialization mask (ground truth for uninitialized reads),
//! * a provenance map recording which offsets hold stored pointer values —
//!   this doubles as the WILD **tag bitmap** of paper Figure 10: the tag of
//!   a word is set iff a provenance entry exists at that offset,
//! * liveness (frees and returned stack frames are detected as ground-truth
//!   errors).
//!
//! Pointer↔integer round trips use stable *virtual addresses*
//! (`(alloc+1) << 32 | offset`).

use crate::err::RtError;
use crate::value::PtrVal;
use std::cell::Cell;
use std::collections::HashMap;

/// Identifier of one allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocId(pub u32);

/// A memory address: allocation plus byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pointer {
    /// The allocation.
    pub alloc: AllocId,
    /// Byte offset; may be temporarily out of bounds.
    pub offset: i64,
}

impl Pointer {
    /// Returns this pointer moved by `delta` bytes.
    pub fn offset_by(self, delta: i64) -> Pointer {
        Pointer {
            alloc: self.alloc,
            offset: self.offset.wrapping_add(delta),
        }
    }
}

/// Where an allocation lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// Heap (malloc family).
    Heap,
    /// Stack, tagged with its frame's sequence number.
    Stack {
        /// Frame sequence number (monotonic per call).
        frame: u64,
    },
    /// A global or string literal.
    Global,
}

/// One allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    bytes: Vec<u8>,
    init: Vec<bool>,
    prov: HashMap<u64, PtrVal>,
    /// Placement of the allocation.
    pub kind: AllocKind,
    /// False after free / frame return.
    pub live: bool,
    /// Temporal capability key (the lock of the lock-and-key scheme):
    /// a monotonic generation stamped at allocation, zeroed when the
    /// allocation's lifetime ends (free, frame return). A pointer's key
    /// matches iff this is still the generation it was stamped with.
    key: u64,
}

impl Allocation {
    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Number of provenance (pointer/tag) entries.
    pub fn prov_count(&self) -> usize {
        self.prov.len()
    }

    /// The allocation's current capability key (0 after revocation).
    pub fn key(&self) -> u64 {
        self.key
    }
}

/// The whole memory.
#[derive(Debug)]
pub struct Memory {
    allocs: Vec<Allocation>,
    /// Total bytes currently live (heap accounting for reports).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` over the run.
    pub peak_live_bytes: u64,
    /// Sandbox cap on total live bytes (see [`crate::Limits`]).
    heap_limit: u64,
    /// Live stack allocations as `(frame seq, id)`, in allocation order.
    /// Frames die LIFO and only the innermost frame allocates, so a frame's
    /// entries are always a suffix — `kill_frame` pops them off the tail
    /// instead of scanning every allocation ever made.
    stack_index: Vec<(u64, AllocId)>,
    /// Monotonic generation counter for temporal capability keys.
    next_key: u64,
    /// Ground-truth machine traps on dead memory (use-after-free /
    /// use-after-return). The temporal experiments assert this stays zero:
    /// an emitted `CHECK_TEMPORAL` must fire *before* the abstract machine
    /// would have trapped. A `Cell` because the read path is `&self`.
    uaf_traps: Cell<u64>,
}

impl Default for Memory {
    fn default() -> Self {
        Memory {
            allocs: Vec::new(),
            live_bytes: 0,
            peak_live_bytes: 0,
            heap_limit: u64::MAX,
            stack_index: Vec::new(),
            next_key: 1,
            uaf_traps: Cell::new(0),
        }
    }
}

/// Maximum size of one allocation (runaway guard).
const MAX_ALLOC: u64 = 1 << 30;

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Caps the total live bytes; further allocations past the cap fail
    /// gracefully with `RtError::LimitExceeded { limit: "heap_limit" }`.
    pub fn set_heap_limit(&mut self, bytes: u64) {
        self.heap_limit = bytes;
    }

    /// Allocates `size` zero-filled-but-uninitialized bytes.
    ///
    /// # Errors
    ///
    /// Fails with [`RtError::Unsupported`] for absurd sizes and with
    /// [`RtError::LimitExceeded`] when the sandbox heap cap would be passed.
    pub fn alloc(&mut self, size: u64, kind: AllocKind) -> Result<AllocId, RtError> {
        if size > MAX_ALLOC {
            return Err(RtError::Unsupported(format!("allocation of {size} bytes")));
        }
        if self.live_bytes.saturating_add(size) > self.heap_limit {
            return Err(RtError::LimitExceeded {
                limit: "heap_limit",
                detail: format!(
                    "allocation of {size} bytes would exceed the {}-byte heap cap \
                     ({} bytes live)",
                    self.heap_limit, self.live_bytes
                ),
            });
        }
        let id = AllocId(self.allocs.len() as u32);
        let key = self.next_key;
        self.next_key += 1;
        self.allocs.push(Allocation {
            bytes: vec![0; size as usize],
            init: vec![false; size as usize],
            prov: HashMap::new(),
            kind,
            live: true,
            key,
        });
        if let AllocKind::Stack { frame } = kind {
            self.stack_index.push((frame, id));
        }
        self.live_bytes += size;
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        Ok(id)
    }

    /// Marks every byte initialized (calloc, library-produced data).
    pub fn mark_init(&mut self, id: AllocId) {
        for b in &mut self.allocs[id.0 as usize].init {
            *b = true;
        }
    }

    /// The allocation behind an id.
    pub fn allocation(&self, id: AllocId) -> &Allocation {
        &self.allocs[id.0 as usize]
    }

    /// Number of allocations ever made.
    pub fn alloc_count(&self) -> usize {
        self.allocs.len()
    }

    /// Frees a heap allocation.
    ///
    /// # Errors
    ///
    /// [`RtError::FreeOfNonHeap`] when freeing stack or global memory;
    /// [`RtError::DoubleFree`] when the allocation was already freed.
    pub fn free(&mut self, id: AllocId) -> Result<(), RtError> {
        let a = &mut self.allocs[id.0 as usize];
        if !matches!(a.kind, AllocKind::Heap) {
            return Err(RtError::FreeOfNonHeap);
        }
        if !a.live {
            return Err(RtError::DoubleFree);
        }
        a.live = false;
        a.key = 0;
        self.live_bytes = self.live_bytes.saturating_sub(a.size());
        Ok(())
    }

    /// Revokes a heap allocation's temporal capability key without freeing
    /// the bytes — `free` under `--temporal` with GC semantics. The memory
    /// stays live for the abstract machine (it never traps), but every
    /// later lock-and-key comparison on a pointer into it fails.
    ///
    /// # Errors
    ///
    /// [`RtError::FreeOfNonHeap`] for stack/global memory;
    /// [`RtError::DoubleFree`] when the key was already revoked.
    pub fn temporal_revoke(&mut self, id: AllocId) -> Result<(), RtError> {
        let a = self
            .allocs
            .get_mut(id.0 as usize)
            .ok_or_else(|| RtError::InvalidPointer("dangling allocation id".into()))?;
        if !matches!(a.kind, AllocKind::Heap) {
            return Err(RtError::FreeOfNonHeap);
        }
        if a.key == 0 || !a.live {
            return Err(RtError::DoubleFree);
        }
        a.key = 0;
        Ok(())
    }

    /// Whether the allocation's capability key is still valid: stamped at
    /// allocation and not yet revoked by `free`/`temporal_revoke` or frame
    /// death. Allocation ids are never reused, so validity is exactly
    /// "the key generation stamped into the pointer still unlocks it".
    pub fn temporal_valid(&self, id: AllocId) -> bool {
        self.allocs
            .get(id.0 as usize)
            .is_some_and(|a| a.live && a.key != 0)
    }

    /// Machine traps on dead memory so far (see `uaf_traps` field docs).
    pub fn uaf_traps(&self) -> u64 {
        self.uaf_traps.get()
    }

    /// Kills every stack allocation belonging to `frame` (function return).
    pub fn kill_frame(&mut self, frame: u64) {
        while let Some(&(fr, id)) = self.stack_index.last() {
            if fr != frame {
                break;
            }
            self.stack_index.pop();
            let a = &mut self.allocs[id.0 as usize];
            if a.live {
                a.live = false;
                a.key = 0;
                self.live_bytes = self.live_bytes.saturating_sub(a.size());
            }
        }
        debug_assert!(
            self.stack_index.iter().all(|&(fr, _)| fr != frame),
            "stack allocations for frame {frame} were not a tail suffix"
        );
    }

    /// Validates an access of `size` bytes at `p`.
    #[inline]
    fn check_access(&self, p: Pointer, size: u64) -> Result<&Allocation, RtError> {
        let a = self
            .allocs
            .get(p.alloc.0 as usize)
            .ok_or_else(|| RtError::InvalidPointer("dangling allocation id".into()))?;
        if !a.live {
            self.uaf_traps.set(self.uaf_traps.get() + 1);
            return Err(match a.kind {
                AllocKind::Heap => RtError::UseAfterFree,
                AllocKind::Stack { .. } => RtError::UseAfterReturn,
                AllocKind::Global => RtError::InvalidPointer("dead global".into()),
            });
        }
        if p.offset < 0 || (p.offset as u64).saturating_add(size) > a.size() {
            return Err(RtError::OutOfBounds {
                offset: p.offset,
                size,
                alloc_size: a.size(),
            });
        }
        Ok(a)
    }

    #[inline]
    fn check_access_mut(&mut self, p: Pointer, size: u64) -> Result<&mut Allocation, RtError> {
        self.check_access(p, size)?;
        Ok(&mut self.allocs[p.alloc.0 as usize])
    }

    /// Reads an integer of `size` bytes (little-endian), sign-extending when
    /// `signed`.
    ///
    /// # Errors
    ///
    /// Bounds/liveness errors, or [`RtError::UninitRead`].
    #[inline]
    pub fn read_int(&self, p: Pointer, size: u64, signed: bool) -> Result<i128, RtError> {
        let a = self.check_access(p, size)?;
        let off = p.offset as usize;
        let n = size as usize;
        if !a.init[off..off + n].iter().all(|&b| b) {
            return Err(RtError::UninitRead);
        }
        let mut buf = [0u8; 16];
        buf[..n].copy_from_slice(&a.bytes[off..off + n]);
        let raw = u128::from_le_bytes(buf);
        let v = if signed {
            let shift = 128 - size * 8;
            ((raw << shift) as i128) >> shift
        } else {
            raw as i128
        };
        Ok(v)
    }

    /// Writes an integer of `size` bytes, truncating; invalidates any
    /// overlapping pointer provenance (the WILD tag-clearing rule).
    ///
    /// # Errors
    ///
    /// Bounds/liveness errors.
    #[inline]
    pub fn write_int(&mut self, p: Pointer, size: u64, v: i128) -> Result<(), RtError> {
        let a = self.check_access_mut(p, size)?;
        let off = p.offset as usize;
        let n = size as usize;
        let raw = (v as u128).to_le_bytes();
        a.bytes[off..off + n].copy_from_slice(&raw[..n]);
        a.init[off..off + n].fill(true);
        if !a.prov.is_empty() {
            clear_prov_overlap(&mut a.prov, p.offset as u64, size);
        }
        Ok(())
    }

    /// Reads a float of `size` (4 or 8) bytes.
    ///
    /// # Errors
    ///
    /// Bounds/liveness errors, or [`RtError::UninitRead`].
    pub fn read_float(&self, p: Pointer, size: u64) -> Result<f64, RtError> {
        let raw = self.read_int(p, size, false)? as u128;
        Ok(match size {
            4 => f32::from_bits(raw as u32) as f64,
            _ => f64::from_bits(raw as u64),
        })
    }

    /// Writes a float of `size` (4 or 8) bytes.
    ///
    /// # Errors
    ///
    /// Bounds/liveness errors.
    pub fn write_float(&mut self, p: Pointer, size: u64, v: f64) -> Result<(), RtError> {
        let raw: u128 = match size {
            4 => (v as f32).to_bits() as u128,
            _ => v.to_bits() as u128,
        };
        self.write_int(p, size, raw as i128)
    }

    /// Reads a pointer-sized slot: a provenance hit yields the stored
    /// pointer; zero bytes yield null; other initialized bytes yield a
    /// disguised integer.
    ///
    /// # Errors
    ///
    /// Bounds/liveness errors, or [`RtError::UninitRead`].
    pub fn read_ptr(&self, p: Pointer, ptr_bytes: u64) -> Result<PtrVal, RtError> {
        let a = self.check_access(p, ptr_bytes)?;
        if let Some(v) = a.prov.get(&(p.offset as u64)) {
            return Ok(*v);
        }
        let raw = self.read_int(p, ptr_bytes, false)? as u64;
        if raw == 0 {
            Ok(PtrVal::Null)
        } else {
            Ok(PtrVal::IntVal(raw))
        }
    }

    /// Whether the slot at `p` currently holds a tagged pointer (the WILD
    /// tag check of Figure 10).
    pub fn has_ptr_tag(&self, p: Pointer) -> bool {
        self.allocs
            .get(p.alloc.0 as usize)
            .is_some_and(|a| a.prov.contains_key(&(p.offset as u64)))
    }

    /// Writes a pointer value: raw virtual-address bytes plus a provenance
    /// (tag) entry.
    ///
    /// # Errors
    ///
    /// Bounds/liveness errors.
    pub fn write_ptr(&mut self, p: Pointer, v: PtrVal, ptr_bytes: u64) -> Result<(), RtError> {
        let va = self.va_of(&v);
        self.write_int(p, ptr_bytes, va as i128)?;
        let a = &mut self.allocs[p.alloc.0 as usize];
        if !matches!(v, PtrVal::Null | PtrVal::IntVal(_)) {
            a.prov.insert(p.offset as u64, v);
        }
        Ok(())
    }

    /// Copies `size` bytes from `src` to `dst`, preserving initialization
    /// masks and pointer provenance (typed struct assignment).
    ///
    /// # Errors
    ///
    /// Bounds/liveness errors on either side.
    pub fn copy_region(&mut self, dst: Pointer, src: Pointer, size: u64) -> Result<(), RtError> {
        // Snapshot the source region first (allows overlapping copies).
        let (bytes, init, prov) = {
            let a = self.check_access(src, size)?;
            let off = src.offset as usize;
            let bytes = a.bytes[off..off + size as usize].to_vec();
            let init = a.init[off..off + size as usize].to_vec();
            let prov: Vec<(u64, PtrVal)> = a
                .prov
                .iter()
                .filter(|(o, _)| **o >= src.offset as u64 && **o < src.offset as u64 + size)
                .map(|(o, v)| (o - src.offset as u64, *v))
                .collect();
            (bytes, init, prov)
        };
        let a = self.check_access_mut(dst, size)?;
        let off = dst.offset as usize;
        a.bytes[off..off + size as usize].copy_from_slice(&bytes);
        a.init[off..off + size as usize].copy_from_slice(&init);
        clear_prov_overlap(&mut a.prov, dst.offset as u64, size);
        for (o, v) in prov {
            a.prov.insert(dst.offset as u64 + o, v);
        }
        Ok(())
    }

    /// Reads raw bytes (library builtins). Does **not** require
    /// initialization (libc routines may copy uninitialized padding).
    ///
    /// # Errors
    ///
    /// Bounds/liveness errors.
    pub fn read_bytes(&self, p: Pointer, size: u64) -> Result<&[u8], RtError> {
        let a = self.check_access(p, size)?;
        let off = p.offset as usize;
        Ok(&a.bytes[off..off + size as usize])
    }

    /// Writes raw bytes (library builtins), marking them initialized.
    ///
    /// # Errors
    ///
    /// Bounds/liveness errors.
    pub fn write_bytes(&mut self, p: Pointer, data: &[u8]) -> Result<(), RtError> {
        let a = self.check_access_mut(p, data.len() as u64)?;
        let off = p.offset as usize;
        a.bytes[off..off + data.len()].copy_from_slice(data);
        for b in &mut a.init[off..off + data.len()] {
            *b = true;
        }
        clear_prov_overlap(&mut a.prov, p.offset as u64, data.len() as u64);
        Ok(())
    }

    /// Reads a NUL-terminated C string starting at `p`.
    ///
    /// # Errors
    ///
    /// [`RtError::OutOfBounds`] if no NUL occurs within the allocation.
    pub fn read_c_string(&self, p: Pointer) -> Result<Vec<u8>, RtError> {
        let a = self.check_access(p, 0)?;
        let mut out = Vec::new();
        let mut off = p.offset as u64;
        loop {
            if off >= a.size() {
                return Err(RtError::OutOfBounds {
                    offset: off as i64,
                    size: 1,
                    alloc_size: a.size(),
                });
            }
            let b = a.bytes[off as usize];
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            off += 1;
        }
    }

    /// The stable virtual address of a pointer value.
    pub fn va_of(&self, v: &PtrVal) -> u64 {
        match v {
            PtrVal::Null => 0,
            PtrVal::IntVal(x) => *x,
            PtrVal::Fn(ccured_cil::ir::FnRef::Def(f)) => 0xF000_0000_0000_0000 | f.0 as u64,
            PtrVal::Fn(ccured_cil::ir::FnRef::Ext(x)) => 0xF100_0000_0000_0000 | x.0 as u64,
            PtrVal::Safe(p)
            | PtrVal::Seq { p, .. }
            | PtrVal::Wild { p, .. }
            | PtrVal::Rtti { p, .. } => {
                ((p.alloc.0 as u64 + 1) << 32).wrapping_add(p.offset as u64 & 0xffff_ffff)
            }
        }
    }

    /// Resolves a virtual address back to a pointer, if it names a live
    /// allocation (used by the Jones–Kelly baseline's object registry).
    pub fn ptr_of_va(&self, va: u64) -> Option<Pointer> {
        let alloc = (va >> 32).checked_sub(1)? as usize;
        if alloc >= self.allocs.len() {
            return None;
        }
        Some(Pointer {
            alloc: AllocId(alloc as u32),
            offset: (va & 0xffff_ffff) as i64,
        })
    }
}

fn clear_prov_overlap(prov: &mut HashMap<u64, PtrVal>, off: u64, size: u64) {
    // Pointers occupy 8 bytes; remove any entry overlapping [off, off+size).
    prov.retain(|&o, _| o.saturating_add(8) <= off || o >= off + size);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new()
    }

    #[test]
    fn alloc_read_write_int() {
        let mut m = mem();
        let a = m.alloc(16, AllocKind::Heap).unwrap();
        let p = Pointer {
            alloc: a,
            offset: 4,
        };
        m.write_int(p, 4, -7).unwrap();
        assert_eq!(m.read_int(p, 4, true).unwrap(), -7);
        assert_eq!(m.read_int(p, 4, false).unwrap(), 0xffff_fff9);
    }

    #[test]
    fn uninit_read_is_detected() {
        let mut m = mem();
        let a = m.alloc(8, AllocKind::Heap).unwrap();
        let p = Pointer {
            alloc: a,
            offset: 0,
        };
        assert_eq!(m.read_int(p, 4, true), Err(RtError::UninitRead));
        m.write_int(p, 2, 1).unwrap();
        // Partially initialized word still errors.
        assert_eq!(m.read_int(p, 4, true), Err(RtError::UninitRead));
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut m = mem();
        let a = m.alloc(8, AllocKind::Heap).unwrap();
        let p = Pointer {
            alloc: a,
            offset: 6,
        };
        assert!(matches!(
            m.write_int(p, 4, 0),
            Err(RtError::OutOfBounds { .. })
        ));
        let neg = Pointer {
            alloc: a,
            offset: -1,
        };
        assert!(matches!(
            m.read_int(neg, 1, false),
            Err(RtError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn use_after_free_detected() {
        let mut m = mem();
        let a = m.alloc(8, AllocKind::Heap).unwrap();
        let p = Pointer {
            alloc: a,
            offset: 0,
        };
        m.write_int(p, 4, 1).unwrap();
        assert_eq!(m.uaf_traps(), 0);
        m.free(a).unwrap();
        assert_eq!(m.read_int(p, 4, true), Err(RtError::UseAfterFree));
        assert_eq!(m.uaf_traps(), 1);
        assert_eq!(m.free(a), Err(RtError::DoubleFree));
    }

    #[test]
    fn free_error_taxonomy_is_precise() {
        // Each free-path failure has its own variant with its own message:
        // double free is not "use after free", free of stack/global memory
        // is not a generic invalid pointer.
        let mut m = mem();
        let h = m.alloc(8, AllocKind::Heap).unwrap();
        m.free(h).unwrap();
        let double = m.free(h).unwrap_err();
        assert_eq!(double, RtError::DoubleFree);
        assert_eq!(double.to_string(), "double free of heap allocation");
        assert!(double.is_memory_error());

        let s = m.alloc(8, AllocKind::Stack { frame: 1 }).unwrap();
        let g = m.alloc(8, AllocKind::Global).unwrap();
        for id in [s, g] {
            let bad = m.free(id).unwrap_err();
            assert_eq!(bad, RtError::FreeOfNonHeap);
            assert_eq!(bad.to_string(), "free of non-heap memory");
            assert!(bad.is_memory_error());
        }
        // Non-heap placement wins over liveness: freeing a dead stack slot
        // still reports FreeOfNonHeap, not DoubleFree.
        m.kill_frame(1);
        assert_eq!(m.free(s), Err(RtError::FreeOfNonHeap));
    }

    #[test]
    fn temporal_keys_stamp_and_revoke() {
        let mut m = mem();
        let a = m.alloc(8, AllocKind::Heap).unwrap();
        let b = m.alloc(8, AllocKind::Heap).unwrap();
        // Keys are distinct monotonic generations.
        let (ka, kb) = (m.allocation(a).key(), m.allocation(b).key());
        assert!(ka != 0 && kb != 0 && ka != kb);
        assert!(m.temporal_valid(a) && m.temporal_valid(b));
        // Revocation keeps the bytes live (GC semantics) but kills the key.
        let p = Pointer {
            alloc: a,
            offset: 0,
        };
        m.write_int(p, 4, 7).unwrap();
        m.temporal_revoke(a).unwrap();
        assert!(!m.temporal_valid(a));
        assert_eq!(m.allocation(a).key(), 0);
        assert!(m.allocation(a).live, "temporal revoke must not free bytes");
        assert_eq!(m.read_int(p, 4, true).unwrap(), 7);
        assert_eq!(m.uaf_traps(), 0, "the machine never trapped");
        // Second revocation is a double free; non-heap is rejected.
        assert_eq!(m.temporal_revoke(a), Err(RtError::DoubleFree));
        let s = m.alloc(4, AllocKind::Stack { frame: 2 }).unwrap();
        assert_eq!(m.temporal_revoke(s), Err(RtError::FreeOfNonHeap));
        // Frame death revokes the keys of its stack allocations.
        assert!(m.temporal_valid(s));
        m.kill_frame(2);
        assert!(!m.temporal_valid(s));
    }

    #[test]
    fn use_after_return_detected() {
        let mut m = mem();
        let a = m.alloc(8, AllocKind::Stack { frame: 3 }).unwrap();
        let p = Pointer {
            alloc: a,
            offset: 0,
        };
        m.write_int(p, 4, 1).unwrap();
        m.kill_frame(3);
        assert_eq!(m.read_int(p, 4, true), Err(RtError::UseAfterReturn));
    }

    #[test]
    fn pointer_roundtrip_with_provenance() {
        let mut m = mem();
        let a = m.alloc(16, AllocKind::Heap).unwrap();
        let b = m.alloc(8, AllocKind::Heap).unwrap();
        let slot = Pointer {
            alloc: a,
            offset: 8,
        };
        let target = PtrVal::Safe(Pointer {
            alloc: b,
            offset: 4,
        });
        m.write_ptr(slot, target, 8).unwrap();
        assert_eq!(m.read_ptr(slot, 8).unwrap(), target);
        assert!(m.has_ptr_tag(slot));
    }

    #[test]
    fn overwriting_pointer_with_int_clears_tag() {
        let mut m = mem();
        let a = m.alloc(16, AllocKind::Heap).unwrap();
        let b = m.alloc(8, AllocKind::Heap).unwrap();
        let slot = Pointer {
            alloc: a,
            offset: 0,
        };
        m.write_ptr(
            slot,
            PtrVal::Safe(Pointer {
                alloc: b,
                offset: 0,
            }),
            8,
        )
        .unwrap();
        assert!(m.has_ptr_tag(slot));
        // Clobber one byte in the middle: the tag must clear.
        m.write_int(
            Pointer {
                alloc: a,
                offset: 4,
            },
            1,
            0xAA,
        )
        .unwrap();
        assert!(!m.has_ptr_tag(slot));
        // Reading the slot now yields a disguised integer, not a pointer.
        assert!(matches!(m.read_ptr(slot, 8).unwrap(), PtrVal::IntVal(_)));
    }

    #[test]
    fn null_reads_as_null() {
        let mut m = mem();
        let a = m.alloc(8, AllocKind::Heap).unwrap();
        let slot = Pointer {
            alloc: a,
            offset: 0,
        };
        m.write_int(slot, 8, 0).unwrap();
        assert_eq!(m.read_ptr(slot, 8).unwrap(), PtrVal::Null);
    }

    #[test]
    fn copy_region_preserves_provenance_and_init() {
        let mut m = mem();
        let a = m.alloc(32, AllocKind::Heap).unwrap();
        let b = m.alloc(8, AllocKind::Heap).unwrap();
        let src = Pointer {
            alloc: a,
            offset: 0,
        };
        m.write_int(src, 4, 42).unwrap();
        m.write_ptr(
            src.offset_by(8),
            PtrVal::Safe(Pointer {
                alloc: b,
                offset: 0,
            }),
            8,
        )
        .unwrap();
        let dst = Pointer {
            alloc: a,
            offset: 16,
        };
        m.copy_region(dst, src, 16).unwrap();
        assert_eq!(m.read_int(dst, 4, true).unwrap(), 42);
        assert!(matches!(
            m.read_ptr(dst.offset_by(8), 8).unwrap(),
            PtrVal::Safe(_)
        ));
    }

    #[test]
    fn c_string_reading() {
        let mut m = mem();
        let a = m.alloc(8, AllocKind::Global).unwrap();
        m.write_bytes(
            Pointer {
                alloc: a,
                offset: 0,
            },
            b"hi\0",
        )
        .unwrap();
        assert_eq!(
            m.read_c_string(Pointer {
                alloc: a,
                offset: 0
            })
            .unwrap(),
            b"hi"
        );
        assert_eq!(
            m.read_c_string(Pointer {
                alloc: a,
                offset: 1
            })
            .unwrap(),
            b"i"
        );
        // A string without NUL runs off the allocation.
        let b = m.alloc(2, AllocKind::Global).unwrap();
        m.write_bytes(
            Pointer {
                alloc: b,
                offset: 0,
            },
            b"xy",
        )
        .unwrap();
        assert!(m
            .read_c_string(Pointer {
                alloc: b,
                offset: 0
            })
            .is_err());
    }

    #[test]
    fn va_roundtrip() {
        let mut m = mem();
        let a = m.alloc(16, AllocKind::Heap).unwrap();
        let p = Pointer {
            alloc: a,
            offset: 12,
        };
        let va = m.va_of(&PtrVal::Safe(p));
        assert_eq!(m.ptr_of_va(va), Some(p));
        assert_eq!(m.va_of(&PtrVal::Null), 0);
    }

    #[test]
    fn floats_roundtrip() {
        let mut m = mem();
        let a = m.alloc(16, AllocKind::Heap).unwrap();
        let p = Pointer {
            alloc: a,
            offset: 0,
        };
        m.write_float(p, 8, 2.5).unwrap();
        assert_eq!(m.read_float(p, 8).unwrap(), 2.5);
        m.write_float(p, 4, 1.25).unwrap();
        assert_eq!(m.read_float(p, 4).unwrap(), 1.25);
    }

    #[test]
    fn absurd_allocation_rejected() {
        let mut m = mem();
        assert!(m.alloc(1 << 40, AllocKind::Heap).is_err());
    }

    #[test]
    fn heap_cap_enforced_and_peak_tracked() {
        let mut m = mem();
        m.set_heap_limit(100);
        let a = m.alloc(60, AllocKind::Heap).unwrap();
        assert_eq!(m.peak_live_bytes, 60);
        let over = m.alloc(60, AllocKind::Heap);
        assert!(
            matches!(
                over,
                Err(RtError::LimitExceeded {
                    limit: "heap_limit",
                    ..
                })
            ),
            "{over:?}"
        );
        // Freeing makes room again; peak stays at the high-water mark.
        m.free(a).unwrap();
        let b = m.alloc(90, AllocKind::Heap).unwrap();
        assert!(m.allocation(b).live);
        assert_eq!(m.peak_live_bytes, 90);
    }
}
