//! The CIL interpreter: executes original or cured programs over the
//! byte-accurate memory model, with baseline instrumentation hooks.
//!
//! * **Original** mode follows plain C semantics: no checks; the memory
//!   model detects allocation-level violations as ground truth, while
//!   *within-allocation* overflows (e.g. overrunning a buffer into a
//!   neighbouring struct field) succeed silently, exactly as on real
//!   hardware — these are the vulnerabilities CCured exists to stop.
//! * **Cured** mode maintains fat-pointer representations per the inferred
//!   kinds and executes the instrumentation checks of Figures 10–11.
//! * **Purify / Valgrind / JonesKelly** modes run the original program with
//!   the corresponding shadow-memory or registry work on every access.

use crate::cost::Counters;
use crate::err::RtError;
use crate::external;
use crate::limits::Limits;
use crate::mem::{AllocId, AllocKind, Memory, Pointer};
use crate::value::{PtrVal, Value};
use ccured::hierarchy::Hierarchy;
use ccured::Cured;
use ccured_cil::ir::*;
use ccured_cil::phys::CastClass;
use ccured_cil::types::{IntKind, Type, TypeId};
use ccured_infer::{PtrKind, Solution};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;
use std::time::Instant;

pub use ccured::Engine;

/// How the program is executed.
#[derive(Clone, Copy)]
pub enum ExecMode<'c> {
    /// Plain C semantics (ground-truth memory model only).
    Original,
    /// CCured representations and checks.
    Cured {
        /// The pointer-kind solution.
        sol: &'c Solution,
        /// The RTTI hierarchy.
        hier: &'c Hierarchy,
    },
    /// Purify-style: 2 shadow bits/byte on every access of the original
    /// program, plus binary-translation dispatch.
    Purify,
    /// Valgrind-style: 9 shadow bits/byte plus per-instruction JIT cost.
    Valgrind,
    /// Jones–Kelly-style: a global object-registry lookup per pointer
    /// dereference and arithmetic operation.
    JonesKelly,
}

impl<'c> ExecMode<'c> {
    /// Cured mode borrowing the solution and hierarchy from a [`Cured`].
    pub fn cured(c: &'c Cured) -> Self {
        ExecMode::Cured {
            sol: &c.solution,
            hier: &c.hierarchy,
        }
    }

    fn is_cured(&self) -> bool {
        matches!(self, ExecMode::Cured { .. })
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<Value>),
    /// A pending goto, carrying the interned label id (see [`FnInfo`]).
    Goto(u32),
}

pub(crate) enum LocalSlot {
    Reg,
    Mem(AllocId),
}

pub(crate) struct Frame {
    pub(crate) func: FuncId,
    pub(crate) seq: u64,
    pub(crate) regs: Vec<Option<Value>>,
    pub(crate) slots: Vec<LocalSlot>,
    pub(crate) info: Rc<FnInfo>,
    /// Loop-optimizer guard slots: 0 unset, 1 latched "pass", 2 latched
    /// "fail". Grown on demand by the first probe/reset touching a slot.
    pub(crate) guards: Vec<u8>,
}

/// A popped frame's reusable buffers (`regs`/`slots`/`guards`), held in
/// [`Interp::frame_pool`] between calls.
pub(crate) type FrameBuffers = (Vec<Option<Value>>, Vec<LocalSlot>, Vec<u8>);

/// A resolved storage location.
pub(crate) enum Place {
    Reg(LocalId),
    Mem(Pointer),
}

/// Per-function static facts, computed once per interpreter and shared by
/// refcount (never cloned per call): which locals need memory slots, plus
/// pre-resolved goto/label tables so jumps cost a hash probe instead of a
/// linear statement scan and a `String` clone.
pub(crate) struct FnInfo {
    /// Which locals of the function need memory (vs register) slots.
    pub(crate) mem_locals: Rc<[bool]>,
    /// Interned label names (id -> name), for diagnostics.
    labels: Vec<String>,
    /// Statement index of each label within its enclosing block slice,
    /// keyed by (slice address, label id). Slice addresses are stable: the
    /// program is borrowed immutably for the interpreter's lifetime.
    label_pos: HashMap<(usize, u32), usize>,
    /// Interned label id of every `Stmt::Goto`, keyed by statement address.
    goto_ids: HashMap<usize, u32>,
}

/// Heat a function must accumulate (entries + loop back edges) before the
/// VM recompiles it with the extended superinstruction set. Low on
/// purpose: a baseline function is strictly slower to dispatch, so the
/// break-even point is a handful of executions.
pub const DEFAULT_TIER_THRESHOLD: u32 = 8;

/// The bytecode engine's tiering policy. Tiering is an execution-speed
/// knob only: both modes (and the tree engine) are byte-identical in
/// output, counters and verdicts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TierMode {
    /// Single tier: every function compiles once with the base fusion set.
    Off,
    /// Two tiers: functions start on a cheap unfused baseline compile and
    /// recompile with the extended superinstruction set once their heat
    /// reaches `threshold` (`0` promotes immediately, `u32::MAX` never).
    On {
        /// Entries-plus-back-edges count that triggers promotion.
        threshold: u32,
    },
}

impl Default for TierMode {
    fn default() -> Self {
        TierMode::On {
            threshold: DEFAULT_TIER_THRESHOLD,
        }
    }
}

/// Observability counters for the tiering machinery. Deliberately *not*
/// part of [`Counters`]: those are observable program behaviour and must
/// stay byte-identical across engines and tiers.
#[derive(Clone, Copy, Default, Debug)]
pub struct TierStats {
    /// Hot recompilations performed.
    pub promotions: u64,
    /// On-stack replacements: a running activation jumped into hot code
    /// at a loop back edge.
    pub osr: u64,
}

/// The interpreter. Create one per run; counters and output accumulate.
pub struct Interp<'p> {
    pub(crate) prog: &'p Program,
    pub(crate) mode: ExecMode<'p>,
    pub(crate) mem: Memory,
    pub(crate) globals: Vec<AllocId>,
    pub(crate) frames: Vec<Frame>,
    pub(crate) next_frame_seq: u64,
    /// Event counters for the cost model.
    pub counters: Counters,
    pub(crate) out: Vec<u8>,
    pub(crate) input: Vec<u8>,
    pub(crate) input_pos: usize,
    pub(crate) limits: Limits,
    /// Armed from `limits.deadline` when execution starts.
    pub(crate) deadline_at: Option<Instant>,
    /// Model CCured's zeroing allocator: fresh memory reads as zero instead
    /// of tripping the ground-truth uninitialized-read detector.
    pub(crate) zero_init: bool,
    pub(crate) word: u64,
    pub(crate) globals_ready: bool,
    /// Which execution engine `run`/`call_by_name` dispatch to.
    engine: Engine,
    /// Per-function static facts (memory locals, goto/label tables).
    fn_info: HashMap<u32, Rc<FnInfo>>,
    /// Per-function compiled bytecode (the VM engine's cache).
    pub(crate) compiled: Vec<Option<Rc<crate::bytecode::CompiledFn<'p>>>>,
    /// Per-function frame layouts for the VM's fast call path, indexed by
    /// `FuncId`: outer `None` = not built yet, `Some(None)` = this function
    /// needs the generic `push_frame` (e.g. an unsized local).
    pub(crate) frame_plans: Vec<Option<Option<Rc<crate::bytecode::FramePlan>>>>,
    /// Recycled frame buffers (`regs`/`slots`/`guards`), so steady-state
    /// VM calls allocate nothing.
    pub(crate) frame_pool: Vec<FrameBuffers>,
    /// The VM's tiering policy.
    pub(crate) tier_mode: TierMode,
    /// Whether checks should feed `site_heat`: seeded from
    /// `engine == Vm && tier_mode == On`, then refreshed by the VM on every
    /// code-object switch so tracking only runs while baseline (pre-Opt)
    /// code warms up. One branch per check everywhere else.
    pub(crate) tier_track: bool,
    /// Per-function heat (entries + back edges), indexed by `FuncId`.
    pub(crate) heat: Vec<u64>,
    /// Per-site execution heat, indexed like [`Profile`] slots; feeds the
    /// hot recompiler's check-fusion site selection.
    pub(crate) site_heat: Vec<u64>,
    /// The sites with nonzero heat plus the `--pgo` plan's sites,
    /// maintained incrementally so a promotion borrows it instead of
    /// rescanning `site_heat` (promotion-heavy flat profiles recompile
    /// hundreds of functions; an O(sites) rebuild per promotion shows up
    /// on the clock).
    pub(crate) hot_site_set: HashSet<u32>,
    /// Offline tiering plan from `--pgo`: functions and sites a saved
    /// profile ranks hot, promoted on first touch.
    pub(crate) tier_plan: Option<crate::profile::TierPlan>,
    /// Tiering observability (not part of [`Counters`]).
    pub(crate) tier_stats: TierStats,
    /// Snapshot of (instrs, loads) while a VM check operand re-evaluates,
    /// restored when the check completes or its evaluation aborts.
    pub(crate) vm_check_save: Option<(u64, u64)>,
    /// Per-site hit/fail/walk-step counters; `None` (the default) keeps
    /// profiling overhead at a single branch per check.
    pub(crate) profile: Option<Box<crate::profile::Profile>>,
    /// Purify/Valgrind shadow bytes per allocation.
    shadow: HashMap<u32, Vec<u8>>,
    /// Jones–Kelly object registry: VA base -> size.
    registry: BTreeMap<u64, u64>,
    /// Cache for `Hierarchy::node_of` lookups (hot on RTTI conversions).
    node_cache: HashMap<u32, u32>,
    /// Use the O(1) interval `isSubtype` encoding instead of the paper's
    /// parent-chain walk (ablation).
    interval_rtti: bool,
    /// Overrides the default GC behaviour (None = cured implies GC).
    gc_override: Option<bool>,
    /// `--temporal`: `free` revokes the allocation's capability key (the
    /// bytes stay live under GC) and `CHECK_TEMPORAL` compares it.
    temporal: bool,
    pub(crate) rng: u64,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter for `prog` in the given mode.
    pub fn new(prog: &'p Program, mode: ExecMode<'p>) -> Self {
        let limits = Limits::default();
        let mut mem = Memory::new();
        mem.set_heap_limit(limits.max_heap_bytes);
        Interp {
            prog,
            mode,
            mem,
            globals: Vec::new(),
            frames: Vec::new(),
            next_frame_seq: 0,
            counters: Counters::default(),
            out: Vec::new(),
            input: Vec::new(),
            input_pos: 0,
            limits,
            deadline_at: None,
            zero_init: false,
            word: prog.types.machine.ptr_bytes,
            globals_ready: false,
            engine: Engine::Tree,
            fn_info: HashMap::new(),
            compiled: Vec::new(),
            frame_plans: Vec::new(),
            frame_pool: Vec::new(),
            tier_mode: TierMode::default(),
            tier_track: false,
            heat: Vec::new(),
            site_heat: Vec::new(),
            hot_site_set: HashSet::new(),
            tier_plan: None,
            tier_stats: TierStats::default(),
            vm_check_save: None,
            profile: None,
            shadow: HashMap::new(),
            registry: BTreeMap::new(),
            node_cache: HashMap::new(),
            interval_rtti: false,
            gc_override: None,
            temporal: false,
            rng: 0x9E3779B97F4A7C15,
        }
    }

    /// Selects the execution engine. [`Interp::new`] starts on
    /// [`Engine::Tree`] — the reference tree-walking semantics; switch to
    /// [`Engine::Vm`] for the bytecode engine (identical observable
    /// behaviour, including [`Counters`], but much faster dispatch).
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
        self.tier_track =
            matches!(self.engine, Engine::Vm) && matches!(self.tier_mode, TierMode::On { .. });
    }

    /// The engine `run`/`call_by_name` will dispatch to.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Selects the VM's tiering policy (default: [`TierMode::On`] at
    /// [`DEFAULT_TIER_THRESHOLD`]). Flushes compiled code and heat, so it
    /// must be called before `run` — not mid-execution.
    pub fn set_tiering(&mut self, mode: TierMode) {
        self.tier_mode = mode;
        self.tier_track =
            matches!(self.engine, Engine::Vm) && matches!(self.tier_mode, TierMode::On { .. });
        self.compiled.clear();
        self.heat.clear();
        self.site_heat.clear();
        self.hot_site_set.clear();
        if let Some(plan) = &self.tier_plan {
            self.hot_site_set.extend(plan.hot_sites.iter().copied());
        }
        self.tier_stats = TierStats::default();
    }

    /// The tiering policy in force.
    pub fn tiering(&self) -> TierMode {
        self.tier_mode
    }

    /// Installs an offline `--pgo` tiering plan: the named functions are
    /// promoted straight to the hot tier on first touch, and the listed
    /// sites are eligible for check fusion from the start. Flushes
    /// compiled code so the plan applies to every function.
    pub fn set_tier_plan(&mut self, plan: crate::profile::TierPlan) {
        self.hot_site_set.extend(plan.hot_sites.iter().copied());
        self.tier_plan = Some(plan);
        self.compiled.clear();
        self.heat.clear();
    }

    /// Tiering observability: promotions and on-stack replacements so far.
    pub fn tier_stats(&self) -> TierStats {
        self.tier_stats
    }

    /// Enables per-site profiling (Profile mode) with `n_sites` slots —
    /// pass the length of the cure's site table. Observation-only: output,
    /// counters, and verdicts are unaffected. Off by default.
    pub fn enable_profile(&mut self, n_sites: usize) {
        self.profile = Some(Box::new(crate::profile::Profile::new(n_sites)));
    }

    /// The per-site profile accumulated so far, if profiling is enabled.
    pub fn profile(&self) -> Option<&crate::profile::Profile> {
        self.profile.as_deref()
    }

    /// Caps the number of evaluation steps.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.limits.fuel = fuel;
    }

    /// Installs a full set of sandbox [`Limits`] (fuel, stack depth, heap
    /// cap, deadline). [`Limits::default`] is already in force for every
    /// fresh interpreter; this tightens or relaxes it.
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
        self.mem.set_heap_limit(limits.max_heap_bytes);
    }

    /// The limits currently in force.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Models CCured's zeroing allocator (and the BDW collector backing it):
    /// fresh allocations and register locals read as zero instead of
    /// tripping the ground-truth uninitialized-read detector. The
    /// fault-injection harness enables this for cured runs, because a real
    /// cured program never sees garbage memory — see DESIGN.md.
    pub fn set_zero_init(&mut self, on: bool) {
        self.zero_init = on;
    }

    /// Selects the O(1) interval `isSubtype` encoding for RTTI checks
    /// (default: the paper's parent-chain walk). An ablation knob: the
    /// interval test costs no walk steps.
    pub fn set_interval_rtti(&mut self, on: bool) {
        self.interval_rtti = on;
    }

    /// Whether `free` is a no-op (CCured's garbage-collected runtime).
    /// Defaults to true in cured mode, false otherwise; overridable for
    /// experiments.
    pub fn set_gc_mode(&mut self, on: bool) {
        self.gc_override = Some(on);
    }

    pub(crate) fn gc_mode(&self) -> bool {
        self.gc_override
            .unwrap_or(matches!(self.mode, ExecMode::Cured { .. }))
    }

    /// Enables temporal lock-and-key semantics (`--temporal`): `free`
    /// revokes the freed allocation's capability key, and every
    /// `CHECK_TEMPORAL` the cure emitted compares the key before the
    /// dereference. Off by default — a temporal check on an interpreter
    /// without this flag passes vacuously, so uncured callers are safe.
    pub fn set_temporal(&mut self, on: bool) {
        self.temporal = on;
    }

    /// Whether temporal lock-and-key semantics are in force.
    pub fn temporal_enabled(&self) -> bool {
        self.temporal
    }

    /// Ground-truth machine traps on dead memory so far (use-after-free /
    /// use-after-return). The temporal experiments assert this stays zero:
    /// the emitted check must fire before the machine would have trapped.
    pub fn uaf_traps(&self) -> u64 {
        self.mem.uaf_traps()
    }

    /// Provides bytes for the input builtins (`getchar`, `net_recv`, ...).
    pub fn set_input(&mut self, bytes: impl Into<Vec<u8>>) {
        self.input = bytes.into();
        self.input_pos = 0;
    }

    /// Everything the program printed.
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        self.prog
    }

    /// Initializes globals and runs `main`, returning its exit code.
    ///
    /// # Errors
    ///
    /// Any [`RtError`]; `exit(n)` is translated into a normal return.
    pub fn run(&mut self) -> Result<i64, RtError> {
        let main = self
            .prog
            .find_function("main")
            .ok_or_else(|| RtError::Unsupported("no `main` function".into()))?;
        self.arm_deadline();
        let r = self.dispatch(main, Vec::new());
        self.sync_peaks();
        match r {
            Ok(v) => Ok(v.and_then(|v| v.as_int()).unwrap_or(0) as i64),
            Err(RtError::Exit(code)) => Ok(code),
            Err(e) => Err(e),
        }
    }

    /// Runs `f` on the selected engine.
    fn dispatch(&mut self, f: FuncId, args: Vec<Value>) -> Result<Option<Value>, RtError> {
        match self.engine {
            Engine::Tree => self.run_function(f, args),
            Engine::Vm => self.vm_call(f, args),
        }
    }

    /// Calls a named function with arguments (initializing globals first).
    ///
    /// # Errors
    ///
    /// Any [`RtError`].
    pub fn call_by_name(&mut self, name: &str, args: Vec<Value>) -> Result<Option<Value>, RtError> {
        let f = self
            .prog
            .find_function(name)
            .ok_or_else(|| RtError::Unsupported(format!("no function `{name}`")))?;
        self.arm_deadline();
        let r = self.dispatch(f, args);
        self.sync_peaks();
        r
    }

    /// Starts the wall-clock countdown, if a deadline is configured.
    fn arm_deadline(&mut self) {
        self.deadline_at = self.limits.deadline.map(|d| Instant::now() + d);
    }

    /// Copies memory high-water marks into the public counters.
    fn sync_peaks(&mut self) {
        self.counters.peak_heap_bytes = self.mem.peak_live_bytes;
    }

    fn run_function(&mut self, f: FuncId, args: Vec<Value>) -> Result<Option<Value>, RtError> {
        if !self.globals_ready {
            self.init_globals()?;
            self.globals_ready = true;
        }
        self.push_frame(f, args)?;
        let func = &self.prog.functions[f.idx()];
        let flow = self.run_block(&func.body);
        let seq = match self.frames.last() {
            Some(fr) => fr.seq,
            None => return Err(no_frame()),
        };
        self.mem.kill_frame(seq);
        self.frames.pop();
        let flow = flow?;
        let ret_ty = func.ret_type(&self.prog.types);
        Ok(match flow {
            Flow::Return(v) => v,
            Flow::Goto(id) => {
                // The label exists somewhere deeper than any block the goto
                // can reach (e.g. inside a sibling nested block).
                let label = self
                    .fn_info(f)
                    .labels
                    .get(id as usize)
                    .cloned()
                    .unwrap_or_else(|| "?".into());
                return Err(RtError::Unsupported(format!(
                    "goto to label `{label}` that is not visible from the jump site"
                )));
            }
            _ => {
                // Fell off the end: a zero value for non-void returns.
                match self.prog.types.get(ret_ty) {
                    Type::Void => None,
                    Type::Float(_) => Some(Value::Float(0.0)),
                    Type::Ptr(..) => Some(Value::NULL),
                    _ => Some(Value::Int(0)),
                }
            }
        })
    }

    // -------------------------------------------------------------- globals

    pub(crate) fn init_globals(&mut self) -> Result<(), RtError> {
        for g in &self.prog.globals {
            let size = self.sized(g.ty, &format!("global `{}`", g.name))?;
            let id = self.mem.alloc(size.max(1), AllocKind::Global)?;
            // C zero-initializes globals.
            self.mem.mark_init(id);
            self.register_alloc(id);
            self.globals.push(id);
        }
        for (i, g) in self.prog.globals.iter().enumerate() {
            if let Some(init) = &g.init {
                let base = Pointer {
                    alloc: self.globals[i],
                    offset: 0,
                };
                self.run_init(base, g.ty, init)?;
            }
        }
        Ok(())
    }

    fn run_init(&mut self, at: Pointer, ty: TypeId, init: &Init) -> Result<(), RtError> {
        match init {
            Init::String(bytes) => self.mem.write_bytes(at, bytes),
            Init::Scalar(e) => {
                let v = self.eval(e)?;
                self.store_typed(at, ty, v)
            }
            // `self.prog` is a shared `&'p` borrow independent of `&mut
            // self`, so type-table lookups need no defensive clones.
            Init::Compound(items) => match *{ self.prog }.types.get(ty) {
                Type::Array(elem, _) => {
                    let es = self.sized(elem, "array initializer element")?;
                    for (i, item) in items.iter().enumerate() {
                        self.run_init(at.offset_by((i as u64 * es) as i64), elem, item)?;
                    }
                    Ok(())
                }
                Type::Comp(cid) => {
                    let fields = &{ self.prog }.types.comp(cid).fields;
                    for (i, item) in items.iter().enumerate() {
                        let f = &fields[i];
                        self.run_init(at.offset_by(f.offset as i64), f.ty, item)?;
                    }
                    Ok(())
                }
                _ => {
                    if let Some(first) = items.first() {
                        self.run_init(at, ty, first)
                    } else {
                        Ok(())
                    }
                }
            },
        }
    }

    // --------------------------------------------------------------- frames

    /// Computes [`FnInfo`] for `f`: which locals need memory slots (vs
    /// registers), plus the goto/label resolution tables.
    fn build_fn_info(&self, f: FuncId) -> FnInfo {
        let func = &self.prog.functions[f.idx()];
        let mut need = vec![false; func.locals.len()];
        for (i, l) in func.locals.iter().enumerate() {
            if matches!(self.prog.types.get(l.ty), Type::Comp(_) | Type::Array(..)) {
                need[i] = true;
            }
        }
        fn scan_exp(e: &Exp, need: &mut Vec<bool>) {
            match e {
                Exp::AddrOf(lv, _) | Exp::StartOf(lv, _) => {
                    if let LvBase::Local(l) = lv.base {
                        need[l.idx()] = true;
                    }
                    scan_lval(lv, need);
                }
                Exp::Load(lv, _) => scan_lval(lv, need),
                Exp::Unop(_, x, _) | Exp::Cast(_, x, _) => scan_exp(x, need),
                Exp::Binop(_, a, b, _) => {
                    scan_exp(a, need);
                    scan_exp(b, need);
                }
                _ => {}
            }
        }
        fn scan_lval(lv: &Lval, need: &mut Vec<bool>) {
            if let LvBase::Deref(e) = &lv.base {
                scan_exp(e, need);
            }
            for off in &lv.offsets {
                if let Offset::Index(e) = off {
                    scan_exp(e, need);
                }
            }
        }
        fn scan_check(c: &Check, need: &mut Vec<bool>) {
            match c {
                Check::Null { ptr }
                | Check::SeqBounds { ptr, .. }
                | Check::SeqToSafe { ptr, .. }
                | Check::WildBounds { ptr, .. }
                | Check::WildTag { ptr }
                | Check::Rtti { ptr, .. }
                | Check::Temporal { ptr } => scan_exp(ptr, need),
                Check::NoStackEscape { value } => scan_exp(value, need),
                Check::IndexBound { index, .. } => scan_exp(index, need),
                Check::Probe { inner, .. } => {
                    for c in inner {
                        scan_check(c, need);
                    }
                }
                Check::Guarded { inner, .. } => scan_check(inner, need),
                Check::GuardReset { .. } => {}
            }
        }
        fn scan_stmt(s: &Stmt, need: &mut Vec<bool>) {
            match s {
                Stmt::Instr(is) => {
                    for i in is {
                        match i {
                            Instr::Set(lv, e, _) => {
                                scan_lval(lv, need);
                                scan_exp(e, need);
                            }
                            Instr::Call(ret, callee, args, _) => {
                                if let Some(lv) = ret {
                                    scan_lval(lv, need);
                                }
                                if let Callee::Ptr(e) = callee {
                                    scan_exp(e, need);
                                }
                                for a in args {
                                    scan_exp(a, need);
                                }
                            }
                            Instr::Check(c, _, _) => scan_check(c, need),
                        }
                    }
                }
                Stmt::If(c, t, e) => {
                    scan_exp(c, need);
                    for s in t.iter().chain(e.iter()) {
                        scan_stmt(s, need);
                    }
                }
                Stmt::Loop(b) | Stmt::Block(b) => {
                    for s in b {
                        scan_stmt(s, need);
                    }
                }
                Stmt::Return(Some(e)) => scan_exp(e, need),
                Stmt::Switch(e, arms) => {
                    scan_exp(e, need);
                    for a in arms {
                        for s in &a.body {
                            scan_stmt(s, need);
                        }
                    }
                }
                _ => {}
            }
        }
        for s in &func.body {
            scan_stmt(s, &mut need);
        }
        // Goto/label tables: intern label names and record, per block slice,
        // where each label sits, so a jump is a hash probe instead of a
        // linear scan with `String` comparisons.
        struct Labels {
            names: Vec<String>,
            by_name: HashMap<String, u32>,
            label_pos: HashMap<(usize, u32), usize>,
            goto_ids: HashMap<usize, u32>,
        }
        impl Labels {
            fn intern(&mut self, name: &str) -> u32 {
                if let Some(&id) = self.by_name.get(name) {
                    return id;
                }
                let id = self.names.len() as u32;
                self.names.push(name.to_string());
                self.by_name.insert(name.to_string(), id);
                id
            }
            fn walk(&mut self, stmts: &[Stmt]) {
                let slice = stmts.as_ptr() as usize;
                for (i, s) in stmts.iter().enumerate() {
                    match s {
                        Stmt::Label(name) => {
                            let id = self.intern(name);
                            // First occurrence wins, like the old linear scan.
                            self.label_pos.entry((slice, id)).or_insert(i);
                        }
                        Stmt::Goto(name) => {
                            let id = self.intern(name);
                            self.goto_ids.insert(s as *const Stmt as usize, id);
                        }
                        Stmt::If(_, t, e) => {
                            self.walk(t);
                            self.walk(e);
                        }
                        Stmt::Loop(b) | Stmt::Block(b) => self.walk(b),
                        Stmt::Switch(_, arms) => {
                            for a in arms {
                                self.walk(&a.body);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        let mut lb = Labels {
            names: Vec::new(),
            by_name: HashMap::new(),
            label_pos: HashMap::new(),
            goto_ids: HashMap::new(),
        };
        lb.walk(&func.body);
        FnInfo {
            mem_locals: need.into(),
            labels: lb.names,
            label_pos: lb.label_pos,
            goto_ids: lb.goto_ids,
        }
    }

    /// The cached [`FnInfo`] for `f`, computing it on first use. The `Rc`
    /// is shared — callers never clone the underlying tables.
    pub(crate) fn fn_info(&mut self, f: FuncId) -> Rc<FnInfo> {
        if let Some(info) = self.fn_info.get(&f.0) {
            return Rc::clone(info);
        }
        let info = Rc::new(self.build_fn_info(f));
        self.fn_info.insert(f.0, Rc::clone(&info));
        info
    }

    pub(crate) fn push_frame(&mut self, f: FuncId, args: Vec<Value>) -> Result<(), RtError> {
        // The interpreter recurses on guest calls, so this cap also protects
        // the *host* stack: it must trip well before the process would.
        self.counters.limit_checks += 1;
        if self.frames.len() >= self.limits.max_stack_depth {
            return Err(RtError::LimitExceeded {
                limit: "stack_limit",
                detail: format!(
                    "call depth exceeded the {}-frame stack cap",
                    self.limits.max_stack_depth
                ),
            });
        }
        let info = self.fn_info(f);
        let func: &'p Function = &self.prog.functions[f.idx()];
        let seq = self.next_frame_seq;
        self.next_frame_seq += 1;
        let mut regs = Vec::with_capacity(func.locals.len());
        let mut slots = Vec::with_capacity(func.locals.len());
        for (i, l) in func.locals.iter().enumerate() {
            if info.mem_locals[i] {
                let size = self.sized(l.ty, "stack local")?.max(1);
                let id = self.mem.alloc(size, AllocKind::Stack { frame: seq })?;
                self.register_alloc(id);
                slots.push(LocalSlot::Mem(id));
            } else {
                slots.push(LocalSlot::Reg);
            }
            regs.push(None);
        }
        self.frames.push(Frame {
            func: f,
            seq,
            regs,
            slots,
            info,
            guards: Vec::new(),
        });
        self.counters.calls += 1;
        self.counters.peak_stack_depth =
            self.counters.peak_stack_depth.max(self.frames.len() as u64);
        // Bind parameters.
        for (i, v) in args.into_iter().enumerate().take(func.param_count) {
            self.store_local(LocalId(i as u32), func.locals[i].ty, v)?;
        }
        Ok(())
    }

    pub(crate) fn frame(&self) -> Result<&Frame, RtError> {
        self.frames.last().ok_or_else(no_frame)
    }

    pub(crate) fn frame_mut(&mut self) -> Result<&mut Frame, RtError> {
        self.frames.last_mut().ok_or_else(no_frame)
    }

    fn cur_func(&self) -> Result<&'p Function, RtError> {
        Ok(&self.prog.functions[self.frame()?.func.idx()])
    }

    // --------------------------------------------------------------- blocks

    fn run_block(&mut self, stmts: &[Stmt]) -> Result<Flow, RtError> {
        let mut i = 0;
        while i < stmts.len() {
            match self.exec_stmt(&stmts[i])? {
                Flow::Normal => i += 1,
                Flow::Goto(id) => {
                    let key = (stmts.as_ptr() as usize, id);
                    match self.frame()?.info.label_pos.get(&key).copied() {
                        Some(j) => i = j,
                        None => return Ok(Flow::Goto(id)),
                    }
                }
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<Flow, RtError> {
        self.step()?;
        match s {
            Stmt::Instr(is) => {
                for i in is {
                    self.exec_instr(i)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::Block(b) => self.run_block(b),
            Stmt::If(c, t, e) => {
                let v = self.eval(c)?;
                if v.is_truthy() {
                    self.run_block(t)
                } else {
                    self.run_block(e)
                }
            }
            Stmt::Loop(b) => loop {
                match self.run_block(b)? {
                    Flow::Normal | Flow::Continue => continue,
                    Flow::Break => return Ok(Flow::Normal),
                    other => return Ok(other),
                }
            },
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval(e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Goto(_) => {
                let id = self
                    .frame()?
                    .info
                    .goto_ids
                    .get(&(s as *const Stmt as usize))
                    .copied()
                    .unwrap_or(u32::MAX);
                Ok(Flow::Goto(id))
            }
            Stmt::Label(_) => Ok(Flow::Normal),
            Stmt::Switch(scrut, arms) => {
                let v = self
                    .eval(scrut)?
                    .as_int()
                    .ok_or_else(|| RtError::Unsupported("non-integer switch".into()))?;
                let mut start = arms.iter().position(|a| a.values.contains(&v));
                if start.is_none() {
                    start = arms.iter().position(|a| a.values.is_empty());
                }
                if let Some(idx) = start {
                    for arm in &arms[idx..] {
                        match self.run_block(&arm.body)? {
                            Flow::Normal => continue,
                            Flow::Break => return Ok(Flow::Normal),
                            other => return Ok(other),
                        }
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn exec_instr(&mut self, i: &Instr) -> Result<(), RtError> {
        self.step()?;
        match i {
            Instr::Set(lv, e, _) => {
                let ty = self.lval_type(lv)?;
                if matches!(self.prog.types.get(ty), Type::Comp(_) | Type::Array(..)) {
                    return self.copy_aggregate(lv, e, ty);
                }
                let v = self.eval(e)?;
                self.store_lval(lv, ty, v)
            }
            Instr::Call(ret, callee, args, _) => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    // Aggregates pass by value: hand the callee the source
                    // address; parameter binding performs the copy.
                    if matches!(self.prog.types.get(a.ty()), Type::Comp(_) | Type::Array(..)) {
                        let lv = match a {
                            Exp::Load(lv, _) => lv,
                            _ => {
                                return Err(RtError::Unsupported(
                                    "aggregate argument is not an lvalue".into(),
                                ))
                            }
                        };
                        let p = match self.resolve_lval(lv)? {
                            Place::Mem(p) => p,
                            Place::Reg(_) => {
                                return Err(RtError::Unsupported(
                                    "aggregate argument in register".into(),
                                ))
                            }
                        };
                        argv.push(Value::Ptr(PtrVal::Safe(p)));
                        continue;
                    }
                    argv.push(self.eval(a)?);
                }
                let result = match callee {
                    Callee::Func(f) => self.run_function(*f, argv)?,
                    Callee::Extern(x) => {
                        let name = self.prog.externals[x.idx()].name.clone();
                        self.counters.extern_calls += 1;
                        external::call(self, &name, &argv)?
                    }
                    Callee::Ptr(e) => {
                        let v = self.eval(e)?;
                        match v.as_ptr() {
                            Some(PtrVal::Fn(FnRef::Def(f))) => self.run_function(f, argv)?,
                            Some(PtrVal::Fn(FnRef::Ext(x))) => {
                                let name = self.prog.externals[x.idx()].name.clone();
                                self.counters.extern_calls += 1;
                                external::call(self, &name, &argv)?
                            }
                            Some(PtrVal::Null) => return Err(RtError::NullDeref),
                            _ => return Err(RtError::NotAFunction),
                        }
                    }
                };
                if let Some(lv) = ret {
                    let ty = self.lval_type(lv)?;
                    let v = result.unwrap_or(Value::Int(0));
                    self.store_lval(lv, ty, v)?;
                }
                Ok(())
            }
            Instr::Check(c, _, site) => self.exec_check(c, *site),
        }
    }

    fn copy_aggregate(&mut self, lv: &Lval, e: &Exp, ty: TypeId) -> Result<(), RtError> {
        let src = match e {
            Exp::Load(src_lv, _) => src_lv,
            _ => {
                return Err(RtError::Unsupported(
                    "aggregate rvalue is not an lvalue".into(),
                ))
            }
        };
        let size = self
            .prog
            .types
            .size_of(ty)
            .map_err(|e| RtError::Unsupported(format!("aggregate copy: {e}")))?;
        let dst_p = match self.resolve_lval(lv)? {
            Place::Mem(p) => p,
            Place::Reg(_) => return Err(RtError::Unsupported("aggregate in register".into())),
        };
        let src_p = match self.resolve_lval(src)? {
            Place::Mem(p) => p,
            Place::Reg(_) => return Err(RtError::Unsupported("aggregate in register".into())),
        };
        self.access_hook(src_p, size, false)?;
        self.access_hook(dst_p, size, true)?;
        self.counters.loads += 1;
        self.counters.stores += 1;
        self.mem.copy_region(dst_p, src_p, size)
    }

    // --------------------------------------------------------------- checks

    pub(crate) fn exec_check(&mut self, c: &Check, site: SiteId) -> Result<(), RtError> {
        // Check operands are re-evaluations of values the surrounding code
        // just computed; in compiled CCured they stay in registers. Only the
        // check-specific cost counters should accrue.
        let instrs_before = self.counters.instrs;
        let loads_before = self.counters.loads;
        let r = self.exec_check_inner(c, site);
        self.counters.instrs = instrs_before;
        self.counters.loads = loads_before;
        r
    }

    fn exec_check_inner(&mut self, c: &Check, site: SiteId) -> Result<(), RtError> {
        match c {
            Check::Probe { slot, inner } => return self.exec_probe(*slot, inner, site),
            Check::GuardReset { slot } => {
                self.set_guard(*slot, 0)?;
                return Ok(());
            }
            Check::Guarded { slot, inner } => {
                if self.guard(*slot)? == 1 {
                    // Latched "pass": the probe already proved this check
                    // for every index of the current trip, at zero cost.
                    return Ok(());
                }
                // Unset (flow skipped the probe) or latched "fail": behave
                // exactly like the original check, including blame.
                return self.exec_check_inner(inner, site);
            }
            _ => {}
        }
        self.bump_check_counter(c, site);
        let operand = check_operand(c).expect("plain checks have an operand");
        let v = self.eval(operand)?;
        self.check_verdict(c, v, site)
    }

    /// Runs a loop-optimizer probe: trial-evaluates the summarized checks
    /// with **no** counter or profile footprint, then latches the guard.
    /// On all-pass, exactly one check event of `inner[0]`'s kind is charged
    /// (the probe stands in for the first per-iteration check); on any
    /// failure — check verdicts and resource errors alike — nothing is
    /// charged and the guard latches "fail", so the residual re-runs the
    /// check with the unoptimized program's exact accounting, blame, and
    /// error point. A probe itself never aborts.
    fn exec_probe(&mut self, slot: u32, inner: &[Check], site: SiteId) -> Result<(), RtError> {
        if self.guard(slot)? != 0 {
            return Ok(());
        }
        let saved = self.counters;
        let mut all_pass = true;
        for c in inner {
            let r = match check_operand(c) {
                Some(e) => match self.eval(e) {
                    Ok(v) => self.check_verdict_inner(c, v),
                    Err(err) => Err(err),
                },
                None => Err(RtError::Internal("probe of an operand-free check".into())),
            };
            if r.is_err() {
                all_pass = false;
                break;
            }
        }
        // Whole-Counters restore: operand evaluation can bump side counters
        // (fat conversions, RTTI walk steps) that the generic exec_check
        // wrapper does not reset.
        self.counters = saved;
        if all_pass {
            self.set_guard(slot, 1)?;
            if let Some(first) = inner.first() {
                self.bump_check_counter(first, site);
            }
        } else {
            self.set_guard(slot, 2)?;
        }
        Ok(())
    }

    fn guard(&self, slot: u32) -> Result<u8, RtError> {
        Ok(self
            .frame()?
            .guards
            .get(slot as usize)
            .copied()
            .unwrap_or(0))
    }

    fn set_guard(&mut self, slot: u32, v: u8) -> Result<(), RtError> {
        let f = self.frame_mut()?;
        let i = slot as usize;
        if f.guards.len() <= i {
            f.guards.resize(i + 1, 0);
        }
        f.guards[i] = v;
        Ok(())
    }

    /// Counts the check in the per-kind cost counters (before the operand is
    /// evaluated, matching compiled CCured where the check instruction itself
    /// is the unit of cost) and, in Profile mode, as a hit of its site.
    /// Shared by both engines.
    pub(crate) fn bump_check_counter(&mut self, c: &Check, site: SiteId) {
        if let (Some(prof), Some(i)) = (self.profile.as_deref_mut(), site.index()) {
            prof.slot(i).hits += 1;
        }
        if self.tier_track {
            // Online hot-site tracking for the tiered VM's check-fusion
            // selection. Observation-only, like the profile above.
            if let Some(i) = site.index() {
                if self.site_heat.len() <= i {
                    self.site_heat.resize(i + 1, 0);
                }
                self.site_heat[i] += 1;
                if self.site_heat[i] == 1 {
                    self.hot_site_set.insert(i as u32);
                }
            }
        }
        match c {
            Check::Null { .. } => self.counters.null_checks += 1,
            Check::SeqBounds { .. } => self.counters.seq_bounds_checks += 1,
            Check::SeqToSafe { .. } => self.counters.seq_to_safe_checks += 1,
            Check::WildBounds { .. } => self.counters.wild_bounds_checks += 1,
            Check::WildTag { .. } => self.counters.wild_tag_checks += 1,
            Check::Rtti { .. } => self.counters.rtti_checks += 1,
            Check::NoStackEscape { .. } => self.counters.escape_checks += 1,
            Check::IndexBound { .. } => self.counters.index_checks += 1,
            Check::Temporal { .. } => self.counters.temporal_checks += 1,
            // Guard machinery accounts as the check it stands in for (a
            // probe with no inner checks counts nothing, like a reset).
            Check::Probe { .. } | Check::Guarded { .. } => {
                let accounted = c.accounted();
                if !matches!(
                    accounted,
                    Check::Probe { .. } | Check::Guarded { .. } | Check::GuardReset { .. }
                ) {
                    self.bump_check_counter_kind(accounted);
                }
            }
            Check::GuardReset { .. } => {}
        }
    }

    /// The per-kind counter bump alone, for accounting a guard-machinery
    /// event as its underlying check kind (profile hits are handled by the
    /// caller).
    fn bump_check_counter_kind(&mut self, c: &Check) {
        match c {
            Check::Null { .. } => self.counters.null_checks += 1,
            Check::SeqBounds { .. } => self.counters.seq_bounds_checks += 1,
            Check::SeqToSafe { .. } => self.counters.seq_to_safe_checks += 1,
            Check::WildBounds { .. } => self.counters.wild_bounds_checks += 1,
            Check::WildTag { .. } => self.counters.wild_tag_checks += 1,
            Check::Rtti { .. } => self.counters.rtti_checks += 1,
            Check::NoStackEscape { .. } => self.counters.escape_checks += 1,
            Check::IndexBound { .. } => self.counters.index_checks += 1,
            Check::Temporal { .. } => self.counters.temporal_checks += 1,
            Check::Probe { .. } | Check::Guarded { .. } | Check::GuardReset { .. } => {}
        }
    }

    /// Judges an already-evaluated check operand. Shared by both engines.
    /// In Profile mode the verdict and any RTTI walk steps are also
    /// attributed to the check's site — observation only, the result is
    /// passed through untouched.
    pub(crate) fn check_verdict(
        &mut self,
        c: &Check,
        v: Value,
        site: SiteId,
    ) -> Result<(), RtError> {
        if self.profile.is_none() {
            return self.check_verdict_inner(c, v);
        }
        let steps_before = self.counters.rtti_walk_steps;
        let r = self.check_verdict_inner(c, v);
        let steps = self.counters.rtti_walk_steps - steps_before;
        let failed = matches!(r, Err(RtError::CheckFailed { .. }));
        if let (Some(prof), Some(i)) = (self.profile.as_deref_mut(), site.index()) {
            let slot = prof.slot(i);
            slot.walk_steps += steps;
            slot.fails += u64::from(failed);
        }
        r
    }

    fn check_verdict_inner(&mut self, c: &Check, v: Value) -> Result<(), RtError> {
        let fail = |check: &'static str, detail: String| -> Result<(), RtError> {
            Err(RtError::CheckFailed { check, detail })
        };
        let as_ptr = |v: Value| -> Result<PtrVal, RtError> {
            v.as_ptr()
                .ok_or_else(|| RtError::Unsupported("expected pointer value".into()))
        };
        match c {
            Check::Null { .. } => {
                let v = as_ptr(v)?;
                match v {
                    PtrVal::Null => fail("null", "null pointer dereference".into()),
                    PtrVal::IntVal(x) => fail("null", format!("integer {x:#x} used as pointer")),
                    _ => Ok(()),
                }
            }
            Check::SeqBounds { access_size, .. } | Check::SeqToSafe { access_size, .. } => {
                let name = if matches!(c, Check::SeqBounds { .. }) {
                    "seq_bounds"
                } else {
                    "seq_to_safe"
                };
                let v = as_ptr(v)?;
                match v {
                    PtrVal::Null => fail(name, "null sequence pointer".into()),
                    PtrVal::IntVal(x) => fail(name, format!("integer {x:#x} used as pointer")),
                    PtrVal::Seq { p, lo, hi } | PtrVal::Wild { p, lo, hi } => {
                        if p.offset < lo || p.offset + *access_size as i64 > hi {
                            fail(
                                name,
                                format!(
                                    "pointer at offset {} outside bounds [{lo}, {hi}) for {access_size}-byte access",
                                    p.offset
                                ),
                            )
                        } else {
                            Ok(())
                        }
                    }
                    PtrVal::Safe(p) | PtrVal::Rtti { p, .. } => {
                        // Defensive: a thin value in a SEQ context gets
                        // singleton bounds.
                        let _ = p;
                        Ok(())
                    }
                    PtrVal::Fn(_) => fail(name, "function pointer used as data".into()),
                }
            }
            Check::WildBounds { access_size, .. } => {
                let v = as_ptr(v)?;
                match v {
                    PtrVal::Null => fail("wild_bounds", "null wild pointer".into()),
                    PtrVal::IntVal(x) => {
                        fail("wild_bounds", format!("integer {x:#x} used as pointer"))
                    }
                    PtrVal::Wild { p, lo, hi } | PtrVal::Seq { p, lo, hi } => {
                        if p.offset < lo || p.offset + *access_size as i64 > hi {
                            fail(
                                "wild_bounds",
                                format!(
                                    "wild pointer at offset {} outside area [{lo}, {hi})",
                                    p.offset
                                ),
                            )
                        } else {
                            Ok(())
                        }
                    }
                    _ => Ok(()),
                }
            }
            Check::Temporal { .. } => {
                // Lock-and-key comparison: the pointer's capability key —
                // stamped at allocation — must still be valid, i.e. the
                // allocation has not been freed. Null and disguised
                // integers are the spatial checks' business; here they
                // pass vacuously so blame stays precise.
                let v = as_ptr(v)?;
                let p = match v {
                    PtrVal::Safe(p)
                    | PtrVal::Rtti { p, .. }
                    | PtrVal::Seq { p, .. }
                    | PtrVal::Wild { p, .. } => p,
                    PtrVal::Null | PtrVal::IntVal(_) | PtrVal::Fn(_) => return Ok(()),
                };
                if self.temporal && !self.mem.temporal_valid(p.alloc) {
                    fail(
                        "temporal",
                        format!(
                            "capability key for allocation #{} was revoked (use after free)",
                            p.alloc.0
                        ),
                    )
                } else {
                    Ok(())
                }
            }
            Check::WildTag { .. } => {
                // The tag bitmap is realized by the memory model's
                // provenance map: a word read as a pointer without a tag
                // yields a disguised integer, which every later use-check
                // rejects ("integer used as pointer"). This instruction
                // therefore only pays the tag-consultation cost here; the
                // enforcement is intrinsic to the loads.
                let _ = as_ptr(v)?;
                Ok(())
            }
            Check::Rtti { target_node, .. } => {
                let v = as_ptr(v)?;
                match v {
                    PtrVal::Null => Ok(()), // null downcasts are fine
                    PtrVal::Rtti { node, .. } => {
                        let hier = match self.mode {
                            ExecMode::Cured { hier, .. } => hier,
                            _ => return Ok(()),
                        };
                        let (ok, steps) = if self.interval_rtti {
                            (hier.is_subtype_interval(node, *target_node), 0)
                        } else {
                            hier.is_subtype_walk(node, *target_node)
                        };
                        self.counters.rtti_walk_steps += steps as u64;
                        if ok {
                            Ok(())
                        } else {
                            fail(
                                "rtti",
                                format!("checked downcast failed: node {node} is not a subtype of {target_node}"),
                            )
                        }
                    }
                    _ => fail(
                        "rtti",
                        "downcast of a pointer without run-time type info".into(),
                    ),
                }
            }
            Check::NoStackEscape { .. } => {
                // Evaluated for cost parity; enforcement happens at the
                // store itself (which knows the destination).
                Ok(())
            }
            Check::IndexBound { len, .. } => {
                let v = v
                    .as_int()
                    .ok_or_else(|| RtError::Unsupported("non-integer index".into()))?;
                if v < 0 || v as u64 >= *len {
                    fail(
                        "index_bound",
                        format!("index {v} out of bounds for array of {len}"),
                    )
                } else {
                    Ok(())
                }
            }
            // Guard machinery is executed structurally in
            // `exec_check_inner`/`exec_probe` and never reaches the
            // single-operand verdict path.
            Check::Probe { .. } | Check::Guarded { .. } | Check::GuardReset { .. } => Err(
                RtError::Internal("guard-machinery check in the verdict path".into()),
            ),
        }
    }

    // ----------------------------------------------------------- evaluation

    fn step(&mut self) -> Result<(), RtError> {
        self.counters.instrs += 1;
        match self.mode {
            ExecMode::Valgrind => {
                self.counters.jit_instrs += 1;
                // Valgrind really re-dispatches translated code per
                // instruction; burn comparable interpreter-side work.
                self.rng = self.rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            ExecMode::Purify => {
                // Purify's binary rewriting dilutes every instruction.
                self.counters.bt_instrs += 1;
            }
            _ => {}
        }
        if self.counters.instrs > self.limits.fuel {
            return Err(RtError::OutOfFuel);
        }
        // Poll the wall-clock deadline sparsely: an `Instant::now()` per
        // instruction would dominate the interpreter loop.
        if self.counters.instrs & 0x3FFF == 0 {
            self.poll_deadline()?;
        }
        Ok(())
    }

    /// The batched equivalent of `cost` consecutive [`Interp::step`] calls,
    /// used by the bytecode engine: identical counter effects (instruction
    /// count, per-mode shadow work, fuel accounting at the exact step the
    /// tree engine would have failed on) for a single bounds test.
    pub(crate) fn add_instrs(&mut self, cost: u32) -> Result<(), RtError> {
        // Fast path for the dispatch loop: within fuel, no 0x4000-boundary
        // poll, and a mode with no per-step shadow work.
        let old = self.counters.instrs;
        let want = old.saturating_add(cost as u64);
        if want <= self.limits.fuel
            && (want >> 14) == (old >> 14)
            && !matches!(self.mode, ExecMode::Valgrind | ExecMode::Purify)
        {
            self.counters.instrs = want;
            return Ok(());
        }
        self.add_instrs_slow(cost)
    }

    #[cold]
    fn add_instrs_slow(&mut self, cost: u32) -> Result<(), RtError> {
        if cost == 0 {
            return Ok(());
        }
        let old = self.counters.instrs;
        let want = old.saturating_add(cost as u64);
        let fuel = self.limits.fuel;
        // How many of the `cost` steps the tree engine would have completed:
        // each step first counts itself (with its mode work), then fails if
        // the total exceeds the fuel — so the failing step is still counted.
        let taken = if want > fuel {
            fuel.saturating_add(1).saturating_sub(old).min(cost as u64)
        } else {
            cost as u64
        };
        self.counters.instrs = old + taken;
        match self.mode {
            ExecMode::Valgrind => {
                self.counters.jit_instrs += taken;
                for _ in 0..taken {
                    self.rng = self.rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
            }
            ExecMode::Purify => self.counters.bt_instrs += taken,
            _ => {}
        }
        // The tree engine fails the step that pushes `instrs` past the fuel
        // even though that step is counted — so a batch whose *last* step is
        // the failing one must error too, not just one cut short.
        if want > fuel {
            return Err(RtError::OutOfFuel);
        }
        // Poll once if the batch crossed a 0x4000-instruction boundary. (If
        // several steps of one batch straddle the boundary *and* run out of
        // fuel, the tree engine may have squeezed in one extra armed-deadline
        // poll; deadline runs are wall-clock-dependent either way.)
        if (old + taken) >> 14 > old >> 14 {
            self.poll_deadline()?;
        }
        Ok(())
    }

    fn poll_deadline(&mut self) -> Result<(), RtError> {
        if let Some(t) = self.deadline_at {
            self.counters.limit_checks += 1;
            if Instant::now() > t {
                return Err(RtError::LimitExceeded {
                    limit: "deadline",
                    detail: format!(
                        "wall-clock deadline of {:?} passed",
                        self.limits.deadline.unwrap_or_default()
                    ),
                });
            }
        }
        Ok(())
    }

    pub(crate) fn eval(&mut self, e: &Exp) -> Result<Value, RtError> {
        self.step()?;
        match e {
            Exp::Const(Const::Int(v, _), _) => Ok(Value::Int(*v)),
            Exp::Const(Const::Float(v, _), _) => Ok(Value::Float(*v)),
            Exp::SizeOf(_, n, _) => Ok(Value::Int(*n as i128)),
            Exp::FnAddr(f, _) => Ok(Value::Ptr(PtrVal::Fn(*f))),
            Exp::Load(lv, ty) => {
                let place = self.resolve_lval(lv)?;
                self.load_place(place, *ty)
            }
            Exp::AddrOf(lv, ty) => {
                let p = match self.resolve_lval(lv)? {
                    Place::Mem(p) => p,
                    Place::Reg(_) => {
                        return Err(RtError::Unsupported(
                            "address of register-allocated local".into(),
                        ))
                    }
                };
                Ok(Value::Ptr(self.make_ptr(p, *ty, None)?))
            }
            Exp::StartOf(lv, ty) => {
                let arr_ty = self.lval_type(lv)?;
                let p = match self.resolve_lval(lv)? {
                    Place::Mem(p) => p,
                    Place::Reg(_) => return Err(RtError::Unsupported("array in register".into())),
                };
                let extent = match self.prog.types.get(arr_ty) {
                    Type::Array(elem, Some(n)) => Some(n * self.elem_size(*elem)?),
                    _ => None,
                };
                Ok(Value::Ptr(self.make_ptr(p, *ty, extent)?))
            }
            Exp::Unop(op, x, ty) => {
                let v = self.eval(x)?;
                self.apply_unop(*op, v, *ty)
            }
            Exp::Binop(op, a, b, ty) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                self.apply_binop(*op, va, vb, a.ty(), *ty)
            }
            Exp::Cast(id, x, _) => {
                let v = self.eval(x)?;
                self.eval_cast(*id, v)
            }
        }
    }

    /// `rttiOf` with a per-interpreter cache (the hierarchy lookup is a
    /// linear scan, too hot for per-cast use).
    fn node_of_cached(&mut self, hier: &Hierarchy, t: TypeId) -> u32 {
        if let Some(&n) = self.node_cache.get(&t.0) {
            return n;
        }
        let n = hier
            .node_of(self.prog, t)
            .unwrap_or(ccured::hierarchy::VOID_NODE);
        self.node_cache.insert(t.0, n);
        n
    }

    /// Builds a pointer value for `&lval`/`startof(lval)` according to the
    /// target pointer type's inferred kind.
    pub(crate) fn make_ptr(
        &mut self,
        p: Pointer,
        ptr_ty: TypeId,
        extent: Option<u64>,
    ) -> Result<PtrVal, RtError> {
        let (pointee, q) = match self.prog.types.ptr_parts(ptr_ty) {
            Some(x) => x,
            None => return Ok(PtrVal::Safe(p)),
        };
        Ok(match self.mode {
            ExecMode::Cured { sol, hier } => {
                let size = self.elem_size(pointee)?;
                match sol.kind(q) {
                    PtrKind::Safe if sol.is_rtti(q) => {
                        let node = self.node_of_cached(hier, pointee);
                        PtrVal::Rtti { p, node }
                    }
                    // An array decay knows its extent even when the decayed
                    // qualifier is SAFE; carrying the bounds through the
                    // SAFE hop mirrors CCured's creation of b/e metadata at
                    // the decay site (a later SEQ conversion must not end up
                    // with one-element bounds for a whole array).
                    PtrKind::Safe => match extent {
                        Some(e) => PtrVal::Seq {
                            p,
                            lo: p.offset,
                            hi: p.offset + e as i64,
                        },
                        None => PtrVal::Safe(p),
                    },
                    PtrKind::Seq => {
                        let hi = p.offset + extent.unwrap_or(size) as i64;
                        PtrVal::Seq {
                            p,
                            lo: p.offset,
                            hi,
                        }
                    }
                    PtrKind::Wild => {
                        let alloc_size = self.mem.allocation(p.alloc).size() as i64;
                        PtrVal::Wild {
                            p,
                            lo: 0,
                            hi: alloc_size,
                        }
                    }
                }
            }
            _ => PtrVal::Safe(p),
        })
    }

    pub(crate) fn apply_unop(&mut self, op: UnOp, v: Value, ty: TypeId) -> Result<Value, RtError> {
        Ok(match (op, v) {
            (UnOp::Neg, Value::Int(x)) => Value::Int(self.trunc_to(ty, x.wrapping_neg())),
            (UnOp::Neg, Value::Float(x)) => Value::Float(-x),
            (UnOp::BitNot, Value::Int(x)) => Value::Int(self.trunc_to(ty, !x)),
            (UnOp::Not, v) => Value::Int(if v.is_truthy() { 0 } else { 1 }),
            (op, v) => return Err(RtError::Unsupported(format!("unary {op:?} on {v:?}"))),
        })
    }

    pub(crate) fn apply_binop(
        &mut self,
        op: BinOp,
        a: Value,
        b: Value,
        a_ty: TypeId,
        res_ty: TypeId,
    ) -> Result<Value, RtError> {
        use BinOp::*;
        match op {
            PlusPI | MinusPI => {
                let pv = a.as_ptr().ok_or_else(|| {
                    RtError::Unsupported("pointer arithmetic on non-pointer".into())
                })?;
                let n = b.as_int().ok_or_else(|| {
                    RtError::Unsupported("pointer arithmetic with non-integer".into())
                })?;
                let elem = match self.prog.types.ptr_parts(a_ty) {
                    Some((t, _)) => self.elem_size(t)?,
                    None => 1,
                };
                let delta = (n as i64).wrapping_mul(elem as i64);
                let delta = if op == MinusPI { -delta } else { delta };
                self.ptr_arith_hook(&pv)?;
                Ok(Value::Ptr(pv.offset_by(delta)))
            }
            MinusPP => {
                let pa = a.as_ptr().and_then(|p| p.thin());
                let pb = b.as_ptr().and_then(|p| p.thin());
                let elem = match self.prog.types.ptr_parts(a_ty) {
                    Some((t, _)) => self.elem_size(t)?,
                    None => 1,
                } as i128;
                let diff = match (pa, pb) {
                    (Some(x), Some(y)) if x.alloc == y.alloc => (x.offset - y.offset) as i128,
                    _ => {
                        let va = a.as_ptr().map(|p| self.mem.va_of(&p)).unwrap_or(0) as i128;
                        let vb = b.as_ptr().map(|p| self.mem.va_of(&p)).unwrap_or(0) as i128;
                        va - vb
                    }
                };
                Ok(Value::Int(diff / elem))
            }
            Lt | Gt | Le | Ge | Eq | Ne => {
                let r = match (a, b) {
                    (Value::Float(x), Value::Float(y)) => compare_f(op, x, y),
                    (Value::Int(x), Value::Int(y)) => compare_i(op, x, y),
                    (Value::Ptr(x), Value::Ptr(y)) => {
                        let vx = self.mem.va_of(&x) as i128;
                        let vy = self.mem.va_of(&y) as i128;
                        compare_i(op, vx, vy)
                    }
                    (Value::Ptr(x), Value::Int(y)) => compare_i(op, self.mem.va_of(&x) as i128, y),
                    (Value::Int(x), Value::Ptr(y)) => compare_i(op, x, self.mem.va_of(&y) as i128),
                    (x, y) => {
                        return Err(RtError::Unsupported(format!(
                            "comparison between {x:?} and {y:?}"
                        )))
                    }
                };
                Ok(Value::Int(r as i128))
            }
            _ => {
                // Pure arithmetic.
                match (a, b) {
                    (Value::Float(x), Value::Float(y)) => {
                        let r = match op {
                            Add => x + y,
                            Sub => x - y,
                            Mul => x * y,
                            Div => x / y,
                            _ => {
                                return Err(RtError::Unsupported(format!("float operator {op:?}")))
                            }
                        };
                        Ok(Value::Float(r))
                    }
                    (Value::Int(x), Value::Int(y)) => {
                        let r = match op {
                            Add => x.wrapping_add(y),
                            Sub => x.wrapping_sub(y),
                            Mul => x.wrapping_mul(y),
                            Div => {
                                if y == 0 {
                                    return Err(RtError::DivByZero);
                                }
                                x.wrapping_div(y)
                            }
                            Rem => {
                                if y == 0 {
                                    return Err(RtError::DivByZero);
                                }
                                x.wrapping_rem(y)
                            }
                            Shl => x.wrapping_shl((y & 63) as u32),
                            Shr => x.wrapping_shr((y & 63) as u32),
                            BitAnd => x & y,
                            BitXor => x ^ y,
                            BitOr => x | y,
                            _ => unreachable!("handled above"),
                        };
                        Ok(Value::Int(self.trunc_to(res_ty, r)))
                    }
                    (x, y) => Err(RtError::Unsupported(format!(
                        "operator {op:?} between {x:?} and {y:?}"
                    ))),
                }
            }
        }
    }

    /// Size of a type that must be sized to execute this operation; a
    /// genuinely unsized or incomplete type surfaces as a graceful
    /// [`RtError::Unsupported`] instead of a silently guessed size.
    pub(crate) fn sized(&self, ty: TypeId, what: &str) -> Result<u64, RtError> {
        self.prog
            .types
            .size_of(ty)
            .map_err(|e| RtError::Unsupported(format!("{what}: {e}")))
    }

    /// Element size for pointer arithmetic and extent math. `void *`
    /// arithmetic deliberately uses 1-byte elements (the GNU C semantics the
    /// corpus relies on); any other unsized element type is an error.
    pub(crate) fn elem_size(&self, ty: TypeId) -> Result<u64, RtError> {
        if matches!(self.prog.types.get(ty), Type::Void) {
            return Ok(1);
        }
        self.sized(ty, "pointer arithmetic element")
    }

    /// Truncates an integer to the width/signedness of `ty`.
    fn trunc_to(&self, ty: TypeId, v: i128) -> i128 {
        match self.prog.types.get(ty) {
            Type::Int(k) => trunc_int(v, *k, &self.prog.types.machine),
            _ => v,
        }
    }

    // ---------------------------------------------------------------- casts

    pub(crate) fn eval_cast(&mut self, id: CastId, v: Value) -> Result<Value, RtError> {
        let site = &self.prog.casts[id.idx()];
        let types = &self.prog.types;
        let from_ptr = types.ptr_parts(site.from);
        let to_ptr = types.ptr_parts(site.to);
        match (from_ptr, to_ptr) {
            (None, None) => {
                // Numeric conversion.
                Ok(match (types.get(site.to), v) {
                    (Type::Int(k), Value::Float(f)) => {
                        Value::Int(trunc_int(f as i128, *k, &types.machine))
                    }
                    (Type::Int(k), Value::Int(x)) => Value::Int(trunc_int(x, *k, &types.machine)),
                    (Type::Float(_), Value::Int(x)) => Value::Float(x as f64),
                    (Type::Float(fk), Value::Float(f)) => {
                        if matches!(fk, ccured_cil::types::FloatKind::Float) {
                            Value::Float(f as f32 as f64)
                        } else {
                            Value::Float(f)
                        }
                    }
                    (_, v) => v,
                })
            }
            (Some(_), None) => {
                // Pointer to integer: the virtual address.
                let p = v
                    .as_ptr()
                    .ok_or_else(|| RtError::Unsupported("ptr-to-int of non-pointer".into()))?;
                let va = self.mem.va_of(&p) as i128;
                Ok(Value::Int(self.trunc_to(site.to, va)))
            }
            (None, Some((_, tq))) => {
                // Integer to pointer.
                let x = v
                    .as_int()
                    .ok_or_else(|| RtError::Unsupported("int-to-ptr of non-integer".into()))?;
                if x == 0 {
                    return Ok(Value::NULL);
                }
                match self.mode {
                    ExecMode::Cured { sol, .. } => {
                        // Figure 10: b = null — a disguised integer.
                        let _ = sol.kind(tq);
                        Ok(Value::Ptr(PtrVal::IntVal(x as u64)))
                    }
                    _ => {
                        // Original C: resurrect via the address map if
                        // possible (round-trip casts are common C).
                        match self.mem.ptr_of_va(x as u64) {
                            Some(p) => Ok(Value::Ptr(PtrVal::Safe(p))),
                            None => Ok(Value::Ptr(PtrVal::IntVal(x as u64))),
                        }
                    }
                }
            }
            (Some((fb, _fq)), Some((tb, tq))) => {
                let pv = v
                    .as_ptr()
                    .ok_or_else(|| RtError::Unsupported("ptr cast of non-pointer".into()))?;
                match self.mode {
                    ExecMode::Cured { sol, hier } => {
                        self.counters.fat_converts += 1;
                        let target_kind = sol.kind(tq);
                        let target_rtti = sol.is_rtti(tq);
                        Ok(Value::Ptr(self.convert_repr(
                            pv,
                            site,
                            fb,
                            tb,
                            target_kind,
                            target_rtti,
                            hier,
                        )?))
                    }
                    _ => Ok(Value::Ptr(pv)),
                }
            }
        }
    }

    /// Converts a pointer representation at a cast (cured mode).
    #[allow(clippy::too_many_arguments)]
    fn convert_repr(
        &mut self,
        pv: PtrVal,
        site: &CastSite,
        fb: TypeId,
        tb: TypeId,
        target_kind: PtrKind,
        target_rtti: bool,
        hier: &Hierarchy,
    ) -> Result<PtrVal, RtError> {
        if pv.is_null() {
            return Ok(PtrVal::Null);
        }
        if let PtrVal::Fn(f) = pv {
            return Ok(PtrVal::Fn(f));
        }
        if let PtrVal::IntVal(x) = pv {
            return Ok(PtrVal::IntVal(x));
        }
        let p = pv
            .thin()
            .ok_or_else(|| RtError::Internal("cast of a pointer with no memory position".into()))?;
        // Trusted and allocator casts may fabricate metadata from the
        // actual allocation (the runtime knows the real extent).
        let alloc_extent = || {
            let size = self.mem.allocation(p.alloc).size() as i64;
            (0i64, size)
        };
        Ok(match (target_kind, target_rtti) {
            (PtrKind::Safe, false) => PtrVal::Safe(p),
            (PtrKind::Safe, true) => {
                let node = match pv {
                    PtrVal::Rtti { node, .. } => node,
                    _ if site.alloc || site.trusted => {
                        // Fresh or trusted memory is typed at the target.
                        self.node_of_cached(hier, tb)
                    }
                    _ => {
                        // SAFE -> RTTI upcast records the static source type
                        // (paper Figure 2).
                        self.node_of_cached(hier, fb)
                    }
                };
                PtrVal::Rtti { p, node }
            }
            (PtrKind::Seq, _) => match pv {
                PtrVal::Seq { lo, hi, .. } | PtrVal::Wild { lo, hi, .. } => {
                    PtrVal::Seq { p, lo, hi }
                }
                _ if site.trusted || site.alloc => {
                    let (lo, hi) = alloc_extent();
                    PtrVal::Seq { p, lo, hi }
                }
                _ => {
                    // SAFE -> SEQ: bounds are one element of the source type
                    // (Figure 11) — except for a pointer to the start of a
                    // heap allocation, whose true extent is known (CCured's
                    // allocator wrappers return SEQ pointers spanning the
                    // whole allocation; the SAFE hop in between must not
                    // lose that).
                    let alloc = self.mem.allocation(p.alloc);
                    if p.offset == 0 && matches!(alloc.kind, AllocKind::Heap) {
                        PtrVal::Seq {
                            p,
                            lo: 0,
                            hi: alloc.size() as i64,
                        }
                    } else {
                        let size = self.elem_size(fb)? as i64;
                        PtrVal::Seq {
                            p,
                            lo: p.offset,
                            hi: p.offset + size,
                        }
                    }
                }
            },
            (PtrKind::Wild, _) => match pv {
                PtrVal::Wild { lo, hi, .. } | PtrVal::Seq { lo, hi, .. } => {
                    PtrVal::Wild { p, lo, hi }
                }
                _ => {
                    let (lo, hi) = alloc_extent();
                    PtrVal::Wild { p, lo, hi }
                }
            },
        })
    }

    // ------------------------------------------------------------- lvalues

    /// The static type of an lvalue in the current frame.
    fn lval_type(&self, lv: &Lval) -> Result<TypeId, RtError> {
        Ok(ccured_infer::gen::lval_type(
            self.prog,
            self.cur_func()?,
            lv,
        ))
    }

    fn resolve_lval(&mut self, lv: &Lval) -> Result<Place, RtError> {
        let mut cur: Place;
        let mut ty: TypeId;
        match &lv.base {
            LvBase::Local(l) => {
                ty = self.cur_func()?.locals[l.idx()].ty;
                match self.frame()?.slots[l.idx()] {
                    LocalSlot::Reg => {
                        if lv.offsets.is_empty() {
                            return Ok(Place::Reg(*l));
                        }
                        return Err(RtError::Unsupported(
                            "offsets into register-allocated local".into(),
                        ));
                    }
                    LocalSlot::Mem(a) => {
                        cur = Place::Mem(Pointer {
                            alloc: a,
                            offset: 0,
                        });
                    }
                }
            }
            LvBase::Global(g) => {
                ty = self.prog.globals[g.idx()].ty;
                cur = Place::Mem(Pointer {
                    alloc: self.globals[g.idx()],
                    offset: 0,
                });
            }
            LvBase::Deref(e) => {
                ty = match self.prog.types.ptr_parts(e.ty()) {
                    Some((t, _)) => t,
                    None => return Err(RtError::Unsupported("deref of non-pointer type".into())),
                };
                let v = self.eval(e)?;
                let pv = v
                    .as_ptr()
                    .ok_or_else(|| RtError::Unsupported("deref of non-pointer value".into()))?;
                self.deref_hook(&pv)?;
                let p = match pv {
                    PtrVal::Null => return Err(RtError::NullDeref),
                    PtrVal::IntVal(x) => {
                        return Err(RtError::InvalidPointer(format!(
                            "integer {x:#x} dereferenced"
                        )))
                    }
                    PtrVal::Fn(_) => {
                        return Err(RtError::InvalidPointer(
                            "function pointer dereferenced".into(),
                        ))
                    }
                    other => other.thin().ok_or_else(|| {
                        RtError::Internal("dereferenced pointer has no memory position".into())
                    })?,
                };
                cur = Place::Mem(p);
            }
        }
        for off in &lv.offsets {
            let p = match cur {
                Place::Mem(p) => p,
                Place::Reg(_) => unreachable!("register places have no offsets"),
            };
            match off {
                Offset::Field(cid, idx) => {
                    let f = &self.prog.types.comp(*cid).fields[*idx];
                    cur = Place::Mem(p.offset_by(f.offset as i64));
                    ty = f.ty;
                }
                Offset::Index(e) => {
                    let (elem, es) = match self.prog.types.get(ty) {
                        Type::Array(elem, _) => (*elem, self.sized(*elem, "array element")?),
                        _ => return Err(RtError::Unsupported("index into non-array".into())),
                    };
                    let i = self
                        .eval(e)?
                        .as_int()
                        .ok_or_else(|| RtError::Unsupported("non-integer index".into()))?;
                    cur = Place::Mem(p.offset_by(i as i64 * es as i64));
                    ty = elem;
                }
            }
        }
        Ok(cur)
    }

    pub(crate) fn load_place(&mut self, place: Place, ty: TypeId) -> Result<Value, RtError> {
        match place {
            Place::Reg(l) => match self.frame()?.regs[l.idx()] {
                Some(v) => Ok(v),
                // The zeroing allocator extends to register-allocated
                // locals: real CCured programs never observe garbage.
                None if self.zero_init => Ok(self.zero_value(ty)),
                None => Err(RtError::UninitRead),
            },
            Place::Mem(p) => {
                let size = self.sized(ty, "load")?;
                self.access_hook(p, size, false)?;
                self.counters.loads += 1;
                match self.prog.types.get(ty) {
                    Type::Int(k) => Ok(Value::Int(self.mem.read_int(
                        p,
                        self.prog.types.machine.int_size(*k),
                        k.is_signed(),
                    )?)),
                    Type::Float(fk) => Ok(Value::Float(
                        self.mem
                            .read_float(p, self.prog.types.machine.float_size(*fk))?,
                    )),
                    Type::Ptr(_, q) => {
                        let v = self.mem.read_ptr(p, self.word)?;
                        if let ExecMode::Cured { sol, .. } = self.mode {
                            if sol.is_split(*q) {
                                // Split representation: the metadata lives in
                                // the parallel structure; loading pays the
                                // second (shadow) access.
                                self.counters.meta_ops += 1;
                            }
                        }
                        Ok(Value::Ptr(v))
                    }
                    other => Err(RtError::Unsupported(format!("load of {other:?}"))),
                }
            }
        }
    }

    pub(crate) fn store_local(&mut self, l: LocalId, ty: TypeId, v: Value) -> Result<(), RtError> {
        match self.frame()?.slots[l.idx()] {
            LocalSlot::Reg => {
                let v = self.normalize_scalar(ty, v);
                self.frame_mut()?.regs[l.idx()] = Some(v);
                Ok(())
            }
            LocalSlot::Mem(a) => {
                let p = Pointer {
                    alloc: a,
                    offset: 0,
                };
                // By-value aggregate binding: the caller passed the source
                // address; materialize the copy into the fresh local.
                if matches!(self.prog.types.get(ty), Type::Comp(_) | Type::Array(..)) {
                    let src = match v {
                        Value::Ptr(pv) => pv.thin().ok_or(RtError::NullDeref)?,
                        _ => {
                            return Err(RtError::Unsupported(
                                "aggregate parameter needs an address".into(),
                            ))
                        }
                    };
                    let size = self.sized(ty, "aggregate parameter")?;
                    self.counters.loads += 1;
                    self.counters.stores += 1;
                    return self.mem.copy_region(p, src, size);
                }
                self.store_typed(p, ty, v)
            }
        }
    }

    pub(crate) fn store_lval(&mut self, lv: &Lval, ty: TypeId, v: Value) -> Result<(), RtError> {
        match self.resolve_lval(lv)? {
            Place::Reg(l) => {
                let v = self.normalize_scalar(ty, v);
                self.frame_mut()?.regs[l.idx()] = Some(v);
                Ok(())
            }
            Place::Mem(p) => {
                // WILD stores through a deref update the area's tags.
                let mut wild_tag = false;
                if self.mode.is_cured() && lv.is_deref() {
                    if let LvBase::Deref(e) = &lv.base {
                        if let (Some((_, q)), ExecMode::Cured { sol, .. }) =
                            (self.prog.types.ptr_parts(e.ty()), self.mode)
                        {
                            wild_tag = sol.kind(q) == PtrKind::Wild;
                        }
                    }
                }
                self.store_mem_checked(p, ty, v, wild_tag)
            }
        }
    }

    /// Stores a scalar into memory with cured-mode stack-escape enforcement.
    /// `wild_tag` marks destinations reached through a WILD dereference,
    /// which pay the tag-bitmap upkeep. Shared by both engines.
    pub(crate) fn store_mem_checked(
        &mut self,
        p: Pointer,
        ty: TypeId,
        v: Value,
        wild_tag: bool,
    ) -> Result<(), RtError> {
        self.store_precheck(p, &v, wild_tag)?;
        self.store_typed(p, ty, v)
    }

    /// Pre-store enforcement shared by both engines: stack-escape rejection
    /// and WILD tag-bitmap upkeep (cured mode only).
    #[inline]
    pub(crate) fn store_precheck(
        &mut self,
        p: Pointer,
        v: &Value,
        wild_tag: bool,
    ) -> Result<(), RtError> {
        // Stack-escape enforcement (cured mode): storing a stack
        // pointer into a heap or global allocation is rejected.
        if self.mode.is_cured() {
            if let Value::Ptr(pv) = v {
                if let Some(tp) = pv.thin() {
                    let val_kind = self.mem.allocation(tp.alloc).kind;
                    let dst_kind = self.mem.allocation(p.alloc).kind;
                    if matches!(val_kind, AllocKind::Stack { .. })
                        && !matches!(dst_kind, AllocKind::Stack { .. })
                    {
                        return Err(RtError::CheckFailed {
                            check: "no_stack_escape",
                            detail: "stack pointer stored into the heap".into(),
                        });
                    }
                }
            }
            if wild_tag {
                self.counters.tag_updates += 1;
            }
        }
        Ok(())
    }

    /// The zero value of a scalar type (zeroing-allocator semantics).
    pub(crate) fn zero_value(&self, ty: TypeId) -> Value {
        match self.prog.types.get(ty) {
            Type::Float(_) => Value::Float(0.0),
            Type::Ptr(..) => Value::NULL,
            _ => Value::Int(0),
        }
    }

    /// Normalizes a scalar value to its declared type (integer truncation).
    pub(crate) fn normalize_scalar(&self, ty: TypeId, v: Value) -> Value {
        match (self.prog.types.get(ty), v) {
            (Type::Int(k), Value::Int(x)) => Value::Int(trunc_int(x, *k, &self.prog.types.machine)),
            (Type::Int(k), Value::Float(f)) => {
                Value::Int(trunc_int(f as i128, *k, &self.prog.types.machine))
            }
            (Type::Float(ccured_cil::types::FloatKind::Float), Value::Float(f)) => {
                Value::Float(f as f32 as f64)
            }
            (Type::Float(_), Value::Int(x)) => Value::Float(x as f64),
            _ => v,
        }
    }

    pub(crate) fn store_typed(&mut self, p: Pointer, ty: TypeId, v: Value) -> Result<(), RtError> {
        let size = self.sized(ty, "store")?;
        self.access_hook(p, size, true)?;
        self.counters.stores += 1;
        match (self.prog.types.get(ty), v) {
            (Type::Int(k), v) => {
                let x = match v {
                    Value::Int(x) => x,
                    Value::Float(f) => f as i128,
                    Value::Ptr(pv) => self.mem.va_of(&pv) as i128,
                };
                self.mem.write_int(
                    p,
                    self.prog.types.machine.int_size(*k),
                    trunc_int(x, *k, &self.prog.types.machine),
                )
            }
            (Type::Float(fk), v) => {
                let f = match v {
                    Value::Float(f) => f,
                    Value::Int(x) => x as f64,
                    Value::Ptr(_) => {
                        return Err(RtError::Unsupported("pointer stored as float".into()))
                    }
                };
                self.mem
                    .write_float(p, self.prog.types.machine.float_size(*fk), f)
            }
            (Type::Ptr(_, q), v) => {
                let pv = match v {
                    Value::Ptr(pv) => pv,
                    Value::Int(0) => PtrVal::Null,
                    Value::Int(x) => PtrVal::IntVal(x as u64),
                    Value::Float(_) => {
                        return Err(RtError::Unsupported("float stored as pointer".into()))
                    }
                };
                if let ExecMode::Cured { sol, .. } = self.mode {
                    if sol.is_split(*q) {
                        self.counters.meta_ops += 1;
                    }
                }
                self.mem.write_ptr(p, pv, self.word)
            }
            (other, _) => Err(RtError::Unsupported(format!("store of {other:?}"))),
        }
    }

    // -------------------------------------------------------- baseline hooks

    /// Registers an allocation in baseline shadow structures. Every
    /// allocation the interpreter or a builtin makes flows through here, so
    /// this is also where the zeroing-allocator mode marks fresh memory
    /// initialized, and where the per-allocation limit consultation is
    /// tallied for the sandbox-overhead accounting.
    pub(crate) fn register_alloc(&mut self, id: AllocId) {
        self.counters.limit_checks += 1;
        if self.zero_init {
            self.mem.mark_init(id);
        }
        match self.mode {
            ExecMode::Purify | ExecMode::Valgrind => {
                let size = self.mem.allocation(id).size() as usize;
                self.shadow.insert(id.0, vec![0u8; size]);
                self.counters.shadow_ops += size as u64;
            }
            ExecMode::JonesKelly => {
                let base = (id.0 as u64 + 1) << 32;
                let size = self.mem.allocation(id).size();
                self.registry.insert(base, size);
                self.counters.registry_lookups += 1;
            }
            _ => {}
        }
    }

    /// Per-access shadow work for the baselines.
    pub(crate) fn access_hook(
        &mut self,
        p: Pointer,
        size: u64,
        write: bool,
    ) -> Result<(), RtError> {
        match self.mode {
            ExecMode::Purify => {
                // Two status bits per byte: addressable | initialized.
                if let Some(sh) = self.shadow.get_mut(&p.alloc.0) {
                    let off = p.offset.max(0) as usize;
                    for b in sh.iter_mut().skip(off).take(size as usize) {
                        if write {
                            *b |= 0b11;
                        } else {
                            // Read: consult the bits (work is the point).
                            std::hint::black_box(*b);
                        }
                    }
                }
                self.counters.shadow_ops += 4 + size;
                Ok(())
            }
            ExecMode::Valgrind => {
                // 9 shadow bits per byte (V bits + A bit): heavier upkeep.
                if let Some(sh) = self.shadow.get_mut(&p.alloc.0) {
                    let off = p.offset.max(0) as usize;
                    for b in sh.iter_mut().skip(off).take(size as usize) {
                        if write {
                            *b = 0xff;
                        } else {
                            std::hint::black_box(*b);
                        }
                    }
                }
                self.counters.shadow_ops += size * 3;
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Jones–Kelly: pointer dereferences consult the object registry.
    pub(crate) fn deref_hook(&mut self, pv: &PtrVal) -> Result<(), RtError> {
        if let ExecMode::JonesKelly = self.mode {
            if let Some(p) = pv.thin() {
                let va = self.mem.va_of(&PtrVal::Safe(p));
                // Range query: the greatest base <= va.
                let hit = self.registry.range(..=va).next_back();
                std::hint::black_box(hit);
                self.counters.registry_lookups += 1;
            }
        }
        Ok(())
    }

    /// Jones–Kelly: pointer arithmetic also consults the registry.
    pub(crate) fn ptr_arith_hook(&mut self, pv: &PtrVal) -> Result<(), RtError> {
        self.deref_hook(pv)
    }
}

pub(crate) fn no_frame() -> RtError {
    RtError::Internal("no active frame".into())
}

/// The expression a check evaluates (its only operand). The loop-optimizer
/// guard machinery (`Probe`/`Guarded`/`GuardReset`) has no single operand
/// of its own and is executed structurally instead.
pub(crate) fn check_operand(c: &Check) -> Option<&Exp> {
    match c {
        Check::Null { ptr }
        | Check::SeqBounds { ptr, .. }
        | Check::SeqToSafe { ptr, .. }
        | Check::WildBounds { ptr, .. }
        | Check::WildTag { ptr }
        | Check::Rtti { ptr, .. }
        | Check::Temporal { ptr } => Some(ptr),
        Check::NoStackEscape { value } => Some(value),
        Check::IndexBound { index, .. } => Some(index),
        Check::Probe { .. } | Check::Guarded { .. } | Check::GuardReset { .. } => None,
    }
}

pub(crate) fn compare_i(op: BinOp, a: i128, b: i128) -> bool {
    match op {
        BinOp::Lt => a < b,
        BinOp::Gt => a > b,
        BinOp::Le => a <= b,
        BinOp::Ge => a >= b,
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        _ => unreachable!("not a comparison"),
    }
}

pub(crate) fn compare_f(op: BinOp, a: f64, b: f64) -> bool {
    match op {
        BinOp::Lt => a < b,
        BinOp::Gt => a > b,
        BinOp::Le => a <= b,
        BinOp::Ge => a >= b,
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        _ => unreachable!("not a comparison"),
    }
}

/// Truncates `v` to the width and signedness of `k`.
pub fn trunc_int(v: i128, k: IntKind, machine: &ccured_cil::types::Machine) -> i128 {
    let bits = machine.int_size(k) * 8;
    if bits >= 128 {
        return v;
    }
    let shift = 128 - bits as u32;
    if k.is_signed() {
        (v << shift) >> shift
    } else {
        ((v << shift) as u128 >> shift) as i128
    }
}

/// Did the cast site classify as a downcast? (Utility for tests.)
pub fn is_downcast(prog: &Program, id: CastId) -> bool {
    let mut phys = ccured_cil::phys::PhysCtx::new(&prog.types);
    let site = &prog.casts[id.idx()];
    phys.classify_cast(site.from, site.to) == CastClass::Downcast
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_original(src: &str) -> Result<i64, RtError> {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        let mut i = Interp::new(&prog, ExecMode::Original);
        i.run()
    }

    fn run_cured(src: &str) -> Result<i64, RtError> {
        let cured = ccured::Curer::new().cure_source(src).expect("cure");
        let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
        i.run()
    }

    fn run_both(src: &str) -> (Result<i64, RtError>, Result<i64, RtError>) {
        (run_original(src), run_cured(src))
    }

    #[test]
    fn arithmetic_and_locals() {
        let (o, c) = run_both("int main(void) { int a = 6; int b = 7; return a * b; }");
        assert_eq!(o.unwrap(), 42);
        assert_eq!(c.unwrap(), 42);
    }

    #[test]
    fn control_flow_loops() {
        let src = "int main(void) { int s = 0; for (int i = 1; i <= 10; i++) s += i; return s; }";
        let (o, c) = run_both(src);
        assert_eq!(o.unwrap(), 55);
        assert_eq!(c.unwrap(), 55);
    }

    #[test]
    fn while_do_while_continue_break() {
        let src = "int main(void) {\n\
                     int s = 0; int i = 0;\n\
                     while (1) { i++; if (i > 10) break; if (i % 2) continue; s += i; }\n\
                     do { s++; } while (s < 31);\n\
                     return s;\n\
                   }";
        assert_eq!(run_original(src).unwrap(), 31);
        assert_eq!(run_cured(src).unwrap(), 31);
    }

    #[test]
    fn goto_forward_and_backward() {
        let src = "int main(void) {\n\
                     int i = 0;\n\
                     again: i++;\n\
                     if (i < 5) goto again;\n\
                     goto out;\n\
                     i = 100;\n\
                     out: return i;\n\
                   }";
        assert_eq!(run_original(src).unwrap(), 5);
        assert_eq!(run_cured(src).unwrap(), 5);
    }

    #[test]
    fn switch_with_fallthrough() {
        let src = "int classify(int x) {\n\
                     int r = 0;\n\
                     switch (x) {\n\
                       case 1:\n\
                       case 2: r = 12; break;\n\
                       case 3: r = 3;\n\
                       case 4: r += 100; break;\n\
                       default: r = -1;\n\
                     }\n\
                     return r;\n\
                   }\n\
                   int main(void) { return classify(1) + classify(3) + classify(9); }";
        assert_eq!(run_original(src).unwrap(), 12 + 103 - 1);
        assert_eq!(run_cured(src).unwrap(), 12 + 103 - 1);
    }

    #[test]
    fn arrays_and_pointers() {
        let src = "int main(void) {\n\
                     int a[5];\n\
                     for (int i = 0; i < 5; i++) a[i] = i * i;\n\
                     int *p = a;\n\
                     int s = 0;\n\
                     for (int i = 0; i < 5; i++) s += p[i];\n\
                     return s;\n\
                   }";
        assert_eq!(run_original(src).unwrap(), 30);
        assert_eq!(run_cured(src).unwrap(), 30);
    }

    #[test]
    fn structs_and_fields() {
        let src = "struct P { int x; int y; };\n\
                   int main(void) {\n\
                     struct P p;\n\
                     p.x = 3; p.y = 4;\n\
                     struct P q;\n\
                     q = p;\n\
                     return q.x * q.x + q.y * q.y;\n\
                   }";
        assert_eq!(run_original(src).unwrap(), 25);
        assert_eq!(run_cured(src).unwrap(), 25);
    }

    #[test]
    fn pointer_args_and_writes() {
        let src = "void bump(int *p) { *p = *p + 1; }\n\
                   int main(void) { int x = 41; bump(&x); return x; }";
        assert_eq!(run_original(src).unwrap(), 42);
        assert_eq!(run_cured(src).unwrap(), 42);
    }

    #[test]
    fn function_pointers_dispatch() {
        let src = "int inc(int x) { return x + 1; }\n\
                   int dbl(int x) { return x * 2; }\n\
                   int main(void) {\n\
                     int (*f)(int);\n\
                     f = inc;\n\
                     int a = f(10);\n\
                     f = dbl;\n\
                     return a + f(10);\n\
                   }";
        assert_eq!(run_original(src).unwrap(), 31);
        assert_eq!(run_cured(src).unwrap(), 31);
    }

    #[test]
    fn strings_and_globals() {
        let src = "char msg[6] = \"hello\";\n\
                   int main(void) { return msg[0] + msg[4]; }";
        assert_eq!(run_original(src).unwrap(), ('h' as i64) + ('o' as i64));
        assert_eq!(run_cured(src).unwrap(), ('h' as i64) + ('o' as i64));
    }

    #[test]
    fn oob_detected_in_cured_mode() {
        // a[6] is within main's stack allocation in real C (silent), but in
        // our model `a` is its own allocation, so both modes detect it —
        // original as ground truth, cured as a CHECK failure.
        let src = "int main(void) { int a[4]; for (int i = 0; i < 4; i++) a[i] = i; int j = 6; return a[j]; }";
        let (o, c) = run_both(src);
        assert!(o.unwrap_err().is_memory_error());
        let ce = c.unwrap_err();
        assert!(
            ce.is_check_failure(),
            "cured must fail via a check, got {ce}"
        );
    }

    #[test]
    fn interior_overflow_silent_in_original_caught_in_cured() {
        // Overflowing buf reaches the adjacent field inside the SAME struct
        // allocation: classic silent corruption in C, caught by CCured.
        let src = "struct S { char buf[4]; int secret; };\n\
                   int main(void) {\n\
                     struct S s;\n\
                     s.secret = 7;\n\
                     int i = 5;\n\
                     s.buf[i] = 42; /* overwrites part of secret */\n\
                     return s.secret;\n\
                   }";
        let (o, c) = run_both(src);
        let o = o.unwrap();
        assert_ne!(o, 7, "original mode silently corrupts the neighbour");
        let ce = c.unwrap_err();
        assert!(
            ce.is_check_failure(),
            "cured must catch the overflow, got {ce}"
        );
    }

    #[test]
    fn null_deref_caught() {
        let src = "int main(void) { int *p = 0; return *p; }";
        let (o, c) = run_both(src);
        assert_eq!(o.unwrap_err(), RtError::NullDeref);
        assert!(c.unwrap_err().is_check_failure());
    }

    #[test]
    fn seq_pointer_walk_in_bounds() {
        let src = "int main(void) {\n\
                     int a[8];\n\
                     for (int i = 0; i < 8; i++) a[i] = 1;\n\
                     int *p = a;\n\
                     int s = 0;\n\
                     while (p < a + 8) { s += *p; p++; }\n\
                     return s;\n\
                   }";
        assert_eq!(run_original(src).unwrap(), 8);
        assert_eq!(run_cured(src).unwrap(), 8);
    }

    #[test]
    fn seq_pointer_overrun_caught_by_cured() {
        let src = "int main(void) {\n\
                     int a[4];\n\
                     a[0] = 1; a[1] = 1; a[2] = 1; a[3] = 1;\n\
                     int *p = a;\n\
                     int s = 0;\n\
                     for (int i = 0; i < 6; i++) { s += *p; p++; }\n\
                     return s;\n\
                   }";
        let (o, c) = run_both(src);
        assert!(o.unwrap_err().is_memory_error());
        assert!(c.unwrap_err().is_check_failure());
    }

    #[test]
    fn downcast_good_and_bad() {
        let src = "struct Figure { int kind; } gf;\n\
                   struct Circle { int kind; int radius; } gc;\n\
                   int get_radius(struct Figure *f) {\n\
                     struct Circle *c;\n\
                     c = (struct Circle *)f;\n\
                     return c->radius;\n\
                   }\n\
                   int main(void) {\n\
                     struct Circle c;\n\
                     c.kind = 1; c.radius = 9;\n\
                     struct Figure *f = (struct Figure *)&c;\n\
                     return get_radius(f);\n\
                   }";
        assert_eq!(run_cured(src).unwrap(), 9, "legitimate downcast succeeds");

        let bad = "struct Figure { int kind; } gf;\n\
                   struct Circle { int kind; int radius; } gc;\n\
                   int get_radius(struct Figure *f) {\n\
                     struct Circle *c;\n\
                     c = (struct Circle *)f;\n\
                     return c->radius;\n\
                   }\n\
                   int main(void) {\n\
                     struct Figure g;\n\
                     g.kind = 0;\n\
                     return get_radius(&g);\n\
                   }";
        let c = run_cured(bad).unwrap_err();
        assert!(
            c.is_check_failure(),
            "bad downcast must fail the RTTI check, got {c}"
        );
    }

    #[test]
    fn cured_counts_checks() {
        let src = "int main(void) { int a[4]; int s = 0; for (int i = 0; i < 4; i++) { a[i] = i; s += a[i]; } return s; }";
        let cured = ccured::Curer::new().cure_source(src).expect("cure");
        let mut interp = Interp::new(&cured.program, ExecMode::cured(&cured));
        assert_eq!(interp.run().unwrap(), 6);
        assert!(interp.counters.index_checks > 0);
        assert!(interp.counters.total_checks() > 0);
    }

    #[test]
    fn baselines_run_and_count() {
        let src = "int main(void) { int a[16]; int s = 0; for (int i = 0; i < 16; i++) { a[i] = i; s += a[i]; } return s; }";
        let tu = ccured_ast::parse_translation_unit(src).unwrap();
        let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
        for mode in [ExecMode::Purify, ExecMode::Valgrind, ExecMode::JonesKelly] {
            let mut i = Interp::new(&prog, mode);
            assert_eq!(i.run().unwrap(), 120);
            match mode {
                ExecMode::Purify => assert!(i.counters.shadow_ops > 0),
                ExecMode::Valgrind => {
                    assert!(i.counters.shadow_ops > 0);
                    assert!(i.counters.jit_instrs > 0);
                }
                ExecMode::JonesKelly => assert!(i.counters.registry_lookups > 0),
                _ => {}
            }
        }
    }

    #[test]
    fn stack_escape_rejected_in_cured() {
        let src = "int *g;\n\
                   void save(int *p) { g = p; }\n\
                   int main(void) { int x = 5; save(&x); return *g; }";
        let c = run_cured(src).unwrap_err();
        assert!(
            matches!(&c, RtError::CheckFailed { check, .. } if *check == "no_stack_escape"),
            "got {c}"
        );
    }

    #[test]
    fn fuel_guard_stops_infinite_loops() {
        let src = "int main(void) { while (1) { } return 0; }";
        let tu = ccured_ast::parse_translation_unit(src).unwrap();
        let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
        let mut i = Interp::new(&prog, ExecMode::Original);
        i.set_fuel(10_000);
        assert_eq!(i.run().unwrap_err(), RtError::OutOfFuel);
    }

    #[test]
    fn uninitialized_local_read_detected() {
        let src = "int main(void) { int x; return x; }";
        assert_eq!(run_original(src).unwrap_err(), RtError::UninitRead);
    }

    #[test]
    fn use_after_return_detected_in_original() {
        let src = "int *f(void) { int x = 3; return &x; }\n\
                   int main(void) { int *p = f(); return *p; }";
        let o = run_original(src).unwrap_err();
        assert_eq!(o, RtError::UseAfterReturn);
    }

    #[test]
    fn runaway_recursion_trips_stack_limit_not_host_stack() {
        // The regression the sandbox exists for: before Limits landed this
        // blew the *host* stack. It must now return a graceful error with
        // the stable name `stack_limit`, in both modes, under the DEFAULT
        // limits (i.e. inside an ordinary 2 MiB test thread).
        let src = "int f(void) { return f(); }\n\
                   int main(void) { return f(); }";
        let (o, c) = run_both(src);
        for r in [o, c] {
            let e = r.unwrap_err();
            assert!(
                matches!(&e, RtError::LimitExceeded { limit, .. } if *limit == "stack_limit"),
                "got {e}"
            );
            assert!(e.is_resource_limit());
        }
    }

    #[test]
    fn heap_cap_trips_gracefully() {
        let src = "extern void *malloc(unsigned long n);\n\
                   int main(void) {\n\
                     while (1) { char *p = (char *)malloc(4096); *p = 1; }\n\
                     return 0;\n\
                   }";
        let tu = ccured_ast::parse_translation_unit(src).unwrap();
        let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
        let mut i = Interp::new(&prog, ExecMode::Original);
        i.set_limits(Limits {
            max_heap_bytes: 1 << 20,
            ..Limits::default()
        });
        let e = i.run().unwrap_err();
        assert!(
            matches!(&e, RtError::LimitExceeded { limit, .. } if *limit == "heap_limit"),
            "got {e}"
        );
        assert!(i.counters.peak_heap_bytes <= 1 << 20);
        assert!(i.counters.limit_checks > 0);
    }

    #[test]
    fn peak_counters_track_stack_and_heap() {
        let src = "extern void *malloc(unsigned long n);\n\
                   int down(int n) { if (n == 0) return 0; return down(n - 1); }\n\
                   int main(void) {\n\
                     char *p = (char *)malloc(1000);\n\
                     p[0] = 1;\n\
                     return down(20);\n\
                   }";
        let tu = ccured_ast::parse_translation_unit(src).unwrap();
        let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
        let mut i = Interp::new(&prog, ExecMode::Original);
        assert_eq!(i.run().unwrap(), 0);
        assert!(i.counters.peak_stack_depth >= 21, "main + 21 nested calls");
        assert!(i.counters.peak_heap_bytes >= 1000);
    }

    #[test]
    fn zero_init_models_the_zeroing_allocator() {
        // A register local and a malloc'd cell, both read uninitialized:
        // ground truth flags them; the zeroing allocator reads zero.
        let src = "extern void *malloc(unsigned long n);\n\
                   int main(void) {\n\
                     int x;\n\
                     int *p = (int *)malloc(sizeof(int));\n\
                     return x + *p;\n\
                   }";
        let tu = ccured_ast::parse_translation_unit(src).unwrap();
        let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
        let mut plain = Interp::new(&prog, ExecMode::Original);
        assert_eq!(plain.run().unwrap_err(), RtError::UninitRead);
        let mut zeroed = Interp::new(&prog, ExecMode::Original);
        zeroed.set_zero_init(true);
        assert_eq!(zeroed.run().unwrap(), 0);
    }

    #[test]
    fn deadline_expires_on_infinite_loop() {
        let src = "int main(void) { while (1) { } return 0; }";
        let tu = ccured_ast::parse_translation_unit(src).unwrap();
        let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
        let mut i = Interp::new(&prog, ExecMode::Original);
        i.set_limits(Limits {
            deadline: Some(std::time::Duration::from_millis(20)),
            ..Limits::default()
        });
        let e = i.run().unwrap_err();
        assert!(
            matches!(&e, RtError::LimitExceeded { limit, .. } if *limit == "deadline"),
            "got {e}"
        );
    }

    #[test]
    fn trunc_int_behaviour() {
        let m = ccured_cil::types::Machine::default();
        assert_eq!(trunc_int(300, IntKind::Char, &m), 44);
        assert_eq!(trunc_int(-1, IntKind::UChar, &m), 255);
        assert_eq!(trunc_int(0x1_0000_0001, IntKind::Int, &m), 1);
        assert_eq!(trunc_int(-5, IntKind::Long, &m), -5);
    }
}
