//! Event counters and the deterministic abstract cost model.
//!
//! Every run of the interpreter tallies [`Counters`]; a [`CostModel`]
//! converts them to abstract cycles. **Calibration policy** (see DESIGN.md):
//! the constants are chosen once, globally — never per experiment — so that
//! the *shape* of the paper's results (CCured ≈ 1.0–1.9×, Purify ≈ 25–100×,
//! Valgrind ≈ 9–130×, I/O-bound daemons ≈ 1.0×) emerges from the check
//! counts each workload actually incurs.

/// Event counts for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct Counters {
    /// Instructions executed (Set/Call, plus expression evaluation steps).
    pub instrs: u64,
    /// Memory loads.
    pub loads: u64,
    /// Memory stores.
    pub stores: u64,
    /// Function calls (defined functions).
    pub calls: u64,
    /// External/builtin calls.
    pub extern_calls: u64,
    /// I/O operations performed by builtins (dominates daemon workloads).
    pub io_ops: u64,
    /// Bytes moved by I/O builtins.
    pub io_bytes: u64,

    // CCured checks, executed dynamically.
    pub null_checks: u64,
    pub seq_bounds_checks: u64,
    pub seq_to_safe_checks: u64,
    pub wild_bounds_checks: u64,
    pub wild_tag_checks: u64,
    pub rtti_checks: u64,
    /// Total parent-chain steps walked by RTTI checks.
    pub rtti_walk_steps: u64,
    pub escape_checks: u64,
    pub index_checks: u64,
    /// Temporal lock-and-key comparisons (`--temporal`).
    pub temporal_checks: u64,
    /// WILD tag updates on stores through WILD pointers.
    pub tag_updates: u64,
    /// Fat-pointer representation conversions at casts.
    pub fat_converts: u64,
    /// SPLIT metadata maintenance operations (parallel-structure upkeep).
    pub meta_ops: u64,

    // Sandbox (execution-limit) accounting.
    /// Limit consultations: one per frame push, per allocation, and per
    /// deadline poll. These model the compare-and-branch the sandbox adds.
    pub limit_checks: u64,
    /// High-water mark of the guest call-stack depth.
    pub peak_stack_depth: u64,
    /// High-water mark of live guest heap bytes.
    pub peak_heap_bytes: u64,

    // Baseline instrumentation work.
    /// Purify/Valgrind shadow-memory byte operations.
    pub shadow_ops: u64,
    /// Valgrind per-instruction JIT dispatch events.
    pub jit_instrs: u64,
    /// Purify per-instruction binary-translation dispatch events.
    pub bt_instrs: u64,
    /// Jones–Kelly object-registry lookups.
    pub registry_lookups: u64,
}

impl Counters {
    /// Total dynamic CCured checks executed.
    pub fn total_checks(&self) -> u64 {
        self.null_checks
            + self.seq_bounds_checks
            + self.seq_to_safe_checks
            + self.wild_bounds_checks
            + self.wild_tag_checks
            + self.rtti_checks
            + self.escape_checks
            + self.index_checks
            + self.temporal_checks
    }

    /// Dynamic `CHECK_NULL` + `CHECK_BOUNDS` events — the subset the
    /// redundant-check eliminator (`ccured-analysis`) targets. Optimized
    /// runs must execute strictly fewer of these than `--no-opt` runs on
    /// workloads with any intraprocedural redundancy, and never more.
    pub fn null_bounds_checks(&self) -> u64 {
        self.null_checks
            + self.seq_bounds_checks
            + self.seq_to_safe_checks
            + self.wild_bounds_checks
            + self.index_checks
    }
}

/// Abstract per-event cycle costs.
///
/// The defaults model a simple in-order machine: ALU ops cost 1, memory
/// ops 1 (cache-friendly interpretive abstraction), calls 5. Check costs
/// reflect their instruction footprints in the real CCured (a null check is
/// a compare+branch; a SEQ bounds check is two compares on in-register
/// metadata; WILD checks touch the area header and tag bitmap). Baseline
/// costs reflect published behaviour: Purify pays per-byte shadow updates on
/// every access; Valgrind pays JIT dispatch per instruction plus 9-bit
/// shadow per byte; Jones–Kelly pays a registry (splay) lookup per pointer
/// operation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub struct CostModel {
    pub instr: f64,
    pub load: f64,
    pub store: f64,
    pub call: f64,
    pub extern_call: f64,
    /// Per I/O operation (syscall-scale; dwarfs compute in daemons).
    pub io_op: f64,
    pub io_byte: f64,

    pub null_check: f64,
    pub seq_bounds_check: f64,
    pub seq_to_safe_check: f64,
    pub wild_bounds_check: f64,
    pub wild_tag_check: f64,
    pub rtti_check: f64,
    pub rtti_walk_step: f64,
    pub escape_check: f64,
    pub index_check: f64,
    /// Temporal lock-and-key comparison: a load of the allocation's key
    /// slot plus a compare-and-branch.
    pub temporal_check: f64,
    pub tag_update: f64,
    pub fat_convert: f64,
    pub meta_op: f64,

    pub shadow_op: f64,
    pub jit_instr: f64,
    pub bt_instr: f64,
    pub registry_lookup: f64,

    /// Per limit consultation (a compare-and-branch on cached state).
    pub limit_check: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            instr: 1.0,
            load: 1.0,
            store: 1.0,
            call: 5.0,
            extern_call: 10.0,
            io_op: 2_500.0,
            io_byte: 2.0,

            null_check: 1.0,
            seq_bounds_check: 4.0,
            seq_to_safe_check: 3.0,
            wild_bounds_check: 9.0,
            wild_tag_check: 9.0,
            rtti_check: 3.0,
            rtti_walk_step: 2.0,
            escape_check: 1.0,
            index_check: 0.4,
            temporal_check: 2.0,
            tag_update: 9.0,
            fat_convert: 1.0,
            meta_op: 4.0,

            shadow_op: 6.0,
            jit_instr: 9.0,
            bt_instr: 22.0,
            registry_lookup: 35.0,

            limit_check: 1.0,
        }
    }
}

impl CostModel {
    /// Total abstract cycles for a run.
    pub fn cycles(&self, c: &Counters) -> f64 {
        self.instr * c.instrs as f64
            + self.load * c.loads as f64
            + self.store * c.stores as f64
            + self.call * c.calls as f64
            + self.extern_call * c.extern_calls as f64
            + self.io_op * c.io_ops as f64
            + self.io_byte * c.io_bytes as f64
            + self.null_check * c.null_checks as f64
            + self.seq_bounds_check * c.seq_bounds_checks as f64
            + self.seq_to_safe_check * c.seq_to_safe_checks as f64
            + self.wild_bounds_check * c.wild_bounds_checks as f64
            + self.wild_tag_check * c.wild_tag_checks as f64
            + self.rtti_check * c.rtti_checks as f64
            + self.rtti_walk_step * c.rtti_walk_steps as f64
            + self.escape_check * c.escape_checks as f64
            + self.index_check * c.index_checks as f64
            + self.temporal_check * c.temporal_checks as f64
            + self.tag_update * c.tag_updates as f64
            + self.fat_convert * c.fat_converts as f64
            + self.meta_op * c.meta_ops as f64
            + self.shadow_op * c.shadow_ops as f64
            + self.jit_instr * c.jit_instrs as f64
            + self.bt_instr * c.bt_instrs as f64
            + self.registry_lookup * c.registry_lookups as f64
            + self.limit_check * c.limit_checks as f64
    }

    /// Abstract cycles spent executing CCured checks only (including RTTI
    /// walk steps) — the metric the E15 loop-optimizer bench reduces.
    /// Memory and call traffic is invariant under the loop passes, so the
    /// total [`cycles`](Self::cycles) figure would dilute the signal.
    pub fn check_cycles(&self, c: &Counters) -> f64 {
        self.null_check * c.null_checks as f64
            + self.seq_bounds_check * c.seq_bounds_checks as f64
            + self.seq_to_safe_check * c.seq_to_safe_checks as f64
            + self.wild_bounds_check * c.wild_bounds_checks as f64
            + self.wild_tag_check * c.wild_tag_checks as f64
            + self.rtti_check * c.rtti_checks as f64
            + self.rtti_walk_step * c.rtti_walk_steps as f64
            + self.escape_check * c.escape_checks as f64
            + self.index_check * c.index_checks as f64
            + self.temporal_check * c.temporal_checks as f64
    }

    /// Overhead ratio of `instrumented` relative to `baseline`.
    pub fn ratio(&self, instrumented: &Counters, baseline: &Counters) -> f64 {
        let b = self.cycles(baseline);
        if b == 0.0 {
            1.0
        } else {
            self.cycles(instrumented) / b
        }
    }

    /// Fraction of a run's cycles spent on sandbox limit consultations —
    /// the price of the hardened interpreter, reported alongside fig9
    /// (target: well under 2% on every workload).
    pub fn sandbox_overhead(&self, c: &Counters) -> f64 {
        let total = self.cycles(c);
        if total == 0.0 {
            0.0
        } else {
            self.limit_check * c.limit_checks as f64 / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_run_costs_its_instructions() {
        let model = CostModel::default();
        let c = Counters {
            instrs: 100,
            ..Counters::default()
        };
        assert_eq!(model.cycles(&c), 100.0);
    }

    #[test]
    fn checks_add_cost() {
        let model = CostModel::default();
        let base = Counters {
            instrs: 1000,
            loads: 100,
            ..Counters::default()
        };
        let mut cured = base;
        cured.null_checks = 100;
        cured.seq_bounds_checks = 50;
        let r = model.ratio(&cured, &base);
        assert!(r > 1.0 && r < 2.0, "modest CCured-style overhead, got {r}");
    }

    #[test]
    fn valgrind_style_dominates() {
        let model = CostModel::default();
        let base = Counters {
            instrs: 1000,
            loads: 200,
            stores: 100,
            ..Counters::default()
        };
        let mut vg = base;
        vg.jit_instrs = base.instrs;
        vg.shadow_ops = (base.loads + base.stores) * 9;
        let r = model.ratio(&vg, &base);
        assert!(
            r > 8.0,
            "valgrind-style overhead must be an order of magnitude, got {r}"
        );
    }

    #[test]
    fn io_dominates_daemons() {
        let model = CostModel::default();
        let mut base = Counters {
            instrs: 10_000,
            io_ops: 400,
            ..Counters::default()
        };
        let mut cured = base;
        cured.null_checks = 5_000;
        cured.seq_bounds_checks = 2_000;
        let r = model.ratio(&cured, &base);
        assert!(
            r < 1.05,
            "I/O-bound workloads show negligible overhead, got {r}"
        );
        base.io_ops = 0;
        let mut cured2 = base;
        cured2.null_checks = 5_000;
        cured2.seq_bounds_checks = 2_000;
        assert!(
            model.ratio(&cured2, &base) > 1.2,
            "CPU-bound overhead must be visible"
        );
    }

    #[test]
    fn sandbox_overhead_is_a_small_fraction() {
        let model = CostModel::default();
        let c = Counters {
            instrs: 100_000,
            calls: 500,
            limit_checks: 510,
            ..Counters::default()
        };
        let o = model.sandbox_overhead(&c);
        assert!(o > 0.0 && o < 0.02, "sandbox overhead {o} out of range");
        assert_eq!(model.sandbox_overhead(&Counters::default()), 0.0);
    }

    #[test]
    fn total_checks_sums() {
        let c = Counters {
            null_checks: 1,
            seq_bounds_checks: 2,
            index_checks: 3,
            ..Counters::default()
        };
        assert_eq!(c.total_checks(), 6);
        assert_eq!(c.null_bounds_checks(), 6);
        let w = Counters {
            wild_tag_checks: 4,
            rtti_checks: 2,
            ..c
        };
        assert_eq!(w.total_checks(), 12);
        assert_eq!(
            w.null_bounds_checks(),
            6,
            "tag/RTTI checks are not bounds checks"
        );
    }
}
