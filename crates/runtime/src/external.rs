//! The "precompiled library": external functions provided by the runtime.
//!
//! These builtins see only the **native C representation** — thin pointers
//! and raw bytes. Like real libc they perform *no* CCured checks: writes
//! that stay inside an allocation silently corrupt neighbouring data
//! (realistic), while allocation-level violations surface as ground-truth
//! errors (a crashing library). The CCured wrapper helpers (`__ptrof`,
//! `__mkptr`, `__verify_nul`, `__bounds_check_n`) are the exception: they
//! understand every fat representation and realize Section 4.1.

use crate::err::RtError;
use crate::interp::Interp;
use crate::mem::{AllocKind, Pointer};
use crate::value::{PtrVal, Value};
use ccured_cil::types::Type;

/// Dispatches an external call by name.
///
/// # Errors
///
/// [`RtError::UnknownExternal`] for unknown names; otherwise whatever the
/// builtin produces.
pub fn call(it: &mut Interp<'_>, name: &str, args: &[Value]) -> Result<Option<Value>, RtError> {
    match name {
        // ------------------------------------------------ CCured helpers
        "__ptrof" | "__ptrof_int" | "__ptrof_void" => {
            let pv = ptr_arg(args, 0)?;
            Ok(Some(Value::Ptr(match pv.thin() {
                Some(p) => PtrVal::Safe(p),
                None => PtrVal::Null,
            })))
        }
        "__mkptr" => {
            let pv = ptr_arg(args, 0)?;
            let donor = ptr_arg(args, 1)?;
            let out = match (pv.thin(), donor) {
                (None, _) => PtrVal::Null,
                (Some(p), PtrVal::Seq { lo, hi, .. }) | (Some(p), PtrVal::Wild { lo, hi, .. }) => {
                    PtrVal::Seq { p, lo, hi }
                }
                (Some(p), _) => {
                    // A thin donor: use the allocation's true extent (the
                    // helper runs inside the trusted wrapper layer).
                    let hi = it.mem.allocation(p.alloc).size() as i64;
                    PtrVal::Seq { p, lo: 0, hi }
                }
            };
            Ok(Some(Value::Ptr(out)))
        }
        "__verify_nul" => {
            it.counters.seq_bounds_checks += 1;
            let pv = ptr_arg(args, 0)?;
            let (p, hi) = checked_extent(it, &pv, "__verify_nul")?;
            let mut off = p.offset;
            loop {
                if off >= hi {
                    return Err(RtError::CheckFailed {
                        check: "verify_nul",
                        detail: "string is not NUL-terminated within bounds".into(),
                    });
                }
                it.counters.instrs += 1;
                let b = it.mem.read_bytes(
                    Pointer {
                        alloc: p.alloc,
                        offset: off,
                    },
                    1,
                )?[0];
                if b == 0 {
                    return Ok(None);
                }
                off += 1;
            }
        }
        "__bounds_check_n" => {
            it.counters.seq_bounds_checks += 1;
            let pv = ptr_arg(args, 0)?;
            let n = int_arg(args, 1)? as i64;
            let (p, hi) = checked_extent(it, &pv, "__bounds_check_n")?;
            if p.offset + n > hi {
                return Err(RtError::CheckFailed {
                    check: "bounds_check_n",
                    detail: format!(
                        "need {n} bytes at offset {} but only {} remain",
                        p.offset,
                        hi - p.offset
                    ),
                });
            }
            Ok(None)
        }

        // -------------------------------------------------- allocators
        "malloc" | "xmalloc" | "emalloc" | "ap_palloc" => {
            let n = int_arg(args, if name == "ap_palloc" { 1 } else { 0 })?.max(1) as u64;
            let id = it.mem.alloc(n, AllocKind::Heap)?;
            it.register_alloc(id);
            Ok(Some(Value::Ptr(PtrVal::Safe(Pointer {
                alloc: id,
                offset: 0,
            }))))
        }
        "calloc" | "xcalloc" | "ap_pcalloc" => {
            let (a, b) = if name == "ap_pcalloc" {
                (1, int_arg(args, 1)?)
            } else {
                (int_arg(args, 0)?, int_arg(args, 1)?)
            };
            let n = (a.max(1) * b.max(1)) as u64;
            let id = it.mem.alloc(n, AllocKind::Heap)?;
            it.mem.mark_init(id);
            it.register_alloc(id);
            Ok(Some(Value::Ptr(PtrVal::Safe(Pointer {
                alloc: id,
                offset: 0,
            }))))
        }
        "realloc" => {
            let pv = ptr_arg(args, 0)?;
            let n = int_arg(args, 1)?.max(1) as u64;
            let id = it.mem.alloc(n, AllocKind::Heap)?;
            it.register_alloc(id);
            if let Some(p) = pv.thin() {
                let old = it.mem.allocation(p.alloc).size();
                let copy = old.min(n);
                it.mem.copy_region(
                    Pointer {
                        alloc: id,
                        offset: 0,
                    },
                    Pointer {
                        alloc: p.alloc,
                        offset: 0,
                    },
                    copy,
                )?;
                if !it.gc_mode() {
                    it.mem.free(p.alloc)?;
                } else if it.temporal_enabled() {
                    temporal_free(it, p.alloc)?;
                }
            }
            Ok(Some(Value::Ptr(PtrVal::Safe(Pointer {
                alloc: id,
                offset: 0,
            }))))
        }
        "free" => {
            // CCured links against a conservative garbage collector: `free`
            // is a no-op in cured programs (dangling pointers stay valid,
            // eliminating use-after-free by construction). The original
            // program keeps real `free` semantics. Under `--temporal` the
            // bytes still stay live (GC), but the allocation's capability
            // key is revoked so every later lock-and-key check fails.
            if it.gc_mode() {
                if it.temporal_enabled() {
                    let pv = ptr_arg(args, 0)?;
                    if let Some(p) = pv.thin() {
                        temporal_free(it, p.alloc)?;
                    }
                }
                it.counters.extern_calls += 0; // already counted by caller
                return Ok(None);
            }
            let pv = ptr_arg(args, 0)?;
            if let Some(p) = pv.thin() {
                it.mem.free(p.alloc)?;
            }
            Ok(None)
        }

        // ----------------------------------------------- string library
        "strlen" => {
            let p = thin_arg(args, 0)?;
            let s = it.mem.read_c_string(p)?;
            it.counters.instrs += s.len() as u64;
            Ok(Some(Value::Int(s.len() as i128)))
        }
        "strchr" => {
            let p = thin_arg(args, 0)?;
            let c = int_arg(args, 1)? as u8;
            let s = it.mem.read_c_string(p)?;
            it.counters.instrs += s.len() as u64;
            match s.iter().position(|&b| b == c) {
                Some(i) => Ok(Some(Value::Ptr(PtrVal::Safe(p.offset_by(i as i64))))),
                None => {
                    if c == 0 {
                        Ok(Some(Value::Ptr(PtrVal::Safe(p.offset_by(s.len() as i64)))))
                    } else {
                        Ok(Some(Value::NULL))
                    }
                }
            }
        }
        "strcpy" => {
            let d = thin_arg(args, 0)?;
            let s = thin_arg(args, 1)?;
            let bytes = it.mem.read_c_string(s)?;
            it.counters.instrs += bytes.len() as u64;
            let mut data = bytes;
            data.push(0);
            it.mem.write_bytes(d, &data)?;
            Ok(Some(Value::Ptr(PtrVal::Safe(d))))
        }
        "strncpy" => {
            let d = thin_arg(args, 0)?;
            let s = thin_arg(args, 1)?;
            let n = int_arg(args, 2)? as usize;
            it.counters.instrs += n as u64;
            // C's strncpy reads at most n source bytes; the source need not
            // be NUL-terminated within n.
            let mut data = vec![0u8; n];
            for (i, slot) in data.iter_mut().enumerate() {
                let b = it.mem.read_bytes(s.offset_by(i as i64), 1)?[0];
                if b == 0 {
                    break;
                }
                *slot = b;
            }
            it.mem.write_bytes(d, &data)?;
            Ok(Some(Value::Ptr(PtrVal::Safe(d))))
        }
        "strcat" => {
            let d = thin_arg(args, 0)?;
            let s = thin_arg(args, 1)?;
            let dst_str = it.mem.read_c_string(d)?;
            let src_str = it.mem.read_c_string(s)?;
            it.counters.instrs += (dst_str.len() + src_str.len()) as u64;
            let mut data = src_str;
            data.push(0);
            it.mem
                .write_bytes(d.offset_by(dst_str.len() as i64), &data)?;
            Ok(Some(Value::Ptr(PtrVal::Safe(d))))
        }
        "strcmp" | "strncmp" => {
            let a = it.mem.read_c_string(thin_arg(args, 0)?)?;
            let b = it.mem.read_c_string(thin_arg(args, 1)?)?;
            let (a, b) = if name == "strncmp" {
                let n = int_arg(args, 2)? as usize;
                (a[..a.len().min(n)].to_vec(), b[..b.len().min(n)].to_vec())
            } else {
                (a, b)
            };
            it.counters.instrs += a.len().min(b.len()) as u64;
            Ok(Some(Value::Int(match a.cmp(&b) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            })))
        }
        "memcpy" | "memmove" => {
            let d = thin_arg(args, 0)?;
            let s = thin_arg(args, 1)?;
            let n = int_arg(args, 2)? as u64;
            it.counters.instrs += n;
            it.mem.copy_region(d, s, n)?;
            Ok(Some(Value::Ptr(PtrVal::Safe(d))))
        }
        "memset" => {
            let d = thin_arg(args, 0)?;
            let c = int_arg(args, 1)? as u8;
            let n = int_arg(args, 2)? as usize;
            it.counters.instrs += n as u64;
            it.mem.write_bytes(d, &vec![c; n])?;
            Ok(Some(Value::Ptr(PtrVal::Safe(d))))
        }
        "memcmp" => {
            let a = thin_arg(args, 0)?;
            let b = thin_arg(args, 1)?;
            let n = int_arg(args, 2)? as u64;
            let x = it.mem.read_bytes(a, n)?.to_vec();
            let y = it.mem.read_bytes(b, n)?.to_vec();
            it.counters.instrs += n;
            Ok(Some(Value::Int(match x.cmp(&y) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            })))
        }
        "strrchr" => {
            let p = thin_arg(args, 0)?;
            let c = int_arg(args, 1)? as u8;
            let s = it.mem.read_c_string(p)?;
            it.counters.instrs += s.len() as u64;
            match s.iter().rposition(|&b| b == c) {
                Some(i) => Ok(Some(Value::Ptr(PtrVal::Safe(p.offset_by(i as i64))))),
                None if c == 0 => Ok(Some(Value::Ptr(PtrVal::Safe(p.offset_by(s.len() as i64))))),
                None => Ok(Some(Value::NULL)),
            }
        }
        "strstr" => {
            let h = thin_arg(args, 0)?;
            let hay = it.mem.read_c_string(h)?;
            let needle = it.mem.read_c_string(thin_arg(args, 1)?)?;
            it.counters.instrs += (hay.len() * needle.len().max(1)) as u64;
            if needle.is_empty() {
                return Ok(Some(Value::Ptr(PtrVal::Safe(h))));
            }
            match hay.windows(needle.len()).position(|w| w == needle) {
                Some(i) => Ok(Some(Value::Ptr(PtrVal::Safe(h.offset_by(i as i64))))),
                None => Ok(Some(Value::NULL)),
            }
        }
        "strncat" => {
            let d = thin_arg(args, 0)?;
            let s = thin_arg(args, 1)?;
            let n = int_arg(args, 2)? as usize;
            let dst_str = it.mem.read_c_string(d)?;
            let src_str = it.mem.read_c_string(s)?;
            it.counters.instrs += (dst_str.len() + n) as u64;
            let mut data: Vec<u8> = src_str.into_iter().take(n).collect();
            data.push(0);
            it.mem
                .write_bytes(d.offset_by(dst_str.len() as i64), &data)?;
            Ok(Some(Value::Ptr(PtrVal::Safe(d))))
        }
        "memchr" => {
            let p = thin_arg(args, 0)?;
            let c = int_arg(args, 1)? as u8;
            let n = int_arg(args, 2)? as u64;
            let bytes = it.mem.read_bytes(p, n)?.to_vec();
            it.counters.instrs += n;
            match bytes.iter().position(|&b| b == c) {
                Some(i) => Ok(Some(Value::Ptr(PtrVal::Safe(p.offset_by(i as i64))))),
                None => Ok(Some(Value::NULL)),
            }
        }
        "strdup" => {
            let s = it.mem.read_c_string(thin_arg(args, 0)?)?;
            it.counters.instrs += s.len() as u64;
            let id = it.mem.alloc(s.len() as u64 + 1, AllocKind::Heap)?;
            it.mem.mark_init(id);
            it.register_alloc(id);
            let mut data = s;
            data.push(0);
            it.mem.write_bytes(
                Pointer {
                    alloc: id,
                    offset: 0,
                },
                &data,
            )?;
            Ok(Some(Value::Ptr(PtrVal::Safe(Pointer {
                alloc: id,
                offset: 0,
            }))))
        }
        // ctype/stdlib scalar helpers: no pointers, callable directly.
        "isdigit" => Ok(Some(Value::Int(
            (int_arg(args, 0)? as u8 as char).is_ascii_digit() as i128,
        ))),
        "isalpha" => Ok(Some(Value::Int(
            (int_arg(args, 0)? as u8 as char).is_ascii_alphabetic() as i128,
        ))),
        "isspace" => Ok(Some(Value::Int(
            (int_arg(args, 0)? as u8 as char).is_ascii_whitespace() as i128,
        ))),
        "isupper" => Ok(Some(Value::Int(
            (int_arg(args, 0)? as u8 as char).is_ascii_uppercase() as i128,
        ))),
        "islower" => Ok(Some(Value::Int(
            (int_arg(args, 0)? as u8 as char).is_ascii_lowercase() as i128,
        ))),
        "toupper" => {
            // C: the argument is an `unsigned char` value or EOF; anything
            // else (notably EOF = -1) passes through unchanged rather than
            // wrapping to 255.
            let c = int_arg(args, 0)?;
            Ok(Some(Value::Int(match u8::try_from(c) {
                Ok(b) => b.to_ascii_uppercase() as i128,
                Err(_) => c,
            })))
        }
        "tolower" => {
            let c = int_arg(args, 0)?;
            Ok(Some(Value::Int(match u8::try_from(c) {
                Ok(b) => b.to_ascii_lowercase() as i128,
                Err(_) => c,
            })))
        }
        "abs" | "labs" => Ok(Some(Value::Int(int_arg(args, 0)?.abs()))),
        "atoi" | "atol" => {
            let s = it.mem.read_c_string(thin_arg(args, 0)?)?;
            let text: String = s.iter().map(|&b| b as char).collect();
            let text = text.trim();
            let mut end = 0;
            let bytes = text.as_bytes();
            if !bytes.is_empty() && (bytes[0] == b'-' || bytes[0] == b'+') {
                end = 1;
            }
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            let v: i128 = text[..end].parse().unwrap_or(0);
            Ok(Some(Value::Int(v)))
        }

        // --------------------------------------------------------- I/O
        "printf" => {
            let fmt = it.mem.read_c_string(thin_arg(args, 0)?)?;
            let rendered = format_c(it, &fmt, &args[1..])?;
            let n = rendered.len();
            it.out.extend_from_slice(&rendered);
            it.counters.io_ops += 1;
            it.counters.io_bytes += n as u64;
            Ok(Some(Value::Int(n as i128)))
        }
        "sprintf" => {
            let buf = thin_arg(args, 0)?;
            let fmt = it.mem.read_c_string(thin_arg(args, 1)?)?;
            let mut rendered = format_c(it, &fmt, &args[2..])?;
            rendered.push(0);
            it.mem.write_bytes(buf, &rendered)?;
            Ok(Some(Value::Int(rendered.len() as i128 - 1)))
        }
        "snprintf" => {
            let buf = thin_arg(args, 0)?;
            let cap = int_arg(args, 1)?;
            // The size parameter is a size_t; a negative value sign-extended
            // through `as usize` would become a huge capacity. Refuse it the
            // way glibc does (EOVERFLOW): write nothing, return -1.
            if cap < 0 {
                return Ok(Some(Value::Int(-1)));
            }
            let cap = cap as usize;
            let fmt = it.mem.read_c_string(thin_arg(args, 2)?)?;
            let rendered = format_c(it, &fmt, &args[3..])?;
            let n = rendered.len();
            if cap > 0 {
                let mut w = rendered;
                w.truncate(cap - 1);
                w.push(0);
                it.mem.write_bytes(buf, &w)?;
            }
            Ok(Some(Value::Int(n as i128)))
        }
        "puts" => {
            let s = it.mem.read_c_string(thin_arg(args, 0)?)?;
            let n = s.len();
            it.out.extend_from_slice(&s);
            it.out.push(b'\n');
            it.counters.io_ops += 1;
            it.counters.io_bytes += n as u64 + 1;
            Ok(Some(Value::Int(0)))
        }
        "putchar" => {
            let c = int_arg(args, 0)? as u8;
            it.out.push(c);
            it.counters.io_ops += 1;
            it.counters.io_bytes += 1;
            Ok(Some(Value::Int(c as i128)))
        }
        "getchar" => {
            it.counters.io_ops += 1;
            if it.input_pos < it.input.len() {
                let c = it.input[it.input_pos];
                it.input_pos += 1;
                it.counters.io_bytes += 1;
                Ok(Some(Value::Int(c as i128)))
            } else {
                Ok(Some(Value::Int(-1)))
            }
        }
        "net_recv" => {
            let buf = thin_arg(args, 0)?;
            let cap = int_arg(args, 1)?;
            // A negative capacity must not wrap into a huge usize and drain
            // the whole input stream; fail the call like recv(2) (EINVAL).
            if cap < 0 {
                return Ok(Some(Value::Int(-1)));
            }
            let cap = cap as usize;
            let avail = it.input.len() - it.input_pos;
            let n = avail.min(cap);
            let data = it.input[it.input_pos..it.input_pos + n].to_vec();
            it.input_pos += n;
            it.mem.write_bytes(buf, &data)?;
            it.counters.io_ops += 1;
            it.counters.io_bytes += n as u64;
            Ok(Some(Value::Int(n as i128)))
        }
        "net_send" => {
            let buf = thin_arg(args, 0)?;
            let n = int_arg(args, 1)? as u64;
            let data = it.mem.read_bytes(buf, n)?.to_vec();
            it.out.extend_from_slice(&data);
            it.counters.io_ops += 1;
            it.counters.io_bytes += n;
            Ok(Some(Value::Int(n as i128)))
        }
        "sim_io" => {
            let units = int_arg(args, 0)?.max(0) as u64;
            it.counters.io_ops += units;
            Ok(None)
        }
        "sim_rand" => {
            it.rng = it
                .rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Ok(Some(Value::Int(((it.rng >> 33) & 0x3fff_ffff) as i128)))
        }

        // -------------------------------------------------- termination
        "exit" => Err(RtError::Exit(int_arg(args, 0)? as i64)),
        "abort" => Err(RtError::Abort("abort() called".into())),

        "sendmsg_like" => {
            // struct msghdr { char *base; long len; } — a scatter/gather
            // send with a nested pointer: the Section 4.2 motivating shape.
            let m = thin_arg(args, 0)?;
            let word = it.program().types.machine.ptr_bytes;
            let base_off = field_offset(it, "msghdr", "base")?;
            let len_off = field_offset(it, "msghdr", "len")?;
            let base = it.mem.read_ptr(m.offset_by(base_off), word)?;
            let len = it.mem.read_int(m.offset_by(len_off), 8, true)? as u64;
            let p = match base.thin() {
                Some(p) => p,
                None => return Err(RtError::NullDeref),
            };
            let data = it.mem.read_bytes(p, len)?.to_vec();
            it.out.extend_from_slice(&data);
            it.counters.io_ops += 1;
            it.counters.io_bytes += len;
            Ok(Some(Value::Int(len as i128)))
        }

        // --------------------------------------- library data structures
        "gethostbyname" => gethostbyname(it, args),
        "SSL_new" => ssl_new(it),
        "glob" => {
            // int glob(char *pattern, struct glob_res *out): the library
            // allocates the path array and the strings (paper Section 5:
            // "the biggest hurdle was writing a 70-line wrapper for the
            // glob function").
            let pattern = it.mem.read_c_string(thin_arg(args, 0)?)?;
            let out = thin_arg(args, 1)?;
            let word = it.program().types.machine.ptr_bytes;
            let stem: Vec<u8> = pattern.iter().copied().take_while(|&b| b != b'*').collect();
            let names: Vec<Vec<u8>> = (0..3)
                .map(|i| {
                    let mut n = stem.clone();
                    n.extend_from_slice(format!("match{i}").as_bytes());
                    n
                })
                .collect();
            let arr = it
                .mem
                .alloc((names.len() as u64 + 1) * word, AllocKind::Heap)?;
            it.mem.mark_init(arr);
            it.register_alloc(arr);
            for (i, name) in names.iter().enumerate() {
                let s = it.mem.alloc(name.len() as u64 + 1, AllocKind::Heap)?;
                it.mem.mark_init(s);
                it.register_alloc(s);
                let mut data = name.clone();
                data.push(0);
                it.mem.write_bytes(
                    Pointer {
                        alloc: s,
                        offset: 0,
                    },
                    &data,
                )?;
                it.mem.write_ptr(
                    Pointer {
                        alloc: arr,
                        offset: (i as u64 * word) as i64,
                    },
                    PtrVal::Seq {
                        p: Pointer {
                            alloc: s,
                            offset: 0,
                        },
                        lo: 0,
                        hi: name.len() as i64 + 1,
                    },
                    word,
                )?;
                it.counters.meta_ops += 1;
            }
            it.mem.write_int(
                Pointer {
                    alloc: arr,
                    offset: (names.len() as u64 * word) as i64,
                },
                word,
                0,
            )?;
            // out->count = n; out->paths = arr (fat); fields by name.
            let count_off = field_offset(it, "glob_res", "count")?;
            let paths_off = field_offset(it, "glob_res", "paths")?;
            it.mem
                .write_int(out.offset_by(count_off), 8, names.len() as i128)?;
            it.mem.write_ptr(
                out.offset_by(paths_off),
                PtrVal::Seq {
                    p: Pointer {
                        alloc: arr,
                        offset: 0,
                    },
                    lo: 0,
                    hi: ((names.len() as u64 + 1) * word) as i64,
                },
                word,
            )?;
            it.counters.io_ops += 1;
            Ok(Some(Value::Int(0)))
        }
        "SSL_write" => {
            // Appends plaintext into the session's out-buffer (the library
            // owns and mutates its own structures).
            let s = thin_arg(args, 0)?;
            let buf = thin_arg(args, 1)?;
            let n = int_arg(args, 2)? as u64;
            let word = it.program().types.machine.ptr_bytes;
            let out_off = field_offset(it, "ssl", "out")?;
            let out_ptr = match it.mem.read_ptr(s.offset_by(out_off), word)?.thin() {
                Some(p) => p,
                None => return Err(RtError::NullDeref),
            };
            let data_off = field_offset(it, "sslbuf", "data")?;
            let len_off = field_offset(it, "sslbuf", "len")?;
            let data_ptr = match it.mem.read_ptr(out_ptr.offset_by(data_off), word)?.thin() {
                Some(p) => p,
                None => return Err(RtError::NullDeref),
            };
            let len = it.mem.read_int(out_ptr.offset_by(len_off), 8, true)? as i64;
            let chunk = it.mem.read_bytes(buf, n)?.to_vec();
            let obfuscated: Vec<u8> = chunk.iter().map(|b| b ^ 0x2A).collect();
            it.mem.write_bytes(data_ptr.offset_by(len), &obfuscated)?;
            it.mem
                .write_int(out_ptr.offset_by(len_off), 8, len as i128 + n as i128)?;
            it.counters.io_ops += 1;
            Ok(Some(Value::Int(n as i128)))
        }
        "SSL_read" => {
            // Drains the out-buffer back (echo cipher), deciphering.
            let s = thin_arg(args, 0)?;
            let buf = thin_arg(args, 1)?;
            let cap = int_arg(args, 2)? as i64;
            let word = it.program().types.machine.ptr_bytes;
            let out_off = field_offset(it, "ssl", "out")?;
            let out_ptr = match it.mem.read_ptr(s.offset_by(out_off), word)?.thin() {
                Some(p) => p,
                None => return Err(RtError::NullDeref),
            };
            let data_off = field_offset(it, "sslbuf", "data")?;
            let len_off = field_offset(it, "sslbuf", "len")?;
            let data_ptr = match it.mem.read_ptr(out_ptr.offset_by(data_off), word)?.thin() {
                Some(p) => p,
                None => return Err(RtError::NullDeref),
            };
            let len = it.mem.read_int(out_ptr.offset_by(len_off), 8, true)? as i64;
            let n = len.min(cap);
            let chunk = it.mem.read_bytes(data_ptr, n as u64)?.to_vec();
            let plain: Vec<u8> = chunk.iter().map(|b| b ^ 0x2A).collect();
            it.mem.write_bytes(buf, &plain)?;
            it.mem.write_int(out_ptr.offset_by(len_off), 8, 0)?;
            it.counters.io_ops += 1;
            Ok(Some(Value::Int(n as i128)))
        }

        other => Err(RtError::UnknownExternal(other.to_string())),
    }
}

/// Builds a library-allocated `struct hostent` (paper Section 4.2's
/// motivating example): the data is in native C layout; the runtime also
/// generates CCured metadata for it (the "validate on return" step),
/// counted as metadata operations.
fn gethostbyname(it: &mut Interp<'_>, args: &[Value]) -> Result<Option<Value>, RtError> {
    let name_bytes = it.mem.read_c_string(thin_arg(args, 0)?)?;
    let prog = it.program();
    let cid = prog
        .types
        .find_comp("hostent", false)
        .ok_or_else(|| RtError::Unsupported("program does not declare struct hostent".into()))?;
    let info = prog.types.comp(cid).clone();
    let struct_size = info.size;
    let word = prog.types.machine.ptr_bytes;

    // Allocate the strings: the official name plus two aliases.
    let mk_string = |it: &mut Interp<'_>, s: &[u8]| -> Result<PtrVal, RtError> {
        let id = it.mem.alloc(s.len() as u64 + 1, AllocKind::Heap)?;
        it.mem.mark_init(id);
        it.register_alloc(id);
        let mut data = s.to_vec();
        data.push(0);
        it.mem.write_bytes(
            Pointer {
                alloc: id,
                offset: 0,
            },
            &data,
        )?;
        it.counters.meta_ops += 1; // metadata generated at the boundary
        Ok(PtrVal::Seq {
            p: Pointer {
                alloc: id,
                offset: 0,
            },
            lo: 0,
            hi: s.len() as i64 + 1,
        })
    };
    let h_name = mk_string(it, &name_bytes)?;
    let alias1 = mk_string(it, &[name_bytes.as_slice(), b".local"].concat())?;
    let alias2 = mk_string(it, &[b"www.".as_slice(), &name_bytes].concat())?;

    // The alias array: two entries plus the NULL terminator.
    let arr = it.mem.alloc(3 * word, AllocKind::Heap)?;
    it.mem.mark_init(arr);
    it.register_alloc(arr);
    it.mem.write_ptr(
        Pointer {
            alloc: arr,
            offset: 0,
        },
        alias1,
        word,
    )?;
    it.mem.write_ptr(
        Pointer {
            alloc: arr,
            offset: word as i64,
        },
        alias2,
        word,
    )?;
    it.mem.write_int(
        Pointer {
            alloc: arr,
            offset: 2 * word as i64,
        },
        word,
        0,
    )?;
    it.counters.meta_ops += 1;

    // The hostent itself.
    let host = it.mem.alloc(struct_size.max(1), AllocKind::Heap)?;
    it.mem.mark_init(host);
    it.register_alloc(host);
    for f in &info.fields {
        let at = Pointer {
            alloc: host,
            offset: f.offset as i64,
        };
        match (f.name.as_str(), it.program().types.get(f.ty)) {
            ("h_name", _) => it.mem.write_ptr(at, h_name, word)?,
            ("h_aliases", _) => it.mem.write_ptr(
                at,
                PtrVal::Seq {
                    p: Pointer {
                        alloc: arr,
                        offset: 0,
                    },
                    lo: 0,
                    hi: 3 * word as i64,
                },
                word,
            )?,
            (_, Type::Int(k)) => {
                let size = it.program().types.machine.int_size(*k);
                it.mem.write_int(at, size, 2)? // AF_INET
            }
            _ => {}
        }
    }
    Ok(Some(Value::Ptr(PtrVal::Seq {
        p: Pointer {
            alloc: host,
            offset: 0,
        },
        lo: 0,
        hi: struct_size as i64,
    })))
}

/// Builds a library-owned SSL session: `struct ssl { struct sslbuf *in,
/// *out; int state; }` with `struct sslbuf { char *data; long len; }` —
/// the pointers-to-pointers interface shape of the paper's "ssh client
/// without curing OpenSSL" experiment.
fn ssl_new(it: &mut Interp<'_>) -> Result<Option<Value>, RtError> {
    let prog = it.program();
    let ssl_cid = prog
        .types
        .find_comp("ssl", false)
        .ok_or_else(|| RtError::Unsupported("program does not declare struct ssl".into()))?;
    let ssl_info = prog.types.comp(ssl_cid).clone();
    let word = prog.types.machine.ptr_bytes;

    let mk_buf = |it: &mut Interp<'_>| -> Result<PtrVal, RtError> {
        let data = it.mem.alloc(512, AllocKind::Heap)?;
        it.mem.mark_init(data);
        it.register_alloc(data);
        let buf = it.mem.alloc(2 * word, AllocKind::Heap)?;
        it.mem.mark_init(buf);
        it.register_alloc(buf);
        it.mem.write_ptr(
            Pointer {
                alloc: buf,
                offset: 0,
            },
            PtrVal::Seq {
                p: Pointer {
                    alloc: data,
                    offset: 0,
                },
                lo: 0,
                hi: 512,
            },
            word,
        )?;
        it.mem.write_int(
            Pointer {
                alloc: buf,
                offset: word as i64,
            },
            8,
            0,
        )?;
        it.counters.meta_ops += 1; // boundary metadata generation
        Ok(PtrVal::Seq {
            p: Pointer {
                alloc: buf,
                offset: 0,
            },
            lo: 0,
            hi: 2 * word as i64,
        })
    };
    let inbuf = mk_buf(it)?;
    let outbuf = mk_buf(it)?;
    let s = it.mem.alloc(ssl_info.size.max(1), AllocKind::Heap)?;
    it.mem.mark_init(s);
    it.register_alloc(s);
    for f in &ssl_info.fields {
        let at = Pointer {
            alloc: s,
            offset: f.offset as i64,
        };
        match f.name.as_str() {
            "in" => it.mem.write_ptr(at, inbuf, word)?,
            "out" => it.mem.write_ptr(at, outbuf, word)?,
            _ => {}
        }
    }
    Ok(Some(Value::Ptr(PtrVal::Seq {
        p: Pointer {
            alloc: s,
            offset: 0,
        },
        lo: 0,
        hi: ssl_info.size as i64,
    })))
}

/// Byte offset of a named field in a program-declared struct; the builtins
/// that fill program structures resolve fields by name so declaration order
/// does not matter.
fn field_offset(it: &Interp<'_>, comp: &str, field: &str) -> Result<i64, RtError> {
    let prog = it.program();
    let cid = prog
        .types
        .find_comp(comp, false)
        .ok_or_else(|| RtError::Unsupported(format!("program does not declare struct {comp}")))?;
    prog.types
        .comp(cid)
        .fields
        .iter()
        .find(|f| f.name == field)
        .map(|f| f.offset as i64)
        .ok_or_else(|| RtError::Unsupported(format!("struct {comp} has no field `{field}`")))
}

/// `free`/`realloc` under `--temporal`: revokes the allocation's capability
/// key. A bad free (double free, free of stack/global memory) is itself a
/// temporal-check failure — the cured program aborts gracefully instead of
/// surfacing a ground-truth memory error.
fn temporal_free(it: &mut Interp<'_>, alloc: crate::mem::AllocId) -> Result<(), RtError> {
    it.mem
        .temporal_revoke(alloc)
        .map_err(|e| RtError::CheckFailed {
            check: "temporal",
            detail: format!("free rejected: {e}"),
        })
}

fn ptr_arg(args: &[Value], i: usize) -> Result<PtrVal, RtError> {
    match args.get(i) {
        Some(Value::Ptr(p)) => Ok(*p),
        Some(Value::Int(0)) => Ok(PtrVal::Null),
        other => Err(RtError::Unsupported(format!(
            "expected pointer argument {i}, got {other:?}"
        ))),
    }
}

fn thin_arg(args: &[Value], i: usize) -> Result<Pointer, RtError> {
    match ptr_arg(args, i)? {
        PtrVal::Null => Err(RtError::NullDeref),
        PtrVal::IntVal(x) => Err(RtError::InvalidPointer(format!(
            "library call with integer {x:#x} as pointer"
        ))),
        PtrVal::Fn(_) => Err(RtError::InvalidPointer("function pointer as data".into())),
        other => other
            .thin()
            .ok_or_else(|| RtError::Internal("library pointer has no memory position".into())),
    }
}

fn int_arg(args: &[Value], i: usize) -> Result<i128, RtError> {
    match args.get(i) {
        Some(Value::Int(v)) => Ok(*v),
        Some(Value::Float(f)) => Ok(*f as i128),
        other => Err(RtError::Unsupported(format!(
            "expected integer argument {i}, got {other:?}"
        ))),
    }
}

/// The in-bounds extent `(thin pointer, exclusive upper offset)` usable by
/// a wrapper helper for `pv`.
fn checked_extent(
    it: &Interp<'_>,
    pv: &PtrVal,
    check: &'static str,
) -> Result<(Pointer, i64), RtError> {
    match pv {
        PtrVal::Null => Err(RtError::CheckFailed {
            check: "null",
            detail: format!("{check}: null pointer"),
        }),
        PtrVal::IntVal(x) => Err(RtError::CheckFailed {
            check: "null",
            detail: format!("{check}: integer {x:#x} as pointer"),
        }),
        PtrVal::Seq { p, hi, .. } | PtrVal::Wild { p, hi, .. } => Ok((*p, *hi)),
        PtrVal::Safe(p) | PtrVal::Rtti { p, .. } => {
            Ok((*p, it.mem.allocation(p.alloc).size() as i64))
        }
        PtrVal::Fn(_) => Err(RtError::InvalidPointer("function pointer as data".into())),
    }
}

/// A small C `printf`-style formatter over interpreter values.
fn format_c(it: &Interp<'_>, fmt: &[u8], args: &[Value]) -> Result<Vec<u8>, RtError> {
    let mut out = Vec::new();
    let mut ai = 0;
    let mut i = 0;
    while i < fmt.len() {
        let c = fmt[i];
        if c != b'%' {
            out.push(c);
            i += 1;
            continue;
        }
        i += 1;
        // Skip flags/width/precision/length modifiers.
        while i < fmt.len()
            && (fmt[i].is_ascii_digit()
                || matches!(fmt[i], b'-' | b'+' | b'.' | b' ' | b'l' | b'h' | b'z'))
        {
            i += 1;
        }
        if i >= fmt.len() {
            break;
        }
        let spec = fmt[i];
        i += 1;
        let mut next = || {
            let v = args.get(ai).copied();
            ai += 1;
            v.ok_or_else(|| RtError::Unsupported("printf: missing argument".into()))
        };
        match spec {
            b'%' => out.push(b'%'),
            b'd' | b'i' => {
                let v = next()?.as_int().unwrap_or(0);
                out.extend_from_slice(v.to_string().as_bytes());
            }
            b'u' => {
                let v = next()?.as_int().unwrap_or(0);
                out.extend_from_slice((v as u64).to_string().as_bytes());
            }
            b'x' => {
                let v = next()?.as_int().unwrap_or(0);
                out.extend_from_slice(format!("{:x}", v as u64).as_bytes());
            }
            b'c' => {
                let v = next()?.as_int().unwrap_or(0);
                out.push(v as u8);
            }
            b'f' | b'g' => {
                let v = match next()? {
                    Value::Float(f) => f,
                    Value::Int(x) => x as f64,
                    _ => 0.0,
                };
                out.extend_from_slice(format!("{v:.6}").as_bytes());
            }
            b's' => {
                let v = next()?;
                match v {
                    Value::Ptr(PtrVal::IntVal(x)) => {
                        return Err(RtError::InvalidPointer(format!(
                            "printf %s with integer {x:#x} as pointer"
                        )))
                    }
                    Value::Ptr(pv) => match pv.thin() {
                        Some(p) => out.extend_from_slice(&it.mem.read_c_string(p)?),
                        None => out.extend_from_slice(b"(null)"),
                    },
                    // The Spec95 bug class the paper found: printf given a
                    // non-pointer for %s. Ground truth: invalid pointer.
                    other => {
                        return Err(RtError::InvalidPointer(format!(
                            "printf %s with non-pointer {other:?}"
                        )))
                    }
                }
            }
            b'p' => {
                let v = next()?;
                let va = match v {
                    Value::Ptr(pv) => it.mem.va_of(&pv),
                    Value::Int(x) => x as u64,
                    _ => 0,
                };
                out.extend_from_slice(format!("{va:#x}").as_bytes());
            }
            other => {
                return Err(RtError::Unsupported(format!(
                    "printf: unsupported conversion %{}",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::err::RtError;
    use crate::interp::{ExecMode, Interp};

    fn run(src: &str) -> (Result<i64, RtError>, Vec<u8>) {
        let tu = ccured_ast::parse_translation_unit(src).expect("parse");
        let prog = ccured_cil::lower_translation_unit(&tu).expect("lower");
        let mut i = Interp::new(&prog, ExecMode::Original);
        let r = i.run();
        let out = i.output().to_vec();
        (r, out)
    }

    fn run_cured_io(src: &str, input: &[u8]) -> (Result<i64, RtError>, Vec<u8>) {
        let cured = ccured::Curer::new().cure_source(src).expect("cure");
        let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
        i.set_input(input.to_vec());
        let r = i.run();
        let out = i.output().to_vec();
        (r, out)
    }

    #[test]
    fn malloc_and_free() {
        let src = "extern void *malloc(unsigned long n);\n\
                   extern void free(void *p);\n\
                   int main(void) {\n\
                     int *p = (int *)malloc(4 * sizeof(int));\n\
                     for (int i = 0; i < 4; i++) p[i] = i + 1;\n\
                     int s = p[0] + p[1] + p[2] + p[3];\n\
                     free(p);\n\
                     return s;\n\
                   }";
        let (r, _) = run(src);
        assert_eq!(r.unwrap(), 10);
    }

    #[test]
    fn use_after_free_detected() {
        let src = "extern void *malloc(unsigned long n);\n\
                   extern void free(void *p);\n\
                   int main(void) {\n\
                     int *p = (int *)malloc(8);\n\
                     p[0] = 1;\n\
                     free(p);\n\
                     return p[0];\n\
                   }";
        let (r, _) = run(src);
        assert_eq!(r.unwrap_err(), RtError::UseAfterFree);
    }

    #[test]
    fn malloc_heap_oob_detected() {
        let src = "extern void *malloc(unsigned long n);\n\
                   int main(void) {\n\
                     int *p = (int *)malloc(2 * sizeof(int));\n\
                     p[5] = 1;\n\
                     return 0;\n\
                   }";
        let (r, _) = run(src);
        assert!(r.unwrap_err().is_memory_error());
    }

    #[test]
    fn printf_formats() {
        let src = r#"extern int printf(char *fmt, ...);
                   int main(void) {
                     printf("n=%d s=%s c=%c x=%x u=%u%%\n", 42, "hi", 'A', 255, 7);
                     return 0;
                   }"#;
        let (r, out) = run(src);
        assert_eq!(r.unwrap(), 0);
        assert_eq!(String::from_utf8_lossy(&out), "n=42 s=hi c=A x=ff u=7%\n");
    }

    #[test]
    fn printf_type_confusion_detected() {
        // The paper: "a printf that is passed a FILE* when expecting a
        // char*" — here an int for %s, the same bug class.
        let src = r#"extern int printf(char *fmt, ...);
                   int main(void) { printf("%s", 42); return 0; }"#;
        let (r, _) = run(src);
        assert!(r.unwrap_err().is_memory_error());
    }

    #[test]
    fn string_builtins_work_raw() {
        let src = r#"extern unsigned long strlen(char *s);
                   extern char *strcpy(char *dst, char *src);
                   extern int strcmp(char *a, char *b);
                   int main(void) {
                     char buf[16];
                     strcpy(buf, "hello");
                     if (strcmp(buf, "hello") != 0) return 1;
                     return (int)strlen(buf);
                   }"#;
        let (r, _) = run(src);
        assert_eq!(r.unwrap(), 5);
    }

    #[test]
    fn getchar_consumes_input() {
        let src = "extern int getchar(void);\n\
                   int main(void) {\n\
                     int s = 0;\n\
                     int c;\n\
                     while ((c = getchar()) != -1) s += c;\n\
                     return s;\n\
                   }";
        let (r, _) = run_cured_io(src, b"ab");
        assert_eq!(r.unwrap(), ('a' as i64) + ('b' as i64));
    }

    #[test]
    fn net_roundtrip() {
        let src = "extern long net_recv(char *buf, long cap);\n\
                   extern long net_send(char *buf, long n);\n\
                   int main(void) {\n\
                     char buf[32];\n\
                     long n = net_recv(buf, 32);\n\
                     net_send(buf, n);\n\
                     return (int)n;\n\
                   }";
        let tu = ccured_ast::parse_translation_unit(src).unwrap();
        let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
        let mut i = Interp::new(&prog, ExecMode::Original);
        i.set_input(b"PING".to_vec());
        assert_eq!(i.run().unwrap(), 4);
        assert_eq!(i.output(), b"PING");
        assert!(i.counters.io_ops >= 2);
    }

    #[test]
    fn toupper_tolower_pass_eof_through() {
        let src = "extern int toupper(int c);\n\
                   extern int tolower(int c);\n\
                   int main(void) {\n\
                     if (toupper(-1) != -1) return 1;\n\
                     if (tolower(-1) != -1) return 2;\n\
                     if (toupper(300) != 300) return 3;\n\
                     if (toupper('a') != 'A') return 4;\n\
                     if (tolower('Z') != 'z') return 5;\n\
                     if (toupper('A') != 'A') return 6;\n\
                     return 0;\n\
                   }";
        let (r, _) = run(src);
        assert_eq!(r.unwrap(), 0);
    }

    #[test]
    fn snprintf_rejects_negative_size() {
        let src = r#"extern int snprintf(char *buf, long n, char *fmt, ...);
                   int main(void) {
                     char buf[8];
                     buf[0] = '!';
                     int r = snprintf(buf, -1, "%d", 1234567);
                     if (r != -1) return 1;
                     if (buf[0] != '!') return 2; /* nothing written */
                     r = snprintf(buf, 8, "%d", 123);
                     if (r != 3) return 3;
                     return 0;
                   }"#;
        let (r, _) = run(src);
        assert_eq!(r.unwrap(), 0);
    }

    #[test]
    fn net_recv_rejects_negative_capacity() {
        let src = "extern long net_recv(char *buf, long cap);\n\
                   int main(void) {\n\
                     char buf[8];\n\
                     long n = net_recv(buf, -4);\n\
                     if (n != -1) return 1;\n\
                     n = net_recv(buf, 8);\n\
                     return (int)n; /* the stream was not drained */\n\
                   }";
        let tu = ccured_ast::parse_translation_unit(src).unwrap();
        let prog = ccured_cil::lower_translation_unit(&tu).unwrap();
        let mut i = Interp::new(&prog, ExecMode::Original);
        i.set_input(b"PING".to_vec());
        assert_eq!(i.run().unwrap(), 4);
    }

    #[test]
    fn exit_unwinds() {
        let src = "extern void exit(int code);\n\
                   int main(void) { exit(3); return 0; }";
        let (r, _) = run(src);
        assert_eq!(r.unwrap(), 3);
    }

    #[test]
    fn wrapped_strcpy_catches_overflow_in_cured_mode() {
        let src = "int main(void) {\n\
                     char small[4];\n\
                     strcpy(small, \"this is far too long\");\n\
                     return 0;\n\
                   }";
        let cured = ccured::Curer::new()
            .with_stdlib_wrappers()
            .cure_source(src)
            .expect("cure");
        let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
        let e = i.run().unwrap_err();
        assert!(e.is_check_failure(), "wrapper must catch the overflow: {e}");
    }

    #[test]
    fn wrapped_strchr_returns_fat_pointer() {
        let src = "extern int printf(char *fmt, ...);\n\
                   int main(void) {\n\
                     char s[8];\n\
                     strcpy(s, \"a/b\");\n\
                     char *p = strchr(s, '/');\n\
                     if (p == 0) return 1;\n\
                     p[1] = 'c'; /* needs bounds from the original buffer */\n\
                     return s[2] == 'c' ? 0 : 2;\n\
                   }";
        let cured = ccured::Curer::new()
            .with_stdlib_wrappers()
            .cure_source(src)
            .expect("cure");
        let mut i = Interp::new(&cured.program, ExecMode::cured(&cured));
        assert_eq!(i.run().unwrap(), 0);
    }

    #[test]
    fn gethostbyname_split_compat() {
        let src = "struct hostent { char *h_name; char **h_aliases; int h_addrtype; };\n\
                   extern struct hostent *gethostbyname(char *name);\n\
                   extern int printf(char *fmt, ...);\n\
                   int main(void) {\n\
                     struct hostent *h = gethostbyname(\"example\");\n\
                     if (h == 0) return 1;\n\
                     printf(\"%s %s %s %d\\n\", h->h_name, h->h_aliases[0], h->h_aliases[1], h->h_addrtype);\n\
                     return 0;\n\
                   }";
        let (r, out) = run_cured_io(src, b"");
        assert_eq!(r.unwrap(), 0);
        assert_eq!(
            String::from_utf8_lossy(&out),
            "example example.local www.example 2\n"
        );
    }

    #[test]
    fn unknown_external_reported() {
        let src = "extern void frobnicate(void);\n\
                   int main(void) { frobnicate(); return 0; }";
        let (r, _) = run(src);
        assert_eq!(
            r.unwrap_err(),
            RtError::UnknownExternal("frobnicate".into())
        );
    }
}
