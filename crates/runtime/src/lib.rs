//! # ccured-rt
//!
//! The execution substrate for ccured-rs: a byte-accurate abstract machine
//! (a miniature Miri) that runs CIL programs either **original** (plain C
//! semantics, with the memory model as ground truth for memory errors) or
//! **cured** (fat-pointer representations per the inferred kinds, executing
//! the instrumentation checks of paper Figures 10–11), plus three baseline
//! instrumentation modes used in the paper's comparisons:
//!
//! * `Purify`: 2 status bits per byte, checked on every access of the
//!   original program, plus binary-translation dispatch cost,
//! * `Valgrind`: 9 shadow bits per byte with per-instruction JIT dispatch,
//! * `JonesKelly`: bounds checking through a global object-registry lookup
//!   on every pointer operation (the related-work splay-tree approach).
//!
//! Every run produces [`cost::Counters`], which the deterministic
//! [`cost::CostModel`] converts into abstract cycles; overhead ratios
//! between modes regenerate the paper's tables.
//!
//! # Examples
//!
//! ```
//! use ccured_rt::{Interp, ExecMode};
//!
//! let cured = ccured::Curer::new()
//!     .cure_source("int main(void) { int a[4]; a[0] = 7; return a[0]; }")
//!     .unwrap();
//! let mut interp = Interp::new(&cured.program, ExecMode::cured(&cured));
//! let exit = interp.run().unwrap();
//! assert_eq!(exit, 7);
//! ```

pub mod bytecode;
pub mod cost;
pub mod err;
pub mod external;
pub mod interp;
pub mod limits;
pub mod mem;
pub mod profile;
pub mod value;

pub use cost::{CostModel, Counters};
pub use err::RtError;
pub use interp::{Engine, ExecMode, Interp, TierMode, TierStats, DEFAULT_TIER_THRESHOLD};
pub use limits::Limits;
pub use mem::{AllocId, AllocKind, Memory, Pointer};
pub use profile::{tier_plan, Profile, SiteCounters, SiteReport, TierPlan, PGO_SCHEMA};
pub use value::{PtrVal, Value};
