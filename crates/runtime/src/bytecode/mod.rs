//! The bytecode engine: compiles each CIL [`Function`] into a flat,
//! linear instruction stream and executes it with a non-recursive-per-op
//! dispatch loop, replacing the tree-walking hot path.
//!
//! Compilation (once per function, cached on the interpreter) resolves
//! everything the tree engine re-derives on every visit:
//!
//! * `goto label` becomes a `Jump` to a pre-resolved instruction index —
//!   no label scan, no `String` in the control-flow path;
//! * field offsets, array element sizes, aggregate sizes and static lvalue
//!   types are computed at compile time from the type tables;
//! * fuel/deadline accounting is *batched*: each op carries the number of
//!   tree-engine `step()`s it stands for, charged in one transaction.
//!
//! Execution drives the exact same [`crate::mem::Memory`],
//! [`crate::cost::Counters`] and [`crate::limits::Limits`] machinery as the
//! tree engine, so every observable — program output, exit code, check
//! verdicts, every counter, the precise step at which fuel runs out — is
//! identical. The tree engine remains the reference semantics
//! (`--engine tree`); the differential suite in `tests/tests/vm.rs` holds
//! the two to byte-for-byte agreement.
//!
//! [`Function`]: ccured_cil::ir::Function

mod compile;
mod ops;
mod vm;

pub(crate) use compile::compile;
pub(crate) use ops::CompiledFn;
pub(crate) use vm::FramePlan;
