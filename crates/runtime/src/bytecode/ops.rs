//! The bytecode instruction set.
//!
//! Each [`Op`] carries a `cost`: the number of tree-engine `step()` calls
//! (statement/instruction/expression-node visits) the reference interpreter
//! performs between the previous op's work and this op's work. The dispatch
//! loop charges it in one batched fuel transaction before executing the op,
//! so instruction counts, per-mode shadow work, and the exact step at which
//! fuel runs out are identical to the tree engine's.

use crate::err::RtError;
use crate::value::Value;
use ccured_cil::ir::{BinOp, CastId, Check, FuncId, LocalId, SiteId, UnOp};
use ccured_cil::types::{IntKind, QualId, TypeId};

/// Scalar normalization, resolved from the declared type at compile time.
/// One rule serves register stores (`normalize_scalar`) and numeric casts
/// (`eval_cast`'s non-pointer arm) — the reference interpreter applies the
/// identical conversion table in both places.
#[derive(Clone, Copy)]
pub(crate) enum RegNorm {
    /// Integer target: truncate to the kind's width/signedness.
    Int(IntKind),
    /// `float` target: round through `f32`.
    Float32,
    /// `double` target: integers convert, floats pass through.
    Float64,
    /// Pointer/aggregate targets store unchanged.
    Pass,
}

impl RegNorm {
    /// Applies the normalization (see `Interp::normalize_scalar`).
    #[inline]
    pub(crate) fn apply(self, v: Value, machine: &ccured_cil::types::Machine) -> Value {
        use crate::interp::trunc_int;
        match (self, v) {
            (RegNorm::Int(k), Value::Int(x)) => Value::Int(trunc_int(x, k, machine)),
            (RegNorm::Int(k), Value::Float(f)) => Value::Int(trunc_int(f as i128, k, machine)),
            (RegNorm::Float32, Value::Float(f)) => Value::Float(f as f32 as f64),
            (RegNorm::Float32 | RegNorm::Float64, Value::Int(x)) => Value::Float(x as f64),
            (_, v) => v,
        }
    }
}

/// The zero value a register local reads as under the zeroing allocator,
/// compressed from the declared type (see `Interp::zero_value`).
#[derive(Clone, Copy)]
pub(crate) enum ZeroKind {
    /// Integer (and any other non-float, non-pointer) target: `0`.
    Int,
    /// Float target: `0.0`.
    Float,
    /// Pointer target: null.
    Ptr,
}

impl ZeroKind {
    /// The zero value itself.
    #[inline]
    pub(crate) fn value(self) -> Value {
        match self {
            ZeroKind::Int => Value::Int(0),
            ZeroKind::Float => Value::Float(0.0),
            ZeroKind::Ptr => Value::NULL,
        }
    }
}

/// One bytecode instruction: a batched step cost plus the operation.
pub(crate) struct Op<'p> {
    /// Tree-engine steps charged (fuel, mode work) before `kind` executes.
    pub(crate) cost: u32,
    /// The operation itself.
    pub(crate) kind: OpKind<'p>,
}

/// Which compilation tier produced a [`CompiledFn`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Tier {
    /// Cheap cold-function compile: no fusion, backward jumps are
    /// [`OpKind::JumpBack`] heat probes, op indices equal raw emit indices.
    Baseline,
    /// Peephole-optimized (the legacy single-tier stream, or the extended
    /// hot-tier stream). Terminal: never recompiled again.
    Opt,
}

/// A compiled function: a linear instruction stream with all jump targets
/// resolved to instruction indices and all type/layout decisions (register
/// vs memory locals, field offsets, element sizes, check kinds, WILD-store
/// tagging) precomputed at compile time.
pub(crate) struct CompiledFn<'p> {
    /// The instruction stream; execution starts at index 0.
    pub(crate) ops: Vec<Op<'p>>,
    /// Which tier compiled this stream.
    pub(crate) tier: Tier,
    /// Raw (unfused) op index -> index in this stream. Baseline code is
    /// unfused, so its pc values *are* raw indices; a hot recompile's map
    /// translates them for on-stack replacement at a back edge. Jump
    /// targets are always label positions, which fusion never spans, so
    /// the mapped index is always an op start.
    pub(crate) osr_map: Vec<u32>,
}

/// Pre-resolved `switch` dispatch: sorted case values and a default target.
pub(crate) struct SwitchTable {
    /// `(case value, target index)`, sorted by value; the first arm listing
    /// a value wins, like the tree engine's in-order scan.
    pub(crate) cases: Vec<(i128, u32)>,
    /// Target when no case matches (the first `default` arm, or the end of
    /// the switch).
    pub(crate) default: u32,
}

/// Operations. Value operands travel on a `Value` stack; memory addresses
/// under computation travel on a separate `Pointer` stack (an lvalue's base
/// and offset chain), keeping both untyped and `Copy`.
pub(crate) enum OpKind<'p> {
    /// Charge the cost only (flushed pending steps before a jump target).
    Nop,
    /// Push a constant.
    Push(Value),
    /// Push the value of a register-allocated local. The payload is the
    /// type's zero value, served when the zeroing allocator covers an
    /// uninitialized read.
    LoadReg(LocalId, ZeroKind),
    /// Pop an address, load a scalar of the given type from memory (the
    /// generic fallback — scalar loads compile to the specialized ops
    /// below; this arm only survives to raise the tree engine's exact
    /// "load of ..." error for unsupported types).
    LoadMem(TypeId),
    /// Pop an address, load an integer of `size` bytes.
    LoadInt {
        /// Byte width.
        size: u64,
        /// Sign-extend on load.
        signed: bool,
    },
    /// Pop an address, load a float of `size` (4 or 8) bytes.
    LoadFloat {
        /// Byte width.
        size: u64,
    },
    /// Pop an address, load a pointer slot.
    LoadPtr {
        /// Declared qualifier (split-representation metadata accounting).
        q: QualId,
    },
    /// Pop a value into a register-allocated local, normalizing with the
    /// precompiled rule.
    StoreReg(LocalId, RegNorm),
    /// Pop an address and a value, store into memory (escape-checked; a
    /// `wild_tag` store pays WILD tag-bitmap upkeep). Generic fallback,
    /// like [`OpKind::LoadMem`].
    StoreMem {
        /// Declared type of the destination.
        ty: TypeId,
        /// Destination was reached through a WILD dereference.
        wild_tag: bool,
    },
    /// Pop an address and a value, store an integer.
    StoreInt {
        /// Target integer kind (truncation rule).
        k: IntKind,
        /// Byte width.
        size: u64,
        /// Destination was reached through a WILD dereference.
        wild_tag: bool,
    },
    /// Pop an address and a value, store a float of `size` (4 or 8) bytes.
    StoreFloat {
        /// Byte width.
        size: u64,
        /// Destination was reached through a WILD dereference.
        wild_tag: bool,
    },
    /// Pop an address and a value, store a pointer slot.
    StorePtr {
        /// Declared qualifier (split-representation metadata accounting).
        q: QualId,
        /// Destination was reached through a WILD dereference.
        wild_tag: bool,
    },
    /// Push the address of a memory-allocated local.
    LocalAddr(LocalId),
    /// Push the address of a global (index into `Interp::globals`).
    GlobalAddr(u32),
    /// Pop a pointer value, check it is dereferenceable, push its address.
    Deref,
    /// Add a static field offset to the address on top of the stack.
    FieldAdd(i64),
    /// Pop an index value, scale by the element size, add to the address.
    IndexAdd(u64),
    /// Pop an address, push the fat pointer `make_ptr` builds for it
    /// (`&lval` / array decay; `extent` is the static array extent).
    MakePtr {
        /// The pointer type taken of the lvalue.
        ty: TypeId,
        /// Static extent in bytes for array decays.
        extent: Option<u64>,
    },
    /// Apply a unary operator to the top of the stack.
    Unop(UnOp, TypeId),
    /// Pop two values, apply a binary operator (generic fallback for the
    /// rare shapes: `MinusPP`, unsized pointer-arith elements).
    Binop {
        /// The operator.
        op: BinOp,
        /// Static type of the left operand (element size for ptr arith).
        a_ty: TypeId,
        /// Result type (integer truncation width).
        res_ty: TypeId,
    },
    /// Pop two values, apply an arithmetic/bitwise operator with the result
    /// truncation resolved at compile time.
    BinArith {
        /// The operator (`Add`..`BitOr`, never pointer/comparison forms).
        op: BinOp,
        /// Integer result truncation (`None`: non-integer result type).
        trunc: Option<IntKind>,
    },
    /// Pop two values, compare (`Lt`..`Ne`; needs no type data).
    BinCmp(BinOp),
    /// Pop an integer and a pointer, bump the pointer by `±n * elem`.
    PtrAdd {
        /// Static element size in bytes.
        elem: u64,
        /// `MinusPI` (subtract) instead of `PlusPI`.
        neg: bool,
    },
    /// Apply the cast at the given site to the top of the stack (pointer
    /// casts and other shapes the numeric fast path does not cover).
    Cast(CastId),
    /// Numeric (non-pointer) cast with the conversion resolved at compile
    /// time.
    CastNum(RegNorm),
    /// Unconditional jump.
    Jump(u32),
    /// Pop a value; jump if it is falsy.
    BranchIfZero(u32),
    /// Pop the scrutinee, dispatch through the table.
    Switch(Box<SwitchTable>),
    /// Call a defined function with the top `argc` values.
    CallStatic {
        /// Callee.
        f: FuncId,
        /// Argument count.
        argc: u32,
    },
    /// Call an external (index into `Program::externals`).
    CallExtern {
        /// External index.
        x: u32,
        /// Argument count.
        argc: u32,
    },
    /// Pop the function-pointer value (evaluated after the arguments, like
    /// the tree engine), then call it with the next `argc` values.
    CallPtr {
        /// Argument count.
        argc: u32,
    },
    /// Push the last call's result (zero if the callee returned nothing).
    PushResult,
    /// Pop an address, push it as a thin `SAFE` pointer value (by-value
    /// aggregate argument passing).
    AddrAsVal,
    /// Pop source and destination addresses, copy an aggregate.
    CopyAgg {
        /// Aggregate size in bytes.
        size: u64,
    },
    /// Enter a check: snapshot (instrs, loads) and count the check. The
    /// operand re-evaluation that follows is cost-neutral, exactly like the
    /// tree engine's `exec_check`.
    CheckBegin(&'p Check, SiteId),
    /// Pop the operand value, restore the snapshot, judge the check.
    CheckEnd(&'p Check, SiteId),
    /// Execute a guard-machinery check (probe/guarded/reset) through the
    /// shared structural executor: these have no single operand to inline,
    /// and routing them through `exec_check` keeps both engines' guard
    /// semantics and counters identical by construction.
    Hook(&'p Check, SiteId),
    /// Return from the function (popping the return value if present).
    Ret {
        /// Whether a return value is on the stack.
        has_value: bool,
    },
    /// Fall-off-the-end return with the type's zero value (`None` = void).
    RetDefault(Option<Value>),
    /// A statically known runtime error (e.g. a `goto` to an invisible
    /// label, or an unsized type where a size is required), raised with the
    /// exact message the tree engine produces at this point.
    Fail(RtError),

    // ---- fused superinstructions -------------------------------------
    //
    // Each replaces an adjacent pair/triple of the ops above (the peephole
    // pass in `compile.rs` never fuses across a jump target). The carrier
    // op keeps the first constituent's `cost`; the later constituents'
    // costs ride along as `c2`/`c3` and are charged between the sub-steps,
    // so fuel exhaustion still lands on the exact step it would have in
    // the unfused (and tree) execution.
    /// `LoadReg` + `BinArith`: the register supplies the right operand.
    RegBinArith {
        /// Right-operand register.
        l: LocalId,
        /// Zero served for an uninitialized covered read.
        zk: ZeroKind,
        /// The operator.
        op: BinOp,
        /// Integer result truncation.
        trunc: Option<IntKind>,
        /// Cost of the fused `BinArith`.
        c2: u32,
    },
    /// `LoadReg` + `BinCmp`.
    RegBinCmp {
        /// Right-operand register.
        l: LocalId,
        /// Zero served for an uninitialized covered read.
        zk: ZeroKind,
        /// The comparison.
        op: BinOp,
        /// Cost of the fused `BinCmp`.
        c2: u32,
    },
    /// `LoadReg` + `BinCmp` + `BranchIfZero`: a full loop/if condition.
    RegCmpBranch {
        /// Right-operand register.
        l: LocalId,
        /// Zero served for an uninitialized covered read.
        zk: ZeroKind,
        /// The comparison.
        op: BinOp,
        /// Branch target when the comparison is false.
        target: u32,
        /// Cost of the fused `BinCmp`.
        c2: u32,
        /// Cost of the fused `BranchIfZero`.
        c3: u32,
    },
    /// `LoadReg` + `StoreReg`: register-to-register copy.
    RegStoreReg {
        /// Source register.
        src: LocalId,
        /// Zero served for an uninitialized covered read.
        zk: ZeroKind,
        /// Destination register.
        dst: LocalId,
        /// Destination normalization.
        norm: RegNorm,
        /// Cost of the fused `StoreReg`.
        c2: u32,
    },
    /// `Push(Int)` + `BinArith`: immediate right operand.
    PushBinArith {
        /// Immediate right operand.
        v: i128,
        /// The operator.
        op: BinOp,
        /// Integer result truncation.
        trunc: Option<IntKind>,
        /// Cost of the fused `BinArith`.
        c2: u32,
    },
    /// `Push(Int)` + `BinCmp`.
    PushBinCmp {
        /// Immediate right operand.
        v: i128,
        /// The comparison.
        op: BinOp,
        /// Cost of the fused `BinCmp`.
        c2: u32,
    },
    /// `Push(Int)` + `BinCmp` + `BranchIfZero`.
    PushCmpBranch {
        /// Immediate right operand.
        v: i128,
        /// The comparison.
        op: BinOp,
        /// Branch target when the comparison is false.
        target: u32,
        /// Cost of the fused `BinCmp`.
        c2: u32,
        /// Cost of the fused `BranchIfZero`.
        c3: u32,
    },
    /// `Push(Int)` + `StoreReg`: store an immediate into a register.
    PushStoreReg {
        /// Immediate value.
        v: i128,
        /// Destination register.
        l: LocalId,
        /// Destination normalization.
        norm: RegNorm,
        /// Cost of the fused `StoreReg`.
        c2: u32,
    },
    /// `BinCmp` + `BranchIfZero` (both operands from the stack).
    CmpBranch {
        /// The comparison.
        op: BinOp,
        /// Branch target when the comparison is false.
        target: u32,
        /// Cost of the fused `BranchIfZero`.
        c2: u32,
    },
    /// `BinArith` + `StoreReg`: compute into a register.
    ArithStoreReg {
        /// The operator.
        op: BinOp,
        /// Integer result truncation.
        trunc: Option<IntKind>,
        /// Destination register.
        l: LocalId,
        /// Destination normalization.
        norm: RegNorm,
        /// Cost of the fused `StoreReg`.
        c2: u32,
    },
    /// `LoadInt` + `BinArith`: memory load supplies the right operand.
    LoadIntArith {
        /// Byte width of the load.
        size: u64,
        /// Sign-extend on load.
        signed: bool,
        /// The operator.
        op: BinOp,
        /// Integer result truncation.
        trunc: Option<IntKind>,
        /// Cost of the fused `BinArith`.
        c2: u32,
    },
    /// `LoadInt` + `StoreReg`: load a memory integer into a register.
    LoadIntStoreReg {
        /// Byte width of the load.
        size: u64,
        /// Sign-extend on load.
        signed: bool,
        /// Destination register.
        l: LocalId,
        /// Destination normalization.
        norm: RegNorm,
        /// Cost of the fused `StoreReg`.
        c2: u32,
    },

    // ---- tiering ------------------------------------------------------
    /// A backward `Jump` in baseline-tier code: identical control flow,
    /// plus a per-function heat bump that can trigger hot recompilation
    /// with on-stack replacement (the target is a raw index, translated
    /// through the hot stream's `osr_map`). Only the baseline compile
    /// emits this op.
    JumpBack(u32),

    // ---- extended (hot-tier) superinstructions ------------------------
    //
    // Compiled only by the hot tier (and by `--pgo`-planned functions).
    // Same cost protocol as the base set: the carrier keeps the first
    // constituent's cost, later constituents' costs are charged between
    // the sub-steps.
    /// `LoadReg` + `LoadReg` + `BinCmp` + `BranchIfZero`: a whole
    /// register-register loop/if condition in one dispatch.
    RegRegCmpBranch {
        /// Left-operand register.
        a: LocalId,
        /// Zero served for an uninitialized covered read of `a`.
        za: ZeroKind,
        /// Right-operand register.
        b: LocalId,
        /// Zero served for an uninitialized covered read of `b`.
        zb: ZeroKind,
        /// The comparison.
        op: BinOp,
        /// Branch target when the comparison is false.
        target: u32,
        /// Cost of the fused second `LoadReg`.
        c2: u32,
        /// Cost of the fused `BinCmp`.
        c3: u32,
        /// Cost of the fused `BranchIfZero`.
        c4: u32,
    },
    /// `LoadReg` + `LoadReg` + `BinArith`: register-register arithmetic.
    RegRegArith {
        /// Left-operand register.
        a: LocalId,
        /// Zero served for an uninitialized covered read of `a`.
        za: ZeroKind,
        /// Right-operand register.
        b: LocalId,
        /// Zero served for an uninitialized covered read of `b`.
        zb: ZeroKind,
        /// The operator.
        op: BinOp,
        /// Integer result truncation.
        trunc: Option<IntKind>,
        /// Cost of the fused second `LoadReg`.
        c2: u32,
        /// Cost of the fused `BinArith`.
        c3: u32,
    },
    /// `LoadReg` + `LoadReg` + `PtrAdd`: the `p + i` of an indexed access.
    RegRegPtrAdd {
        /// Pointer register.
        p: LocalId,
        /// Zero served for an uninitialized covered read of `p`.
        zp: ZeroKind,
        /// Index register.
        i: LocalId,
        /// Zero served for an uninitialized covered read of `i`.
        zi: ZeroKind,
        /// Static element size in bytes.
        elem: u64,
        /// `MinusPI` (subtract) instead of `PlusPI`.
        neg: bool,
        /// Cost of the fused second `LoadReg`.
        c2: u32,
        /// Cost of the fused `PtrAdd`.
        c3: u32,
    },
    /// `LoadReg` + `Push(Int)` + `BinArith`: register-immediate
    /// arithmetic.
    RegImmArith {
        /// Left-operand register.
        l: LocalId,
        /// Zero served for an uninitialized covered read.
        zk: ZeroKind,
        /// Immediate right operand.
        v: i128,
        /// The operator.
        op: BinOp,
        /// Integer result truncation.
        trunc: Option<IntKind>,
        /// Cost of the fused `Push`.
        c2: u32,
        /// Cost of the fused `BinArith`.
        c3: u32,
    },
    /// `LoadReg` + `Push(Int)` + `BinArith` + `StoreReg`: the canonical
    /// `i = i + 1` quad in one dispatch.
    RegImmArithStore {
        /// Left-operand register.
        l: LocalId,
        /// Zero served for an uninitialized covered read.
        zk: ZeroKind,
        /// Immediate right operand.
        v: i128,
        /// The operator.
        op: BinOp,
        /// Integer result truncation.
        trunc: Option<IntKind>,
        /// Destination register.
        dst: LocalId,
        /// Destination normalization.
        norm: RegNorm,
        /// Cost of the fused `Push`.
        c2: u32,
        /// Cost of the fused `BinArith`.
        c3: u32,
        /// Cost of the fused `StoreReg`.
        c4: u32,
    },
    /// `LoadInt` + `BinArith` + `StoreReg`: accumulate a memory integer
    /// into a register (`s = s + a[i]`'s tail).
    LoadIntArithStore {
        /// Byte width of the load.
        size: u64,
        /// Sign-extend on load.
        signed: bool,
        /// The operator.
        op: BinOp,
        /// Integer result truncation.
        trunc: Option<IntKind>,
        /// Destination register.
        l: LocalId,
        /// Destination normalization.
        norm: RegNorm,
        /// Cost of the fused `BinArith`.
        c2: u32,
        /// Cost of the fused `StoreReg`.
        c3: u32,
    },
    /// `LoadReg` + `Push(Int)` + `BinCmp` + `BranchIfZero`: a whole
    /// register-vs-immediate guard in one dispatch — the list-walk
    /// `p != 0` / `t == 0` shape.
    RegImmCmpBranch {
        /// Left-operand register.
        l: LocalId,
        /// Zero served for an uninitialized covered read.
        zk: ZeroKind,
        /// Immediate right operand.
        v: i128,
        /// The comparison.
        op: BinOp,
        /// Branch target when the comparison is false.
        target: u32,
        /// Cost of the fused `Push`.
        c2: u32,
        /// Cost of the fused `BinCmp`.
        c3: u32,
        /// Cost of the fused `BranchIfZero`.
        c4: u32,
    },
    /// `LoadInt` + `BinCmp` + `BranchIfZero`: a memory-bound loop guard
    /// (`i < n->degree`) in one dispatch.
    LoadIntCmpBranch {
        /// Byte width of the load.
        size: u64,
        /// Sign-extend on load.
        signed: bool,
        /// The comparison.
        op: BinOp,
        /// Branch target when the comparison is false.
        target: u32,
        /// Cost of the fused `BinCmp`.
        c2: u32,
        /// Cost of the fused `BranchIfZero`.
        c3: u32,
    },
    /// `LoadInt` + `Push(Int)` + `BinCmp` + `BranchIfZero`: a whole
    /// tag-dispatch guard (`s->kind == K`) in one dispatch.
    LoadIntImmCmpBranch {
        /// Byte width of the load.
        size: u64,
        /// Sign-extend on load.
        signed: bool,
        /// Immediate right operand.
        v: i128,
        /// The comparison.
        op: BinOp,
        /// Branch target when the comparison is false.
        target: u32,
        /// Cost of the fused `Push`.
        c2: u32,
        /// Cost of the fused `BinCmp`.
        c3: u32,
        /// Cost of the fused `BranchIfZero`.
        c4: u32,
    },
    /// `LoadReg` + `StorePtr`: a register pointer stored straight to
    /// memory (`slots[i] = cell`) in one dispatch.
    RegStorePtr {
        /// Value register.
        l: LocalId,
        /// Zero served for an uninitialized covered read.
        zk: ZeroKind,
        /// Declared qualifier (split-representation metadata accounting).
        q: QualId,
        /// Destination was reached through a WILD dereference.
        wild_tag: bool,
        /// Cost of the fused `StorePtr`.
        c2: u32,
    },
    /// `LoadFloat` + `BinArith`: a float operand loaded from memory
    /// straight into its operator (the float analog of `LoadIntArith`).
    LoadFloatArith {
        /// Byte width of the load.
        size: u64,
        /// The operator.
        op: BinOp,
        /// Integer result truncation.
        trunc: Option<IntKind>,
        /// Cost of the fused `BinArith`.
        c2: u32,
    },
    /// `CheckBegin` + `LoadReg` + `CheckEnd`: a whole check of a register
    /// operand (profile-selected: only sites the tier plan or the live
    /// site heat rank hot compile to this form).
    CheckReg {
        /// The check.
        c: &'p Check,
        /// Its site.
        site: SiteId,
        /// Operand register.
        l: LocalId,
        /// Zero served for an uninitialized covered read.
        zk: ZeroKind,
        /// Cost of the fused `LoadReg`.
        c2: u32,
        /// Cost of the fused `CheckEnd`.
        c3: u32,
    },
    /// `CheckBegin` + `LoadReg` + `LoadReg` + `PtrAdd` + `CheckEnd`: a
    /// whole `CHECK_SEQ(p + i)` in one dispatch (profile-selected).
    CheckSeqIdx {
        /// The check.
        c: &'p Check,
        /// Its site.
        site: SiteId,
        /// Pointer register.
        p: LocalId,
        /// Zero served for an uninitialized covered read of `p`.
        zp: ZeroKind,
        /// Index register.
        i: LocalId,
        /// Zero served for an uninitialized covered read of `i`.
        zi: ZeroKind,
        /// Static element size in bytes.
        elem: u64,
        /// `MinusPI` (subtract) instead of `PlusPI`.
        neg: bool,
        /// Cost of the fused first `LoadReg`.
        c2: u32,
        /// Cost of the fused second `LoadReg`.
        c3: u32,
        /// Cost of the fused `PtrAdd`.
        c4: u32,
        /// Cost of the fused `CheckEnd`.
        c5: u32,
    },
    /// `Hook` + `Hook`: adjacent guard-machinery checks — most notably
    /// the widener's probe + guarded-residual pair — in one dispatch.
    HookHook {
        /// First check.
        a: &'p Check,
        /// Its site.
        sa: SiteId,
        /// Second check.
        b: &'p Check,
        /// Its site.
        sb: SiteId,
        /// Cost of the fused second `Hook`.
        c2: u32,
    },
    /// Check+branch fusion: a fused compare-and-branch whose fall-through
    /// lands directly on a guard-machinery `Hook` (the hook is skipped —
    /// cost and all — when the branch is taken, exactly like unfused
    /// execution jumping past it).
    RegCmpBranchHook {
        /// Right-operand register of the comparison.
        l: LocalId,
        /// Zero served for an uninitialized covered read.
        zk: ZeroKind,
        /// The comparison.
        op: BinOp,
        /// Branch target when the comparison is false.
        target: u32,
        /// Cost of the fused `BinCmp`.
        c2: u32,
        /// Cost of the fused `BranchIfZero`.
        c3: u32,
        /// The fall-through check.
        h: &'p Check,
        /// Its site.
        hs: SiteId,
        /// Cost of the fused `Hook`.
        c4: u32,
    },
}
