//! The bytecode dispatch loop.
//!
//! One flat loop drives the whole guest call stack: guest calls push a
//! suspended `VmFrame` and switch `code`/`pc` instead of recursing on the
//! host stack (the host-stack-depth sandbox check in `push_frame` still
//! applies unchanged). All memory, counter, limit and check machinery is
//! the same `Interp` state the tree engine uses — the ops below call the
//! exact same `pub(crate)` helpers (`load_place`, `store_mem_checked`,
//! `apply_binop`, `eval_cast`, `make_ptr`, ...), so behaviour can only
//! diverge if compilation placed an op or a cost wrong, which is what the
//! differential suite pins down.

use super::compile::FuseLevel;
use super::ops::{CompiledFn, OpKind, RegNorm, Tier, ZeroKind};
use crate::err::RtError;
use crate::interp::{
    compare_f, compare_i, no_frame, trunc_int, ExecMode, Frame, Interp, LocalSlot, Place, TierMode,
};
use crate::mem::{AllocKind, Pointer};
use crate::value::{PtrVal, Value};
use ccured_cil::ir::{BinOp, FnRef, FuncId, LocalId};
use ccured_cil::types::Type;
use std::rc::Rc;

/// Precomputed frame layout for the VM's fast call path — everything
/// `push_frame` re-derives from the type tables on every call, resolved
/// once per function: which locals get memory slots (and their sizes),
/// and the store normalization of each register parameter. Functions the
/// plan cannot describe exactly (an unsized local) fall back to the
/// generic `push_frame` wholesale; parameters it cannot describe (memory
/// or aggregate bindings) fall back per-parameter to `store_local`.
pub(crate) struct FramePlan {
    /// Per local: `Some(size)` = memory slot of that size, `None` = register.
    slot_sizes: Vec<Option<u64>>,
    /// Per parameter: `Some(norm)` = register scalar, stored directly;
    /// `None` = generic `store_local` (memory slot, aggregate copy).
    params: Vec<Option<RegNorm>>,
    /// The shared per-function facts, cloned into each frame.
    info: Rc<crate::interp::FnInfo>,
}

/// A suspended caller: where to resume when the callee returns. Holding
/// the `Rc` (not an index into the cache) is what makes mid-run hot
/// recompilation safe: a suspended activation resumes in the exact code
/// object it was compiled against, at its own pc.
struct VmFrame<'p> {
    code: Rc<CompiledFn<'p>>,
    func: FuncId,
    pc: u32,
    val_base: usize,
    addr_base: usize,
}

fn underflow() -> RtError {
    RtError::Internal("vm operand stack underflow".into())
}

impl<'p> Interp<'p> {
    /// The compiled bytecode for `f`: the tier-selection point, called on
    /// every guest entry to `f`. Untiered, it compiles once with the base
    /// fusion set. Tiered, each entry bumps the function's heat; cold
    /// functions get the cheap unfused baseline, and a function crossing
    /// the threshold (or named hot by the `--pgo` plan) is (re)compiled
    /// with the extended superinstruction set. Already-running activations
    /// keep their old code object; only new entries see the hot one.
    pub(crate) fn compiled_fn(&mut self, f: FuncId) -> Rc<CompiledFn<'p>> {
        let idx = f.0 as usize;
        let threshold = match self.tier_mode {
            TierMode::Off => {
                if let Some(Some(code)) = self.compiled.get(idx) {
                    return Rc::clone(code);
                }
                let info = self.fn_info(f);
                let code = Rc::new(super::compile(self, f, &info.mem_locals, FuseLevel::Base));
                self.cache_compiled(idx, &code);
                return code;
            }
            TierMode::On { threshold } => u64::from(threshold),
        };
        // Promoted functions are on the fast path: no heat bookkeeping, a
        // steady-state tiered call costs the same as an untiered one.
        if let Some(Some(code)) = self.compiled.get(idx) {
            if code.tier == Tier::Opt {
                return Rc::clone(code);
            }
        }
        let heat = self.bump_heat(idx);
        match self.compiled.get(idx).and_then(|c| c.as_ref()) {
            Some(code) if heat < threshold => Rc::clone(code),
            Some(_) => self.hot_fn(f),
            None if heat >= threshold || self.plan_hot(f) => self.hot_fn(f),
            None => {
                let info = self.fn_info(f);
                let code = Rc::new(super::compile(self, f, &info.mem_locals, FuseLevel::None));
                self.cache_compiled(idx, &code);
                code
            }
        }
    }

    /// Refreshes the per-check hot-site tracking flag for the code object
    /// the dispatch loop is about to execute. Site heat only matters while
    /// baseline code warms up (it feeds the hot recompiler's check-fusion
    /// selection); once a function is promoted its fusion choices are
    /// final, so hot code runs with tracking off — the same per-check cost
    /// as the untiered VM.
    #[inline]
    fn note_code_tier(&mut self, code: &CompiledFn<'p>) {
        self.tier_track = matches!(self.tier_mode, TierMode::On { .. }) && code.tier != Tier::Opt;
    }

    /// The frame plan for `f`, built on first use. `None` means the
    /// function has a local the plan cannot size statically; callers use
    /// the generic `push_frame` for it (preserving its exact error and
    /// counter behaviour).
    fn frame_plan(&mut self, f: FuncId) -> Option<Rc<FramePlan>> {
        let idx = f.0 as usize;
        if let Some(Some(entry)) = self.frame_plans.get(idx) {
            return entry.clone();
        }
        let info = self.fn_info(f);
        let func = &self.prog.functions[f.idx()];
        let mut slot_sizes = Vec::with_capacity(func.locals.len());
        let mut sizable = true;
        for (i, l) in func.locals.iter().enumerate() {
            if info.mem_locals[i] {
                match self.sized(l.ty, "stack local") {
                    Ok(size) => slot_sizes.push(Some(size.max(1))),
                    Err(_) => {
                        sizable = false;
                        break;
                    }
                }
            } else {
                slot_sizes.push(None);
            }
        }
        let entry = if sizable {
            let params = func
                .locals
                .iter()
                .take(func.param_count)
                .enumerate()
                .map(|(i, l)| {
                    if info.mem_locals[i] {
                        return None;
                    }
                    // The same declared-type table `StoreReg` compilation
                    // uses; `RegNorm::apply` mirrors `normalize_scalar`.
                    Some(match self.prog.types.get(l.ty) {
                        Type::Int(k) => RegNorm::Int(*k),
                        Type::Float(ccured_cil::types::FloatKind::Float) => RegNorm::Float32,
                        Type::Float(_) => RegNorm::Float64,
                        _ => RegNorm::Pass,
                    })
                })
                .collect();
            Some(Rc::new(FramePlan {
                slot_sizes,
                params,
                info,
            }))
        } else {
            None
        };
        if self.frame_plans.len() <= idx {
            self.frame_plans.resize(idx + 1, None);
        }
        self.frame_plans[idx] = Some(entry.clone());
        entry
    }

    /// `push_frame` specialized for the VM: same counters, same allocation
    /// order, same errors — but the type-table walks are precomputed in
    /// the [`FramePlan`], the frame buffers come from a recycling pool, and
    /// the arguments are bound straight from the tail of the caller's
    /// operand stack, so a steady-state call allocates nothing.
    fn vm_push_frame(
        &mut self,
        f: FuncId,
        vals: &mut Vec<Value>,
        argc: usize,
    ) -> Result<(), RtError> {
        let Some(plan) = self.frame_plan(f) else {
            let args = vals.split_off(vals.len() - argc);
            return self.push_frame(f, args);
        };
        self.counters.limit_checks += 1;
        if self.frames.len() >= self.limits.max_stack_depth {
            return Err(RtError::LimitExceeded {
                limit: "stack_limit",
                detail: format!(
                    "call depth exceeded the {}-frame stack cap",
                    self.limits.max_stack_depth
                ),
            });
        }
        let seq = self.next_frame_seq;
        self.next_frame_seq += 1;
        let (mut regs, mut slots, mut guards) = self.frame_pool.pop().unwrap_or_default();
        regs.clear();
        slots.clear();
        guards.clear();
        for sz in &plan.slot_sizes {
            match sz {
                None => slots.push(LocalSlot::Reg),
                Some(size) => {
                    let id = self.mem.alloc(*size, AllocKind::Stack { frame: seq })?;
                    self.register_alloc(id);
                    slots.push(LocalSlot::Mem(id));
                }
            }
            regs.push(None);
        }
        self.frames.push(Frame {
            func: f,
            seq,
            regs,
            slots,
            info: Rc::clone(&plan.info),
            guards,
        });
        self.counters.calls += 1;
        self.counters.peak_stack_depth =
            self.counters.peak_stack_depth.max(self.frames.len() as u64);
        let base = vals.len() - argc;
        for i in 0..argc.min(plan.params.len()) {
            let v = vals[base + i];
            match plan.params[i] {
                Some(norm) => {
                    let v = norm.apply(v, &self.prog.types.machine);
                    let fr = self.frames.last_mut().ok_or_else(no_frame)?;
                    fr.regs[i] = Some(v);
                }
                None => {
                    let ty = self.prog.functions[f.idx()].locals[i].ty;
                    self.store_local(LocalId(i as u32), ty, v)?;
                }
            }
        }
        vals.truncate(base);
        Ok(())
    }

    /// Returns a popped frame's buffers to the recycling pool (bounded, so
    /// a deep-recursion spike does not pin memory forever).
    #[inline]
    fn recycle_frame(&mut self, fr: Frame) {
        if self.frame_pool.len() < 64 {
            self.frame_pool.push((fr.regs, fr.slots, fr.guards));
        }
    }

    /// The hot-tier code for `f`, recompiling with the extended
    /// superinstruction set unless already promoted (recursion through a
    /// promoted function must not recompile, or invalidate, anything).
    fn hot_fn(&mut self, f: FuncId) -> Rc<CompiledFn<'p>> {
        let idx = f.0 as usize;
        if let Some(Some(code)) = self.compiled.get(idx) {
            if code.tier == Tier::Opt {
                return Rc::clone(code);
            }
        }
        let info = self.fn_info(f);
        // `hot_site_set` is the sites observed executing this run plus the
        // `--pgo` plan's, maintained incrementally as heat accrues.
        let code = Rc::new(super::compile(
            self,
            f,
            &info.mem_locals,
            FuseLevel::Extended {
                hot_sites: Some(&self.hot_site_set),
            },
        ));
        self.cache_compiled(idx, &code);
        self.tier_stats.promotions += 1;
        code
    }

    /// Whether the `--pgo` plan promotes `f` on first touch.
    fn plan_hot(&self, f: FuncId) -> bool {
        self.tier_plan
            .as_ref()
            .is_some_and(|p| p.hot_funcs.contains(&self.prog.functions[f.idx()].name))
    }

    /// A baseline back edge fired: bump heat and hand back the hot code
    /// when `f` just crossed the threshold (the caller OSRs into it).
    fn vm_back_edge(&mut self, f: FuncId) -> Option<Rc<CompiledFn<'p>>> {
        let TierMode::On { threshold } = self.tier_mode else {
            return None;
        };
        let heat = self.bump_heat(f.0 as usize);
        if heat >= u64::from(threshold) {
            Some(self.hot_fn(f))
        } else {
            None
        }
    }

    fn bump_heat(&mut self, idx: usize) -> u64 {
        if self.heat.len() <= idx {
            self.heat.resize(idx + 1, 0);
        }
        self.heat[idx] += 1;
        self.heat[idx]
    }

    fn cache_compiled(&mut self, idx: usize, code: &Rc<CompiledFn<'p>>) {
        if self.compiled.len() <= idx {
            self.compiled.resize(idx + 1, None);
        }
        self.compiled[idx] = Some(Rc::clone(code));
    }

    /// Runs `f` on the bytecode engine — the VM counterpart of
    /// `run_function`, including its error-path frame cleanup: the tree
    /// engine pops one guest frame per unwound host-stack level, the VM
    /// pops every frame above its entry point (observably identical).
    pub(crate) fn vm_call(
        &mut self,
        f: FuncId,
        args: Vec<Value>,
    ) -> Result<Option<Value>, RtError> {
        if !self.globals_ready {
            self.init_globals()?;
            self.globals_ready = true;
        }
        let base_frames = self.frames.len();
        let r = self.vm_run(f, args);
        if r.is_err() {
            // A check operand was mid-evaluation: restore its snapshot,
            // like the tree engine's `exec_check` does before propagating.
            if let Some((instrs, loads)) = self.vm_check_save.take() {
                self.counters.instrs = instrs;
                self.counters.loads = loads;
            }
            while self.frames.len() > base_frames {
                if let Some(fr) = self.frames.last() {
                    self.mem.kill_frame(fr.seq);
                }
                self.frames.pop();
            }
        }
        r
    }

    /// Arithmetic/bitwise operator with the result truncation pre-resolved
    /// (the `BinArith` fast path; mirrors `apply_binop`'s arithmetic arm).
    fn vm_arith(
        &self,
        op: ccured_cil::ir::BinOp,
        a: Value,
        b: Value,
        trunc: Option<ccured_cil::types::IntKind>,
    ) -> Result<Value, RtError> {
        use ccured_cil::ir::BinOp::*;
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => {
                let r = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => return Err(RtError::Unsupported(format!("float operator {op:?}"))),
                };
                Ok(Value::Float(r))
            }
            (Value::Int(x), Value::Int(y)) => {
                let r = match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => {
                        if y == 0 {
                            return Err(RtError::DivByZero);
                        }
                        x.wrapping_div(y)
                    }
                    Rem => {
                        if y == 0 {
                            return Err(RtError::DivByZero);
                        }
                        x.wrapping_rem(y)
                    }
                    Shl => x.wrapping_shl((y & 63) as u32),
                    Shr => x.wrapping_shr((y & 63) as u32),
                    BitAnd => x & y,
                    BitXor => x ^ y,
                    BitOr => x | y,
                    _ => unreachable!("BinArith compiled from a non-arithmetic operator"),
                };
                Ok(Value::Int(match trunc {
                    Some(k) => trunc_int(r, k, &self.prog.types.machine),
                    None => r,
                }))
            }
            (x, y) => Err(RtError::Unsupported(format!(
                "operator {op:?} between {x:?} and {y:?}"
            ))),
        }
    }

    /// Comparison (the `BinCmp` fast path; mirrors `apply_binop`'s
    /// comparison arm, pointers comparing by virtual address).
    fn vm_cmp(&self, op: BinOp, a: Value, b: Value) -> Result<bool, RtError> {
        Ok(match (a, b) {
            (Value::Int(x), Value::Int(y)) => compare_i(op, x, y),
            (Value::Float(x), Value::Float(y)) => compare_f(op, x, y),
            (Value::Ptr(x), Value::Ptr(y)) => {
                let vx = self.mem.va_of(&x) as i128;
                let vy = self.mem.va_of(&y) as i128;
                compare_i(op, vx, vy)
            }
            (Value::Ptr(x), Value::Int(y)) => compare_i(op, self.mem.va_of(&x) as i128, y),
            (Value::Int(x), Value::Ptr(y)) => compare_i(op, x, self.mem.va_of(&y) as i128),
            (x, y) => {
                return Err(RtError::Unsupported(format!(
                    "comparison between {x:?} and {y:?}"
                )))
            }
        })
    }

    /// Register read (the `LoadReg` body, shared with the fused forms).
    #[inline]
    fn vm_read_reg(&self, l: LocalId, zk: ZeroKind) -> Result<Value, RtError> {
        let fr = self.frames.last().ok_or_else(no_frame)?;
        match fr.regs[l.idx()] {
            Some(v) => Ok(v),
            // The zeroing allocator extends to register locals, exactly
            // like `load_place`.
            None if self.zero_init => Ok(zk.value()),
            None => Err(RtError::UninitRead),
        }
    }

    /// Register write (the `StoreReg` tail, shared with the fused forms;
    /// the caller has already normalized `v`).
    #[inline]
    fn vm_store_reg(&mut self, l: LocalId, v: Value) -> Result<(), RtError> {
        let fr = self.frames.last_mut().ok_or_else(no_frame)?;
        fr.regs[l.idx()] = Some(v);
        Ok(())
    }

    fn vm_run(&mut self, f: FuncId, args: Vec<Value>) -> Result<Option<Value>, RtError> {
        let mut vals: Vec<Value> = Vec::with_capacity(64);
        let mut addrs: Vec<Pointer> = Vec::with_capacity(32);
        let mut stack: Vec<VmFrame<'p>> = Vec::new();
        let mut last: Option<Value> = None;
        let mut val_base = 0usize;
        let mut addr_base = 0usize;
        let argc = args.len();
        vals.extend(args);
        self.vm_push_frame(f, &mut vals, argc)?;
        let mut code = self.compiled_fn(f);
        self.note_code_tier(&code);
        let mut cur_f = f;
        let mut pc = 0usize;
        loop {
            let op = &code.ops[pc];
            if op.cost != 0 {
                self.add_instrs(op.cost)?;
            }
            match &op.kind {
                OpKind::Nop => {}
                OpKind::Push(v) => vals.push(*v),
                OpKind::LoadReg(l, zk) => {
                    let v = self.vm_read_reg(*l, *zk)?;
                    vals.push(v);
                }
                OpKind::LoadMem(ty) => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    let v = self.load_place(Place::Mem(p), *ty)?;
                    vals.push(v);
                }
                OpKind::LoadInt { size, signed } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, *size, false)?;
                    self.counters.loads += 1;
                    let v = self.mem.read_int(p, *size, *signed)?;
                    vals.push(Value::Int(v));
                }
                OpKind::LoadFloat { size } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, *size, false)?;
                    self.counters.loads += 1;
                    let v = self.mem.read_float(p, *size)?;
                    vals.push(Value::Float(v));
                }
                OpKind::LoadPtr { q } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, self.word, false)?;
                    self.counters.loads += 1;
                    let v = self.mem.read_ptr(p, self.word)?;
                    if let ExecMode::Cured { sol, .. } = self.mode {
                        if sol.is_split(*q) {
                            self.counters.meta_ops += 1;
                        }
                    }
                    vals.push(Value::Ptr(v));
                }
                OpKind::StoreReg(l, norm) => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let v = norm.apply(v, &self.prog.types.machine);
                    let fr = self.frames.last_mut().ok_or_else(no_frame)?;
                    fr.regs[l.idx()] = Some(v);
                }
                OpKind::StoreMem { ty, wild_tag } => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.store_mem_checked(p, *ty, v, *wild_tag)?;
                }
                OpKind::StoreInt { k, size, wild_tag } => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.store_precheck(p, &v, *wild_tag)?;
                    self.access_hook(p, *size, true)?;
                    self.counters.stores += 1;
                    let x = match v {
                        Value::Int(x) => x,
                        Value::Float(f) => f as i128,
                        Value::Ptr(pv) => self.mem.va_of(&pv) as i128,
                    };
                    self.mem
                        .write_int(p, *size, trunc_int(x, *k, &self.prog.types.machine))?;
                }
                OpKind::StoreFloat { size, wild_tag } => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.store_precheck(p, &v, *wild_tag)?;
                    self.access_hook(p, *size, true)?;
                    self.counters.stores += 1;
                    let f = match v {
                        Value::Float(f) => f,
                        Value::Int(x) => x as f64,
                        Value::Ptr(_) => {
                            return Err(RtError::Unsupported("pointer stored as float".into()))
                        }
                    };
                    self.mem.write_float(p, *size, f)?;
                }
                OpKind::StorePtr { q, wild_tag } => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.store_precheck(p, &v, *wild_tag)?;
                    self.access_hook(p, self.word, true)?;
                    self.counters.stores += 1;
                    let pv = match v {
                        Value::Ptr(pv) => pv,
                        Value::Int(0) => PtrVal::Null,
                        Value::Int(x) => PtrVal::IntVal(x as u64),
                        Value::Float(_) => {
                            return Err(RtError::Unsupported("float stored as pointer".into()))
                        }
                    };
                    if let ExecMode::Cured { sol, .. } = self.mode {
                        if sol.is_split(*q) {
                            self.counters.meta_ops += 1;
                        }
                    }
                    self.mem.write_ptr(p, pv, self.word)?;
                }
                OpKind::LocalAddr(l) => {
                    let p = match self.frame()?.slots[l.idx()] {
                        crate::interp::LocalSlot::Mem(a) => Pointer {
                            alloc: a,
                            offset: 0,
                        },
                        crate::interp::LocalSlot::Reg => {
                            return Err(RtError::Internal(
                                "compiled address of a register local".into(),
                            ))
                        }
                    };
                    addrs.push(p);
                }
                OpKind::GlobalAddr(g) => {
                    let p = Pointer {
                        alloc: self.globals[*g as usize],
                        offset: 0,
                    };
                    addrs.push(p);
                }
                OpKind::Deref => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let pv = v
                        .as_ptr()
                        .ok_or_else(|| RtError::Unsupported("deref of non-pointer value".into()))?;
                    self.deref_hook(&pv)?;
                    let p = match pv {
                        PtrVal::Null => return Err(RtError::NullDeref),
                        PtrVal::IntVal(x) => {
                            return Err(RtError::InvalidPointer(format!(
                                "integer {x:#x} dereferenced"
                            )))
                        }
                        PtrVal::Fn(_) => {
                            return Err(RtError::InvalidPointer(
                                "function pointer dereferenced".into(),
                            ))
                        }
                        other => other.thin().ok_or_else(|| {
                            RtError::Internal("dereferenced pointer has no memory position".into())
                        })?,
                    };
                    addrs.push(p);
                }
                OpKind::FieldAdd(off) => {
                    let p = addrs.last_mut().ok_or_else(underflow)?;
                    *p = p.offset_by(*off);
                }
                OpKind::IndexAdd(es) => {
                    let i = vals
                        .pop()
                        .ok_or_else(underflow)?
                        .as_int()
                        .ok_or_else(|| RtError::Unsupported("non-integer index".into()))?;
                    let p = addrs.last_mut().ok_or_else(underflow)?;
                    *p = p.offset_by(i as i64 * *es as i64);
                }
                OpKind::MakePtr { ty, extent } => {
                    let (ty, extent) = (*ty, *extent);
                    let p = addrs.pop().ok_or_else(underflow)?;
                    let pv = self.make_ptr(p, ty, extent)?;
                    vals.push(Value::Ptr(pv));
                }
                OpKind::Unop(op, ty) => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let r = self.apply_unop(*op, v, *ty)?;
                    vals.push(r);
                }
                OpKind::Binop { op, a_ty, res_ty } => {
                    let (op, a_ty, res_ty) = (*op, *a_ty, *res_ty);
                    let b = vals.pop().ok_or_else(underflow)?;
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.apply_binop(op, a, b, a_ty, res_ty)?;
                    vals.push(r);
                }
                OpKind::BinArith { op, trunc } => {
                    let b = vals.pop().ok_or_else(underflow)?;
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_arith(*op, a, b, *trunc)?;
                    vals.push(r);
                }
                OpKind::BinCmp(op) => {
                    let b = vals.pop().ok_or_else(underflow)?;
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, b)?;
                    vals.push(Value::Int(r as i128));
                }
                OpKind::PtrAdd { elem, neg } => {
                    let b = vals.pop().ok_or_else(underflow)?;
                    let a = vals.pop().ok_or_else(underflow)?;
                    let pv = a.as_ptr().ok_or_else(|| {
                        RtError::Unsupported("pointer arithmetic on non-pointer".into())
                    })?;
                    let n = b.as_int().ok_or_else(|| {
                        RtError::Unsupported("pointer arithmetic with non-integer".into())
                    })?;
                    let delta = (n as i64).wrapping_mul(*elem as i64);
                    let delta = if *neg { -delta } else { delta };
                    self.ptr_arith_hook(&pv)?;
                    vals.push(Value::Ptr(pv.offset_by(delta)));
                }
                OpKind::Cast(id) => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let r = self.eval_cast(*id, v)?;
                    vals.push(r);
                }
                OpKind::CastNum(norm) => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    vals.push(norm.apply(v, &self.prog.types.machine));
                }
                OpKind::Jump(t) => {
                    pc = *t as usize;
                    continue;
                }
                OpKind::JumpBack(t) => {
                    // A baseline back edge. In an unfused stream pc == raw
                    // index, and back edges only target label positions, so
                    // when the function just went hot the raw target maps
                    // through `osr_map` to an op start in the fused stream
                    // — on-stack replacement is a plain jump.
                    let t = *t as usize;
                    if let Some(hot) = self.vm_back_edge(cur_f) {
                        self.tier_stats.osr += 1;
                        pc = hot.osr_map[t] as usize;
                        self.note_code_tier(&hot);
                        code = hot;
                        continue;
                    }
                    pc = t;
                    continue;
                }
                OpKind::BranchIfZero(t) => {
                    let t = *t as usize;
                    let v = vals.pop().ok_or_else(underflow)?;
                    if !v.is_truthy() {
                        pc = t;
                        continue;
                    }
                }
                OpKind::Switch(tbl) => {
                    let v = vals
                        .pop()
                        .ok_or_else(underflow)?
                        .as_int()
                        .ok_or_else(|| RtError::Unsupported("non-integer switch".into()))?;
                    pc = match tbl.cases.binary_search_by_key(&v, |&(k, _)| k) {
                        Ok(i) => tbl.cases[i].1 as usize,
                        Err(_) => tbl.default as usize,
                    };
                    continue;
                }
                OpKind::CheckBegin(c, site) => {
                    let (c, site) = (*c, *site);
                    // Snapshot first (after this op's own cost was charged,
                    // mirroring `exec_check` running after the instr step).
                    self.vm_check_save = Some((self.counters.instrs, self.counters.loads));
                    self.bump_check_counter(c, site);
                }
                OpKind::CheckEnd(c, site) => {
                    let (c, site) = (*c, *site);
                    let v = vals.pop().ok_or_else(underflow)?;
                    if let Some((instrs, loads)) = self.vm_check_save.take() {
                        self.counters.instrs = instrs;
                        self.counters.loads = loads;
                    }
                    self.check_verdict(c, v, site)?;
                }
                OpKind::Hook(c, site) => {
                    let (c, site) = (*c, *site);
                    // Shared structural executor: guard state lives on the
                    // frame, and `exec_check` restores (instrs, loads)
                    // itself, so both engines agree by construction.
                    self.exec_check(c, site)?;
                }
                OpKind::AddrAsVal => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    vals.push(Value::Ptr(PtrVal::Safe(p)));
                }
                OpKind::CopyAgg { size } => {
                    let size = *size;
                    let src = addrs.pop().ok_or_else(underflow)?;
                    let dst = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(src, size, false)?;
                    self.access_hook(dst, size, true)?;
                    self.counters.loads += 1;
                    self.counters.stores += 1;
                    self.mem.copy_region(dst, src, size)?;
                }
                OpKind::PushResult => {
                    vals.push(last.unwrap_or(Value::Int(0)));
                }
                OpKind::CallStatic { f, argc } => {
                    let (f, argc) = (*f, *argc as usize);
                    if vals.len() < val_base + argc {
                        return Err(underflow());
                    }
                    self.vm_push_frame(f, &mut vals, argc)?;
                    let callee = self.compiled_fn(f);
                    stack.push(VmFrame {
                        code,
                        func: cur_f,
                        pc: (pc + 1) as u32,
                        val_base,
                        addr_base,
                    });
                    val_base = vals.len();
                    addr_base = addrs.len();
                    self.note_code_tier(&callee);
                    code = callee;
                    cur_f = f;
                    pc = 0;
                    continue;
                }
                OpKind::CallExtern { x, argc } => {
                    let (x, argc) = (*x as usize, *argc as usize);
                    if vals.len() < val_base + argc {
                        return Err(underflow());
                    }
                    let base = vals.len() - argc;
                    let prog = self.prog;
                    let name = prog.externals[x].name.as_str();
                    self.counters.extern_calls += 1;
                    last = crate::external::call(self, name, &vals[base..])?;
                    vals.truncate(base);
                }
                OpKind::CallPtr { argc } => {
                    let argc = *argc as usize;
                    let fv = vals.pop().ok_or_else(underflow)?;
                    if vals.len() < val_base + argc {
                        return Err(underflow());
                    }
                    match fv.as_ptr() {
                        Some(PtrVal::Fn(FnRef::Def(f))) => {
                            self.vm_push_frame(f, &mut vals, argc)?;
                            let callee = self.compiled_fn(f);
                            stack.push(VmFrame {
                                code,
                                func: cur_f,
                                pc: (pc + 1) as u32,
                                val_base,
                                addr_base,
                            });
                            val_base = vals.len();
                            addr_base = addrs.len();
                            self.note_code_tier(&callee);
                            code = callee;
                            cur_f = f;
                            pc = 0;
                            continue;
                        }
                        Some(PtrVal::Fn(FnRef::Ext(x))) => {
                            let base = vals.len() - argc;
                            let prog = self.prog;
                            let name = prog.externals[x.idx()].name.as_str();
                            self.counters.extern_calls += 1;
                            last = crate::external::call(self, name, &vals[base..])?;
                            vals.truncate(base);
                        }
                        Some(PtrVal::Null) => return Err(RtError::NullDeref),
                        _ => return Err(RtError::NotAFunction),
                    }
                }
                OpKind::Ret { has_value } => {
                    let v = if *has_value {
                        Some(vals.pop().ok_or_else(underflow)?)
                    } else {
                        None
                    };
                    let seq = self.frame()?.seq;
                    self.mem.kill_frame(seq);
                    if let Some(fr) = self.frames.pop() {
                        self.recycle_frame(fr);
                    }
                    vals.truncate(val_base);
                    addrs.truncate(addr_base);
                    last = v;
                    match stack.pop() {
                        Some(fr) => {
                            self.note_code_tier(&fr.code);
                            code = fr.code;
                            cur_f = fr.func;
                            pc = fr.pc as usize;
                            val_base = fr.val_base;
                            addr_base = fr.addr_base;
                            continue;
                        }
                        None => return Ok(last),
                    }
                }
                OpKind::RetDefault(v) => {
                    let v = *v;
                    let seq = self.frame()?.seq;
                    self.mem.kill_frame(seq);
                    if let Some(fr) = self.frames.pop() {
                        self.recycle_frame(fr);
                    }
                    vals.truncate(val_base);
                    addrs.truncate(addr_base);
                    last = v;
                    match stack.pop() {
                        Some(fr) => {
                            self.note_code_tier(&fr.code);
                            code = fr.code;
                            cur_f = fr.func;
                            pc = fr.pc as usize;
                            val_base = fr.val_base;
                            addr_base = fr.addr_base;
                            continue;
                        }
                        None => return Ok(last),
                    }
                }
                OpKind::Fail(e) => return Err(e.clone()),

                // ---- fused superinstructions ----------------------------
                //
                // Each body replays its constituents in order, charging the
                // later constituents' costs (`c2`/`c3`) exactly where their
                // dispatch would have, so every error — including fuel
                // exhaustion — lands on the same step as unfused execution.
                OpKind::RegBinArith {
                    l,
                    zk,
                    op,
                    trunc,
                    c2,
                } => {
                    let b = self.vm_read_reg(*l, *zk)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_arith(*op, a, b, *trunc)?;
                    vals.push(r);
                }
                OpKind::RegBinCmp { l, zk, op, c2 } => {
                    let b = self.vm_read_reg(*l, *zk)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, b)?;
                    vals.push(Value::Int(r as i128));
                }
                OpKind::RegCmpBranch {
                    l,
                    zk,
                    op,
                    target,
                    c2,
                    c3,
                } => {
                    let b = self.vm_read_reg(*l, *zk)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, b)?;
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    if !r {
                        pc = *target as usize;
                        continue;
                    }
                }
                OpKind::RegStoreReg {
                    src,
                    zk,
                    dst,
                    norm,
                    c2,
                } => {
                    let v = self.vm_read_reg(*src, *zk)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let v = norm.apply(v, &self.prog.types.machine);
                    self.vm_store_reg(*dst, v)?;
                }
                OpKind::PushBinArith { v, op, trunc, c2 } => {
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_arith(*op, a, Value::Int(*v), *trunc)?;
                    vals.push(r);
                }
                OpKind::PushBinCmp { v, op, c2 } => {
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, Value::Int(*v))?;
                    vals.push(Value::Int(r as i128));
                }
                OpKind::PushCmpBranch {
                    v,
                    op,
                    target,
                    c2,
                    c3,
                } => {
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, Value::Int(*v))?;
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    if !r {
                        pc = *target as usize;
                        continue;
                    }
                }
                OpKind::PushStoreReg { v, l, norm, c2 } => {
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let v = norm.apply(Value::Int(*v), &self.prog.types.machine);
                    self.vm_store_reg(*l, v)?;
                }
                OpKind::CmpBranch { op, target, c2 } => {
                    let b = vals.pop().ok_or_else(underflow)?;
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, b)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    if !r {
                        pc = *target as usize;
                        continue;
                    }
                }
                OpKind::ArithStoreReg {
                    op,
                    trunc,
                    l,
                    norm,
                    c2,
                } => {
                    let b = vals.pop().ok_or_else(underflow)?;
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_arith(*op, a, b, *trunc)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let r = norm.apply(r, &self.prog.types.machine);
                    self.vm_store_reg(*l, r)?;
                }
                OpKind::LoadIntArith {
                    size,
                    signed,
                    op,
                    trunc,
                    c2,
                } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, *size, false)?;
                    self.counters.loads += 1;
                    let b = self.mem.read_int(p, *size, *signed)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_arith(*op, a, Value::Int(b), *trunc)?;
                    vals.push(r);
                }
                OpKind::LoadIntStoreReg {
                    size,
                    signed,
                    l,
                    norm,
                    c2,
                } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, *size, false)?;
                    self.counters.loads += 1;
                    let x = self.mem.read_int(p, *size, *signed)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let v = norm.apply(Value::Int(x), &self.prog.types.machine);
                    self.vm_store_reg(*l, v)?;
                }

                // ---- extended (hot-tier) superinstructions --------------
                //
                // Same protocol as above, two constituents deeper.
                OpKind::RegRegCmpBranch {
                    a,
                    za,
                    b,
                    zb,
                    op,
                    target,
                    c2,
                    c3,
                    c4,
                } => {
                    let av = self.vm_read_reg(*a, *za)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let bv = self.vm_read_reg(*b, *zb)?;
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    let r = self.vm_cmp(*op, av, bv)?;
                    if *c4 != 0 {
                        self.add_instrs(*c4)?;
                    }
                    if !r {
                        pc = *target as usize;
                        continue;
                    }
                }
                OpKind::RegRegArith {
                    a,
                    za,
                    b,
                    zb,
                    op,
                    trunc,
                    c2,
                    c3,
                } => {
                    let av = self.vm_read_reg(*a, *za)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let bv = self.vm_read_reg(*b, *zb)?;
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    let r = self.vm_arith(*op, av, bv, *trunc)?;
                    vals.push(r);
                }
                OpKind::RegRegPtrAdd {
                    p,
                    zp,
                    i,
                    zi,
                    elem,
                    neg,
                    c2,
                    c3,
                } => {
                    let pv_v = self.vm_read_reg(*p, *zp)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let iv = self.vm_read_reg(*i, *zi)?;
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    let pv = pv_v.as_ptr().ok_or_else(|| {
                        RtError::Unsupported("pointer arithmetic on non-pointer".into())
                    })?;
                    let n = iv.as_int().ok_or_else(|| {
                        RtError::Unsupported("pointer arithmetic with non-integer".into())
                    })?;
                    let delta = (n as i64).wrapping_mul(*elem as i64);
                    let delta = if *neg { -delta } else { delta };
                    self.ptr_arith_hook(&pv)?;
                    vals.push(Value::Ptr(pv.offset_by(delta)));
                }
                OpKind::RegImmArith {
                    l,
                    zk,
                    v,
                    op,
                    trunc,
                    c2,
                    c3,
                } => {
                    let a = self.vm_read_reg(*l, *zk)?;
                    // The folded `Push` does no work, but its step (`c2`)
                    // is still charged at its position.
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    let r = self.vm_arith(*op, a, Value::Int(*v), *trunc)?;
                    vals.push(r);
                }
                OpKind::RegImmArithStore {
                    l,
                    zk,
                    v,
                    op,
                    trunc,
                    dst,
                    norm,
                    c2,
                    c3,
                    c4,
                } => {
                    let a = self.vm_read_reg(*l, *zk)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    let r = self.vm_arith(*op, a, Value::Int(*v), *trunc)?;
                    if *c4 != 0 {
                        self.add_instrs(*c4)?;
                    }
                    let r = norm.apply(r, &self.prog.types.machine);
                    self.vm_store_reg(*dst, r)?;
                }
                OpKind::LoadIntArithStore {
                    size,
                    signed,
                    op,
                    trunc,
                    l,
                    norm,
                    c2,
                    c3,
                } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, *size, false)?;
                    self.counters.loads += 1;
                    let b = self.mem.read_int(p, *size, *signed)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_arith(*op, a, Value::Int(b), *trunc)?;
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    let r = norm.apply(r, &self.prog.types.machine);
                    self.vm_store_reg(*l, r)?;
                }
                OpKind::RegImmCmpBranch {
                    l,
                    zk,
                    v,
                    op,
                    target,
                    c2,
                    c3,
                    c4,
                } => {
                    let a = self.vm_read_reg(*l, *zk)?;
                    // The folded `Push` does no work, but its step (`c2`)
                    // is still charged at its position.
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    let r = self.vm_cmp(*op, a, Value::Int(*v))?;
                    if *c4 != 0 {
                        self.add_instrs(*c4)?;
                    }
                    if !r {
                        pc = *target as usize;
                        continue;
                    }
                }
                OpKind::LoadIntCmpBranch {
                    size,
                    signed,
                    op,
                    target,
                    c2,
                    c3,
                } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, *size, false)?;
                    self.counters.loads += 1;
                    let b = self.mem.read_int(p, *size, *signed)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, Value::Int(b))?;
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    if !r {
                        pc = *target as usize;
                        continue;
                    }
                }
                OpKind::LoadIntImmCmpBranch {
                    size,
                    signed,
                    v,
                    op,
                    target,
                    c2,
                    c3,
                    c4,
                } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, *size, false)?;
                    self.counters.loads += 1;
                    let a = self.mem.read_int(p, *size, *signed)?;
                    // The folded `Push` does no work, but its step (`c2`)
                    // is still charged at its position.
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    let r = self.vm_cmp(*op, Value::Int(a), Value::Int(*v))?;
                    if *c4 != 0 {
                        self.add_instrs(*c4)?;
                    }
                    if !r {
                        pc = *target as usize;
                        continue;
                    }
                }
                OpKind::RegStorePtr {
                    l,
                    zk,
                    q,
                    wild_tag,
                    c2,
                } => {
                    let v = self.vm_read_reg(*l, *zk)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.store_precheck(p, &v, *wild_tag)?;
                    self.access_hook(p, self.word, true)?;
                    self.counters.stores += 1;
                    let pv = match v {
                        Value::Ptr(pv) => pv,
                        Value::Int(0) => PtrVal::Null,
                        Value::Int(x) => PtrVal::IntVal(x as u64),
                        Value::Float(_) => {
                            return Err(RtError::Unsupported("float stored as pointer".into()))
                        }
                    };
                    if let ExecMode::Cured { sol, .. } = self.mode {
                        if sol.is_split(*q) {
                            self.counters.meta_ops += 1;
                        }
                    }
                    self.mem.write_ptr(p, pv, self.word)?;
                }
                OpKind::LoadFloatArith {
                    size,
                    op,
                    trunc,
                    c2,
                } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, *size, false)?;
                    self.counters.loads += 1;
                    let b = self.mem.read_float(p, *size)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_arith(*op, a, Value::Float(b), *trunc)?;
                    vals.push(r);
                }
                OpKind::HookHook { a, sa, b, sb, c2 } => {
                    self.exec_check(a, *sa)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    self.exec_check(b, *sb)?;
                }
                OpKind::CheckReg {
                    c,
                    site,
                    l,
                    zk,
                    c2,
                    c3,
                } => {
                    let (c, site) = (*c, *site);
                    self.vm_check_save = Some((self.counters.instrs, self.counters.loads));
                    self.bump_check_counter(c, site);
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let v = self.vm_read_reg(*l, *zk)?;
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    if let Some((instrs, loads)) = self.vm_check_save.take() {
                        self.counters.instrs = instrs;
                        self.counters.loads = loads;
                    }
                    self.check_verdict(c, v, site)?;
                }
                OpKind::CheckSeqIdx {
                    c,
                    site,
                    p,
                    zp,
                    i,
                    zi,
                    elem,
                    neg,
                    c2,
                    c3,
                    c4,
                    c5,
                } => {
                    let (c, site) = (*c, *site);
                    self.vm_check_save = Some((self.counters.instrs, self.counters.loads));
                    self.bump_check_counter(c, site);
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let pv_v = self.vm_read_reg(*p, *zp)?;
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    let iv = self.vm_read_reg(*i, *zi)?;
                    if *c4 != 0 {
                        self.add_instrs(*c4)?;
                    }
                    let pv = pv_v.as_ptr().ok_or_else(|| {
                        RtError::Unsupported("pointer arithmetic on non-pointer".into())
                    })?;
                    let n = iv.as_int().ok_or_else(|| {
                        RtError::Unsupported("pointer arithmetic with non-integer".into())
                    })?;
                    let delta = (n as i64).wrapping_mul(*elem as i64);
                    let delta = if *neg { -delta } else { delta };
                    self.ptr_arith_hook(&pv)?;
                    let v = Value::Ptr(pv.offset_by(delta));
                    if *c5 != 0 {
                        self.add_instrs(*c5)?;
                    }
                    if let Some((instrs, loads)) = self.vm_check_save.take() {
                        self.counters.instrs = instrs;
                        self.counters.loads = loads;
                    }
                    self.check_verdict(c, v, site)?;
                }
                OpKind::RegCmpBranchHook {
                    l,
                    zk,
                    op,
                    target,
                    c2,
                    c3,
                    h,
                    hs,
                    c4,
                } => {
                    let b = self.vm_read_reg(*l, *zk)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, b)?;
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    if !r {
                        // Taken branch jumps past the hook: neither its
                        // step (`c4`) nor its body runs, like unfused code.
                        pc = *target as usize;
                        continue;
                    }
                    if *c4 != 0 {
                        self.add_instrs(*c4)?;
                    }
                    self.exec_check(h, *hs)?;
                }
            }
            pc += 1;
        }
    }
}
