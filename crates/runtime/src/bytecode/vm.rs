//! The bytecode dispatch loop.
//!
//! One flat loop drives the whole guest call stack: guest calls push a
//! suspended `VmFrame` and switch `code`/`pc` instead of recursing on the
//! host stack (the host-stack-depth sandbox check in `push_frame` still
//! applies unchanged). All memory, counter, limit and check machinery is
//! the same `Interp` state the tree engine uses — the ops below call the
//! exact same `pub(crate)` helpers (`load_place`, `store_mem_checked`,
//! `apply_binop`, `eval_cast`, `make_ptr`, ...), so behaviour can only
//! diverge if compilation placed an op or a cost wrong, which is what the
//! differential suite pins down.

use super::ops::{CompiledFn, OpKind, ZeroKind};
use crate::err::RtError;
use crate::interp::{compare_f, compare_i, no_frame, trunc_int, ExecMode, Interp, Place};
use crate::mem::Pointer;
use crate::value::{PtrVal, Value};
use ccured_cil::ir::{BinOp, FnRef, FuncId, LocalId};
use std::rc::Rc;

/// A suspended caller: where to resume when the callee returns.
struct VmFrame<'p> {
    code: Rc<CompiledFn<'p>>,
    pc: u32,
    val_base: usize,
    addr_base: usize,
}

fn underflow() -> RtError {
    RtError::Internal("vm operand stack underflow".into())
}

impl<'p> Interp<'p> {
    /// The compiled bytecode for `f`, compiling and caching on first use.
    pub(crate) fn compiled_fn(&mut self, f: FuncId) -> Rc<CompiledFn<'p>> {
        let idx = f.0 as usize;
        if let Some(Some(code)) = self.compiled.get(idx) {
            return Rc::clone(code);
        }
        let info = self.fn_info(f);
        let code = Rc::new(super::compile(self, f, &info.mem_locals));
        if self.compiled.len() <= idx {
            self.compiled.resize(idx + 1, None);
        }
        self.compiled[idx] = Some(Rc::clone(&code));
        code
    }

    /// Runs `f` on the bytecode engine — the VM counterpart of
    /// `run_function`, including its error-path frame cleanup: the tree
    /// engine pops one guest frame per unwound host-stack level, the VM
    /// pops every frame above its entry point (observably identical).
    pub(crate) fn vm_call(
        &mut self,
        f: FuncId,
        args: Vec<Value>,
    ) -> Result<Option<Value>, RtError> {
        if !self.globals_ready {
            self.init_globals()?;
            self.globals_ready = true;
        }
        let base_frames = self.frames.len();
        let r = self.vm_run(f, args);
        if r.is_err() {
            // A check operand was mid-evaluation: restore its snapshot,
            // like the tree engine's `exec_check` does before propagating.
            if let Some((instrs, loads)) = self.vm_check_save.take() {
                self.counters.instrs = instrs;
                self.counters.loads = loads;
            }
            while self.frames.len() > base_frames {
                if let Some(fr) = self.frames.last() {
                    self.mem.kill_frame(fr.seq);
                }
                self.frames.pop();
            }
        }
        r
    }

    /// Arithmetic/bitwise operator with the result truncation pre-resolved
    /// (the `BinArith` fast path; mirrors `apply_binop`'s arithmetic arm).
    fn vm_arith(
        &self,
        op: ccured_cil::ir::BinOp,
        a: Value,
        b: Value,
        trunc: Option<ccured_cil::types::IntKind>,
    ) -> Result<Value, RtError> {
        use ccured_cil::ir::BinOp::*;
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => {
                let r = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => return Err(RtError::Unsupported(format!("float operator {op:?}"))),
                };
                Ok(Value::Float(r))
            }
            (Value::Int(x), Value::Int(y)) => {
                let r = match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => {
                        if y == 0 {
                            return Err(RtError::DivByZero);
                        }
                        x.wrapping_div(y)
                    }
                    Rem => {
                        if y == 0 {
                            return Err(RtError::DivByZero);
                        }
                        x.wrapping_rem(y)
                    }
                    Shl => x.wrapping_shl((y & 63) as u32),
                    Shr => x.wrapping_shr((y & 63) as u32),
                    BitAnd => x & y,
                    BitXor => x ^ y,
                    BitOr => x | y,
                    _ => unreachable!("BinArith compiled from a non-arithmetic operator"),
                };
                Ok(Value::Int(match trunc {
                    Some(k) => trunc_int(r, k, &self.prog.types.machine),
                    None => r,
                }))
            }
            (x, y) => Err(RtError::Unsupported(format!(
                "operator {op:?} between {x:?} and {y:?}"
            ))),
        }
    }

    /// Comparison (the `BinCmp` fast path; mirrors `apply_binop`'s
    /// comparison arm, pointers comparing by virtual address).
    fn vm_cmp(&self, op: BinOp, a: Value, b: Value) -> Result<bool, RtError> {
        Ok(match (a, b) {
            (Value::Int(x), Value::Int(y)) => compare_i(op, x, y),
            (Value::Float(x), Value::Float(y)) => compare_f(op, x, y),
            (Value::Ptr(x), Value::Ptr(y)) => {
                let vx = self.mem.va_of(&x) as i128;
                let vy = self.mem.va_of(&y) as i128;
                compare_i(op, vx, vy)
            }
            (Value::Ptr(x), Value::Int(y)) => compare_i(op, self.mem.va_of(&x) as i128, y),
            (Value::Int(x), Value::Ptr(y)) => compare_i(op, x, self.mem.va_of(&y) as i128),
            (x, y) => {
                return Err(RtError::Unsupported(format!(
                    "comparison between {x:?} and {y:?}"
                )))
            }
        })
    }

    /// Register read (the `LoadReg` body, shared with the fused forms).
    #[inline]
    fn vm_read_reg(&self, l: LocalId, zk: ZeroKind) -> Result<Value, RtError> {
        let fr = self.frames.last().ok_or_else(no_frame)?;
        match fr.regs[l.idx()] {
            Some(v) => Ok(v),
            // The zeroing allocator extends to register locals, exactly
            // like `load_place`.
            None if self.zero_init => Ok(zk.value()),
            None => Err(RtError::UninitRead),
        }
    }

    /// Register write (the `StoreReg` tail, shared with the fused forms;
    /// the caller has already normalized `v`).
    #[inline]
    fn vm_store_reg(&mut self, l: LocalId, v: Value) -> Result<(), RtError> {
        let fr = self.frames.last_mut().ok_or_else(no_frame)?;
        fr.regs[l.idx()] = Some(v);
        Ok(())
    }

    fn vm_run(&mut self, f: FuncId, args: Vec<Value>) -> Result<Option<Value>, RtError> {
        let mut vals: Vec<Value> = Vec::with_capacity(64);
        let mut addrs: Vec<Pointer> = Vec::with_capacity(32);
        let mut stack: Vec<VmFrame<'p>> = Vec::new();
        let mut last: Option<Value> = None;
        let mut val_base = 0usize;
        let mut addr_base = 0usize;
        self.push_frame(f, args)?;
        let mut code = self.compiled_fn(f);
        let mut pc = 0usize;
        loop {
            let op = &code.ops[pc];
            if op.cost != 0 {
                self.add_instrs(op.cost)?;
            }
            match &op.kind {
                OpKind::Nop => {}
                OpKind::Push(v) => vals.push(*v),
                OpKind::LoadReg(l, zk) => {
                    let v = self.vm_read_reg(*l, *zk)?;
                    vals.push(v);
                }
                OpKind::LoadMem(ty) => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    let v = self.load_place(Place::Mem(p), *ty)?;
                    vals.push(v);
                }
                OpKind::LoadInt { size, signed } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, *size, false)?;
                    self.counters.loads += 1;
                    let v = self.mem.read_int(p, *size, *signed)?;
                    vals.push(Value::Int(v));
                }
                OpKind::LoadFloat { size } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, *size, false)?;
                    self.counters.loads += 1;
                    let v = self.mem.read_float(p, *size)?;
                    vals.push(Value::Float(v));
                }
                OpKind::LoadPtr { q } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, self.word, false)?;
                    self.counters.loads += 1;
                    let v = self.mem.read_ptr(p, self.word)?;
                    if let ExecMode::Cured { sol, .. } = self.mode {
                        if sol.is_split(*q) {
                            self.counters.meta_ops += 1;
                        }
                    }
                    vals.push(Value::Ptr(v));
                }
                OpKind::StoreReg(l, norm) => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let v = norm.apply(v, &self.prog.types.machine);
                    let fr = self.frames.last_mut().ok_or_else(no_frame)?;
                    fr.regs[l.idx()] = Some(v);
                }
                OpKind::StoreMem { ty, wild_tag } => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.store_mem_checked(p, *ty, v, *wild_tag)?;
                }
                OpKind::StoreInt { k, size, wild_tag } => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.store_precheck(p, &v, *wild_tag)?;
                    self.access_hook(p, *size, true)?;
                    self.counters.stores += 1;
                    let x = match v {
                        Value::Int(x) => x,
                        Value::Float(f) => f as i128,
                        Value::Ptr(pv) => self.mem.va_of(&pv) as i128,
                    };
                    self.mem
                        .write_int(p, *size, trunc_int(x, *k, &self.prog.types.machine))?;
                }
                OpKind::StoreFloat { size, wild_tag } => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.store_precheck(p, &v, *wild_tag)?;
                    self.access_hook(p, *size, true)?;
                    self.counters.stores += 1;
                    let f = match v {
                        Value::Float(f) => f,
                        Value::Int(x) => x as f64,
                        Value::Ptr(_) => {
                            return Err(RtError::Unsupported("pointer stored as float".into()))
                        }
                    };
                    self.mem.write_float(p, *size, f)?;
                }
                OpKind::StorePtr { q, wild_tag } => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.store_precheck(p, &v, *wild_tag)?;
                    self.access_hook(p, self.word, true)?;
                    self.counters.stores += 1;
                    let pv = match v {
                        Value::Ptr(pv) => pv,
                        Value::Int(0) => PtrVal::Null,
                        Value::Int(x) => PtrVal::IntVal(x as u64),
                        Value::Float(_) => {
                            return Err(RtError::Unsupported("float stored as pointer".into()))
                        }
                    };
                    if let ExecMode::Cured { sol, .. } = self.mode {
                        if sol.is_split(*q) {
                            self.counters.meta_ops += 1;
                        }
                    }
                    self.mem.write_ptr(p, pv, self.word)?;
                }
                OpKind::LocalAddr(l) => {
                    let p = match self.frame()?.slots[l.idx()] {
                        crate::interp::LocalSlot::Mem(a) => Pointer {
                            alloc: a,
                            offset: 0,
                        },
                        crate::interp::LocalSlot::Reg => {
                            return Err(RtError::Internal(
                                "compiled address of a register local".into(),
                            ))
                        }
                    };
                    addrs.push(p);
                }
                OpKind::GlobalAddr(g) => {
                    let p = Pointer {
                        alloc: self.globals[*g as usize],
                        offset: 0,
                    };
                    addrs.push(p);
                }
                OpKind::Deref => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let pv = v
                        .as_ptr()
                        .ok_or_else(|| RtError::Unsupported("deref of non-pointer value".into()))?;
                    self.deref_hook(&pv)?;
                    let p = match pv {
                        PtrVal::Null => return Err(RtError::NullDeref),
                        PtrVal::IntVal(x) => {
                            return Err(RtError::InvalidPointer(format!(
                                "integer {x:#x} dereferenced"
                            )))
                        }
                        PtrVal::Fn(_) => {
                            return Err(RtError::InvalidPointer(
                                "function pointer dereferenced".into(),
                            ))
                        }
                        other => other.thin().ok_or_else(|| {
                            RtError::Internal("dereferenced pointer has no memory position".into())
                        })?,
                    };
                    addrs.push(p);
                }
                OpKind::FieldAdd(off) => {
                    let p = addrs.last_mut().ok_or_else(underflow)?;
                    *p = p.offset_by(*off);
                }
                OpKind::IndexAdd(es) => {
                    let i = vals
                        .pop()
                        .ok_or_else(underflow)?
                        .as_int()
                        .ok_or_else(|| RtError::Unsupported("non-integer index".into()))?;
                    let p = addrs.last_mut().ok_or_else(underflow)?;
                    *p = p.offset_by(i as i64 * *es as i64);
                }
                OpKind::MakePtr { ty, extent } => {
                    let (ty, extent) = (*ty, *extent);
                    let p = addrs.pop().ok_or_else(underflow)?;
                    let pv = self.make_ptr(p, ty, extent)?;
                    vals.push(Value::Ptr(pv));
                }
                OpKind::Unop(op, ty) => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let r = self.apply_unop(*op, v, *ty)?;
                    vals.push(r);
                }
                OpKind::Binop { op, a_ty, res_ty } => {
                    let (op, a_ty, res_ty) = (*op, *a_ty, *res_ty);
                    let b = vals.pop().ok_or_else(underflow)?;
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.apply_binop(op, a, b, a_ty, res_ty)?;
                    vals.push(r);
                }
                OpKind::BinArith { op, trunc } => {
                    let b = vals.pop().ok_or_else(underflow)?;
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_arith(*op, a, b, *trunc)?;
                    vals.push(r);
                }
                OpKind::BinCmp(op) => {
                    let b = vals.pop().ok_or_else(underflow)?;
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, b)?;
                    vals.push(Value::Int(r as i128));
                }
                OpKind::PtrAdd { elem, neg } => {
                    let b = vals.pop().ok_or_else(underflow)?;
                    let a = vals.pop().ok_or_else(underflow)?;
                    let pv = a.as_ptr().ok_or_else(|| {
                        RtError::Unsupported("pointer arithmetic on non-pointer".into())
                    })?;
                    let n = b.as_int().ok_or_else(|| {
                        RtError::Unsupported("pointer arithmetic with non-integer".into())
                    })?;
                    let delta = (n as i64).wrapping_mul(*elem as i64);
                    let delta = if *neg { -delta } else { delta };
                    self.ptr_arith_hook(&pv)?;
                    vals.push(Value::Ptr(pv.offset_by(delta)));
                }
                OpKind::Cast(id) => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    let r = self.eval_cast(*id, v)?;
                    vals.push(r);
                }
                OpKind::CastNum(norm) => {
                    let v = vals.pop().ok_or_else(underflow)?;
                    vals.push(norm.apply(v, &self.prog.types.machine));
                }
                OpKind::Jump(t) => {
                    pc = *t as usize;
                    continue;
                }
                OpKind::BranchIfZero(t) => {
                    let t = *t as usize;
                    let v = vals.pop().ok_or_else(underflow)?;
                    if !v.is_truthy() {
                        pc = t;
                        continue;
                    }
                }
                OpKind::Switch(tbl) => {
                    let v = vals
                        .pop()
                        .ok_or_else(underflow)?
                        .as_int()
                        .ok_or_else(|| RtError::Unsupported("non-integer switch".into()))?;
                    pc = match tbl.cases.binary_search_by_key(&v, |&(k, _)| k) {
                        Ok(i) => tbl.cases[i].1 as usize,
                        Err(_) => tbl.default as usize,
                    };
                    continue;
                }
                OpKind::CheckBegin(c, site) => {
                    let (c, site) = (*c, *site);
                    // Snapshot first (after this op's own cost was charged,
                    // mirroring `exec_check` running after the instr step).
                    self.vm_check_save = Some((self.counters.instrs, self.counters.loads));
                    self.bump_check_counter(c, site);
                }
                OpKind::CheckEnd(c, site) => {
                    let (c, site) = (*c, *site);
                    let v = vals.pop().ok_or_else(underflow)?;
                    if let Some((instrs, loads)) = self.vm_check_save.take() {
                        self.counters.instrs = instrs;
                        self.counters.loads = loads;
                    }
                    self.check_verdict(c, v, site)?;
                }
                OpKind::Hook(c, site) => {
                    let (c, site) = (*c, *site);
                    // Shared structural executor: guard state lives on the
                    // frame, and `exec_check` restores (instrs, loads)
                    // itself, so both engines agree by construction.
                    self.exec_check(c, site)?;
                }
                OpKind::AddrAsVal => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    vals.push(Value::Ptr(PtrVal::Safe(p)));
                }
                OpKind::CopyAgg { size } => {
                    let size = *size;
                    let src = addrs.pop().ok_or_else(underflow)?;
                    let dst = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(src, size, false)?;
                    self.access_hook(dst, size, true)?;
                    self.counters.loads += 1;
                    self.counters.stores += 1;
                    self.mem.copy_region(dst, src, size)?;
                }
                OpKind::PushResult => {
                    vals.push(last.unwrap_or(Value::Int(0)));
                }
                OpKind::CallStatic { f, argc } => {
                    let (f, argc) = (*f, *argc as usize);
                    if vals.len() < val_base + argc {
                        return Err(underflow());
                    }
                    let args = vals.split_off(vals.len() - argc);
                    self.push_frame(f, args)?;
                    let callee = self.compiled_fn(f);
                    stack.push(VmFrame {
                        code,
                        pc: (pc + 1) as u32,
                        val_base,
                        addr_base,
                    });
                    val_base = vals.len();
                    addr_base = addrs.len();
                    code = callee;
                    pc = 0;
                    continue;
                }
                OpKind::CallExtern { x, argc } => {
                    let (x, argc) = (*x as usize, *argc as usize);
                    if vals.len() < val_base + argc {
                        return Err(underflow());
                    }
                    let args = vals.split_off(vals.len() - argc);
                    let prog = self.prog;
                    let name = prog.externals[x].name.as_str();
                    self.counters.extern_calls += 1;
                    last = crate::external::call(self, name, &args)?;
                }
                OpKind::CallPtr { argc } => {
                    let argc = *argc as usize;
                    let fv = vals.pop().ok_or_else(underflow)?;
                    if vals.len() < val_base + argc {
                        return Err(underflow());
                    }
                    let args = vals.split_off(vals.len() - argc);
                    match fv.as_ptr() {
                        Some(PtrVal::Fn(FnRef::Def(f))) => {
                            self.push_frame(f, args)?;
                            let callee = self.compiled_fn(f);
                            stack.push(VmFrame {
                                code,
                                pc: (pc + 1) as u32,
                                val_base,
                                addr_base,
                            });
                            val_base = vals.len();
                            addr_base = addrs.len();
                            code = callee;
                            pc = 0;
                            continue;
                        }
                        Some(PtrVal::Fn(FnRef::Ext(x))) => {
                            let prog = self.prog;
                            let name = prog.externals[x.idx()].name.as_str();
                            self.counters.extern_calls += 1;
                            last = crate::external::call(self, name, &args)?;
                        }
                        Some(PtrVal::Null) => return Err(RtError::NullDeref),
                        _ => return Err(RtError::NotAFunction),
                    }
                }
                OpKind::Ret { has_value } => {
                    let v = if *has_value {
                        Some(vals.pop().ok_or_else(underflow)?)
                    } else {
                        None
                    };
                    let seq = self.frame()?.seq;
                    self.mem.kill_frame(seq);
                    self.frames.pop();
                    vals.truncate(val_base);
                    addrs.truncate(addr_base);
                    last = v;
                    match stack.pop() {
                        Some(fr) => {
                            code = fr.code;
                            pc = fr.pc as usize;
                            val_base = fr.val_base;
                            addr_base = fr.addr_base;
                            continue;
                        }
                        None => return Ok(last),
                    }
                }
                OpKind::RetDefault(v) => {
                    let v = *v;
                    let seq = self.frame()?.seq;
                    self.mem.kill_frame(seq);
                    self.frames.pop();
                    vals.truncate(val_base);
                    addrs.truncate(addr_base);
                    last = v;
                    match stack.pop() {
                        Some(fr) => {
                            code = fr.code;
                            pc = fr.pc as usize;
                            val_base = fr.val_base;
                            addr_base = fr.addr_base;
                            continue;
                        }
                        None => return Ok(last),
                    }
                }
                OpKind::Fail(e) => return Err(e.clone()),

                // ---- fused superinstructions ----------------------------
                //
                // Each body replays its constituents in order, charging the
                // later constituents' costs (`c2`/`c3`) exactly where their
                // dispatch would have, so every error — including fuel
                // exhaustion — lands on the same step as unfused execution.
                OpKind::RegBinArith {
                    l,
                    zk,
                    op,
                    trunc,
                    c2,
                } => {
                    let b = self.vm_read_reg(*l, *zk)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_arith(*op, a, b, *trunc)?;
                    vals.push(r);
                }
                OpKind::RegBinCmp { l, zk, op, c2 } => {
                    let b = self.vm_read_reg(*l, *zk)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, b)?;
                    vals.push(Value::Int(r as i128));
                }
                OpKind::RegCmpBranch {
                    l,
                    zk,
                    op,
                    target,
                    c2,
                    c3,
                } => {
                    let b = self.vm_read_reg(*l, *zk)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, b)?;
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    if !r {
                        pc = *target as usize;
                        continue;
                    }
                }
                OpKind::RegStoreReg {
                    src,
                    zk,
                    dst,
                    norm,
                    c2,
                } => {
                    let v = self.vm_read_reg(*src, *zk)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let v = norm.apply(v, &self.prog.types.machine);
                    self.vm_store_reg(*dst, v)?;
                }
                OpKind::PushBinArith { v, op, trunc, c2 } => {
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_arith(*op, a, Value::Int(*v), *trunc)?;
                    vals.push(r);
                }
                OpKind::PushBinCmp { v, op, c2 } => {
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, Value::Int(*v))?;
                    vals.push(Value::Int(r as i128));
                }
                OpKind::PushCmpBranch {
                    v,
                    op,
                    target,
                    c2,
                    c3,
                } => {
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, Value::Int(*v))?;
                    if *c3 != 0 {
                        self.add_instrs(*c3)?;
                    }
                    if !r {
                        pc = *target as usize;
                        continue;
                    }
                }
                OpKind::PushStoreReg { v, l, norm, c2 } => {
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let v = norm.apply(Value::Int(*v), &self.prog.types.machine);
                    self.vm_store_reg(*l, v)?;
                }
                OpKind::CmpBranch { op, target, c2 } => {
                    let b = vals.pop().ok_or_else(underflow)?;
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_cmp(*op, a, b)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    if !r {
                        pc = *target as usize;
                        continue;
                    }
                }
                OpKind::ArithStoreReg {
                    op,
                    trunc,
                    l,
                    norm,
                    c2,
                } => {
                    let b = vals.pop().ok_or_else(underflow)?;
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_arith(*op, a, b, *trunc)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let r = norm.apply(r, &self.prog.types.machine);
                    self.vm_store_reg(*l, r)?;
                }
                OpKind::LoadIntArith {
                    size,
                    signed,
                    op,
                    trunc,
                    c2,
                } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, *size, false)?;
                    self.counters.loads += 1;
                    let b = self.mem.read_int(p, *size, *signed)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let a = vals.pop().ok_or_else(underflow)?;
                    let r = self.vm_arith(*op, a, Value::Int(b), *trunc)?;
                    vals.push(r);
                }
                OpKind::LoadIntStoreReg {
                    size,
                    signed,
                    l,
                    norm,
                    c2,
                } => {
                    let p = addrs.pop().ok_or_else(underflow)?;
                    self.access_hook(p, *size, false)?;
                    self.counters.loads += 1;
                    let x = self.mem.read_int(p, *size, *signed)?;
                    if *c2 != 0 {
                        self.add_instrs(*c2)?;
                    }
                    let v = norm.apply(Value::Int(x), &self.prog.types.machine);
                    self.vm_store_reg(*l, v)?;
                }
            }
            pc += 1;
        }
    }
}
