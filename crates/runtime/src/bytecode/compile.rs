//! AST -> bytecode compilation.
//!
//! The compiler walks a function body exactly once, in the order the tree
//! engine evaluates it, and emits a linear op stream. Two invariants carry
//! the whole parity argument:
//!
//! 1. **Cost placement.** The tree engine calls `step()` once per
//!    statement, instruction and expression node, in pre-order. The
//!    compiler keeps a `pending` step accumulator; every emitted op
//!    consumes it as its `cost`. Binding a jump target first flushes
//!    `pending` into a `Nop`, so arriving by jump never pays (or skips)
//!    fall-through steps it shouldn't.
//! 2. **Error placement.** Anything the tree engine decides from static
//!    data alone (a deref of a non-pointer type, an unsized array element,
//!    a goto to an invisible label) compiles to a [`OpKind::Fail`] op at
//!    the exact evaluation position where the tree engine raises it, with
//!    the identical message. The rest of the aborted instruction is
//!    unreachable and is not compiled.
//!
//! `goto` resolution mirrors the tree engine's dynamic bubbling: a label is
//! visible only in its own statement slice, looked up from the jump site
//! outward through lexically enclosing slices (which is exactly the chain
//! of `run_block` activations the tree `Flow::Goto` would unwind).

use super::ops::{CompiledFn, Op, OpKind, RegNorm, SwitchTable, Tier, ZeroKind};
use crate::err::RtError;
use crate::interp::{check_operand, ExecMode, Interp};
use crate::value::{PtrVal, Value};
use ccured_cil::ir::*;
use ccured_cil::types::{Type, TypeId};
use ccured_infer::PtrKind;
use std::collections::{HashMap, HashSet};

/// How aggressively to peephole-fuse the op stream.
///
/// The Cc walk itself is deterministic — all three levels compile the same
/// raw stream — so the levels differ only in which adjacent runs collapse
/// into superinstructions, never in observable behavior. `None` is the
/// baseline tier: raw indices survive as instruction indices, which is
/// what makes on-stack replacement into a fused stream a pure
/// `osr_map[pc]` lookup.
#[derive(Clone, Copy)]
pub(crate) enum FuseLevel<'s> {
    /// No fusion; backward jumps become [`OpKind::JumpBack`] heat probes.
    None,
    /// The static pair/triple set (the single-tier default).
    Base,
    /// The hot-tier set: deeper quads, check fusion for the sites in
    /// `hot_sites` (every site when `None`), and a second pass fusing
    /// guard hooks into their neighbors.
    Extended { hot_sites: Option<&'s HashSet<u32>> },
}

/// Compiles `f` into bytecode. `mem_locals` is the function's
/// register/memory slot assignment (from `FnInfo`), which fixes at compile
/// time whether a local access becomes a register op or a memory op.
pub(crate) fn compile<'p>(
    it: &Interp<'p>,
    f: FuncId,
    mem_locals: &[bool],
    level: FuseLevel<'_>,
) -> CompiledFn<'p> {
    let prog: &'p Program = it.prog;
    let func: &'p Function = &prog.functions[f.idx()];
    let mut cc = Cc {
        it,
        prog,
        func,
        mem_locals,
        ops: Vec::new(),
        pending: 0,
        labels: Vec::new(),
        scopes: Vec::new(),
        brk: Vec::new(),
        cont: Vec::new(),
    };
    let exit = cc.new_label();
    // `break`/`continue` that escape every loop fall off the function like
    // the tree engine's `Flow::Break` reaching `run_function`.
    cc.brk.push(exit);
    cc.cont.push(exit);
    cc.block(&func.body);
    cc.bind(exit);
    let ret_ty = func.ret_type(&prog.types);
    let default = match prog.types.get(ret_ty) {
        Type::Void => None,
        Type::Float(_) => Some(Value::Float(0.0)),
        Type::Ptr(..) => Some(Value::NULL),
        _ => Some(Value::Int(0)),
    };
    cc.emit(OpKind::RetDefault(default));
    // Peephole-fuse adjacent ops into superinstructions (jump operands are
    // still label slots, so fusing only moves instruction indices), remap
    // the labels, then patch label slots to instruction indices. The
    // raw-index -> stream-index map doubles as the OSR translation table.
    let n = cc.ops.len();
    let (mut ops, osr_map, tier) = match level {
        FuseLevel::None => {
            let map: Vec<u32> = (0..=n as u32).collect();
            (cc.ops, map, Tier::Baseline)
        }
        FuseLevel::Base => {
            let (ops, map) = fuse(cc.ops, &cc.labels, None, false);
            (ops, map, Tier::Opt)
        }
        FuseLevel::Extended { hot_sites } => {
            let (ops1, map1) = fuse(cc.ops, &cc.labels, hot_sites, true);
            // The second pass needs the label table in pass-1 indices to
            // keep its own jump-target guard exact.
            let mut labels1 = cc.labels.clone();
            for l in &mut labels1 {
                if *l != u32::MAX {
                    *l = map1[*l as usize];
                }
            }
            let (ops2, map2) = fuse_hooks(ops1, &labels1);
            let map: Vec<u32> = map1.iter().map(|&m| map2[m as usize]).collect();
            (ops2, map, Tier::Opt)
        }
    };
    let mut labels = cc.labels;
    for l in &mut labels {
        if *l != u32::MAX {
            *l = osr_map[*l as usize];
        }
    }
    let exit_pc = labels[exit as usize];
    let resolve = |slot: u32| -> u32 {
        let pc = labels[slot as usize];
        if pc == u32::MAX {
            exit_pc
        } else {
            pc
        }
    };
    for op in &mut ops {
        match &mut op.kind {
            OpKind::Jump(t) | OpKind::BranchIfZero(t) => *t = resolve(*t),
            OpKind::CmpBranch { target, .. }
            | OpKind::RegCmpBranch { target, .. }
            | OpKind::PushCmpBranch { target, .. }
            | OpKind::RegRegCmpBranch { target, .. }
            | OpKind::RegImmCmpBranch { target, .. }
            | OpKind::LoadIntCmpBranch { target, .. }
            | OpKind::LoadIntImmCmpBranch { target, .. }
            | OpKind::RegCmpBranchHook { target, .. } => *target = resolve(*target),
            OpKind::Switch(tbl) => {
                for (_, t) in &mut tbl.cases {
                    *t = resolve(*t);
                }
                tbl.default = resolve(tbl.default);
            }
            _ => {}
        }
    }
    if matches!(tier, Tier::Baseline) {
        // Backward jumps (loop back edges, backward gotos) become heat
        // probes. In an unfused stream pc == raw index, so "backward" is
        // decidable only now, after targets resolved to indices.
        for (i, op) in ops.iter_mut().enumerate() {
            if let OpKind::Jump(t) = op.kind {
                if (t as usize) <= i {
                    op.kind = OpKind::JumpBack(t);
                }
            }
        }
    }
    CompiledFn { ops, tier, osr_map }
}

/// Whether a check site is eligible for check fusion under the hot-site
/// selection. No selection (`None`) admits everything; synthetic sites
/// (`SiteId::NONE`) can never appear in a profile, so they stay eligible.
fn site_hot(hot: Option<&HashSet<u32>>, site: SiteId) -> bool {
    match (hot, site.index()) {
        (None, _) | (Some(_), None) => true,
        (Some(set), Some(i)) => set.contains(&(i as u32)),
    }
}

/// The peephole pass: fuses adjacent pairs/triples into the
/// superinstruction forms of [`OpKind`]. A fusion never spans a jump
/// target (the target would land mid-superinstruction), which the label
/// table decides exactly. The carrier keeps the first constituent's
/// `cost`; later constituents' costs are stored in the superinstruction
/// and charged between its sub-steps, preserving the tree engine's exact
/// fuel-exhaustion point. Returns the fused stream and an old-index ->
/// new-index map for label remapping.
///
/// With `extended` set (the hot tier), the deeper quad/quint patterns and
/// the profile-gated check fusions are tried before the base set; longest
/// match wins.
fn fuse<'p>(
    ops: Vec<Op<'p>>,
    labels: &[u32],
    hot_sites: Option<&HashSet<u32>>,
    extended: bool,
) -> (Vec<Op<'p>>, Vec<u32>) {
    let n = ops.len();
    let mut is_target = vec![false; n + 1];
    for &l in labels {
        if l != u32::MAX {
            is_target[l as usize] = true;
        }
    }
    let mut src: Vec<Option<Op<'p>>> = ops.into_iter().map(Some).collect();
    let mut out: Vec<Op<'p>> = Vec::with_capacity(n);
    let mut map = vec![0u32; n + 1];
    let mut i = 0;
    while i < n {
        let new_idx = out.len() as u32;
        map[i] = new_idx;
        let op = src[i].take().expect("each op consumed once");
        let (fused, consumed): (Option<OpKind<'p>>, usize) = {
            // Lookahead windows are cumulative: a jump target anywhere in
            // the window kills it and everything past it, so no fusion can
            // span a label.
            let o1 = if i + 1 < n && !is_target[i + 1] {
                src[i + 1].as_ref()
            } else {
                None
            };
            let o2 = if o1.is_some() && i + 2 < n && !is_target[i + 2] {
                src[i + 2].as_ref()
            } else {
                None
            };
            let o3 = if o2.is_some() && i + 3 < n && !is_target[i + 3] {
                src[i + 3].as_ref()
            } else {
                None
            };
            let o4 = if o3.is_some() && i + 4 < n && !is_target[i + 4] {
                src[i + 4].as_ref()
            } else {
                None
            };
            let c2 = o1.map_or(0, |o| o.cost);
            let c3 = o2.map_or(0, |o| o.cost);
            let c4 = o3.map_or(0, |o| o.cost);
            let c5 = o4.map_or(0, |o| o.cost);
            let ext: (Option<OpKind<'p>>, usize) = if extended {
                match (
                    &op.kind,
                    o1.map(|o| &o.kind),
                    o2.map(|o| &o.kind),
                    o3.map(|o| &o.kind),
                    o4.map(|o| &o.kind),
                ) {
                    // A whole CHECK_SEQ(p + i): the single hottest shape
                    // in the fig9 corpus, gated on the site being hot.
                    (
                        OpKind::CheckBegin(c, site),
                        Some(OpKind::LoadReg(p, zp)),
                        Some(OpKind::LoadReg(ix, zi)),
                        Some(OpKind::PtrAdd { elem, neg }),
                        Some(OpKind::CheckEnd(..)),
                    ) if site_hot(hot_sites, *site) => (
                        Some(OpKind::CheckSeqIdx {
                            c,
                            site: *site,
                            p: *p,
                            zp: *zp,
                            i: *ix,
                            zi: *zi,
                            elem: *elem,
                            neg: *neg,
                            c2,
                            c3,
                            c4,
                            c5,
                        }),
                        4,
                    ),
                    // A register-register loop/if guard.
                    (
                        OpKind::LoadReg(a, za),
                        Some(OpKind::LoadReg(b, zb)),
                        Some(OpKind::BinCmp(cop)),
                        Some(OpKind::BranchIfZero(t)),
                        _,
                    ) => (
                        Some(OpKind::RegRegCmpBranch {
                            a: *a,
                            za: *za,
                            b: *b,
                            zb: *zb,
                            op: *cop,
                            target: *t,
                            c2,
                            c3,
                            c4,
                        }),
                        3,
                    ),
                    // The canonical `i = i + 1` quad.
                    (
                        OpKind::LoadReg(l, zk),
                        Some(OpKind::Push(Value::Int(v))),
                        Some(OpKind::BinArith { op: aop, trunc }),
                        Some(OpKind::StoreReg(dst, norm)),
                        _,
                    ) => (
                        Some(OpKind::RegImmArithStore {
                            l: *l,
                            zk: *zk,
                            v: *v,
                            op: *aop,
                            trunc: *trunc,
                            dst: *dst,
                            norm: *norm,
                            c2,
                            c3,
                            c4,
                        }),
                        3,
                    ),
                    // A whole check of a register operand, site-gated.
                    (
                        OpKind::CheckBegin(c, site),
                        Some(OpKind::LoadReg(l, zk)),
                        Some(OpKind::CheckEnd(..)),
                        _,
                        _,
                    ) if site_hot(hot_sites, *site) => (
                        Some(OpKind::CheckReg {
                            c,
                            site: *site,
                            l: *l,
                            zk: *zk,
                            c2,
                            c3,
                        }),
                        2,
                    ),
                    (
                        OpKind::LoadReg(a, za),
                        Some(OpKind::LoadReg(b, zb)),
                        Some(OpKind::BinArith { op: aop, trunc }),
                        _,
                        _,
                    ) => (
                        Some(OpKind::RegRegArith {
                            a: *a,
                            za: *za,
                            b: *b,
                            zb: *zb,
                            op: *aop,
                            trunc: *trunc,
                            c2,
                            c3,
                        }),
                        2,
                    ),
                    // The `p + i` of an indexed access.
                    (
                        OpKind::LoadReg(p, zp),
                        Some(OpKind::LoadReg(ix, zi)),
                        Some(OpKind::PtrAdd { elem, neg }),
                        _,
                        _,
                    ) => (
                        Some(OpKind::RegRegPtrAdd {
                            p: *p,
                            zp: *zp,
                            i: *ix,
                            zi: *zi,
                            elem: *elem,
                            neg: *neg,
                            c2,
                            c3,
                        }),
                        2,
                    ),
                    (
                        OpKind::LoadReg(l, zk),
                        Some(OpKind::Push(Value::Int(v))),
                        Some(OpKind::BinArith { op: aop, trunc }),
                        _,
                        _,
                    ) => (
                        Some(OpKind::RegImmArith {
                            l: *l,
                            zk: *zk,
                            v: *v,
                            op: *aop,
                            trunc: *trunc,
                            c2,
                            c3,
                        }),
                        2,
                    ),
                    // `s = s + a[i]`'s tail: load, accumulate, store.
                    (
                        OpKind::LoadInt { size, signed },
                        Some(OpKind::BinArith { op: aop, trunc }),
                        Some(OpKind::StoreReg(l, norm)),
                        _,
                        _,
                    ) => (
                        Some(OpKind::LoadIntArithStore {
                            size: *size,
                            signed: *signed,
                            op: *aop,
                            trunc: *trunc,
                            l: *l,
                            norm: *norm,
                            c2,
                            c3,
                        }),
                        2,
                    ),
                    // A register-vs-immediate guard: the list-walk
                    // `p != 0` / `t == 0` shape.
                    (
                        OpKind::LoadReg(l, zk),
                        Some(OpKind::Push(Value::Int(v))),
                        Some(OpKind::BinCmp(cop)),
                        Some(OpKind::BranchIfZero(t)),
                        _,
                    ) => (
                        Some(OpKind::RegImmCmpBranch {
                            l: *l,
                            zk: *zk,
                            v: *v,
                            op: *cop,
                            target: *t,
                            c2,
                            c3,
                            c4,
                        }),
                        3,
                    ),
                    // A memory-bound loop guard: `i < n->degree`.
                    (
                        OpKind::LoadInt { size, signed },
                        Some(OpKind::BinCmp(cop)),
                        Some(OpKind::BranchIfZero(t)),
                        _,
                        _,
                    ) => (
                        Some(OpKind::LoadIntCmpBranch {
                            size: *size,
                            signed: *signed,
                            op: *cop,
                            target: *t,
                            c2,
                            c3,
                        }),
                        2,
                    ),
                    // A tag-dispatch guard: `s->kind == K`.
                    (
                        OpKind::LoadInt { size, signed },
                        Some(OpKind::Push(Value::Int(v))),
                        Some(OpKind::BinCmp(cop)),
                        Some(OpKind::BranchIfZero(t)),
                        _,
                    ) => (
                        Some(OpKind::LoadIntImmCmpBranch {
                            size: *size,
                            signed: *signed,
                            v: *v,
                            op: *cop,
                            target: *t,
                            c2,
                            c3,
                            c4,
                        }),
                        3,
                    ),
                    // A register pointer stored straight to memory:
                    // `slots[i] = cell`.
                    (OpKind::LoadReg(l, zk), Some(OpKind::StorePtr { q, wild_tag }), _, _, _) => (
                        Some(OpKind::RegStorePtr {
                            l: *l,
                            zk: *zk,
                            q: *q,
                            wild_tag: *wild_tag,
                            c2,
                        }),
                        1,
                    ),
                    // A float load feeding its operator:
                    // `acc - coeffs[i] * from[i]->value`'s inner loads.
                    (
                        OpKind::LoadFloat { size },
                        Some(OpKind::BinArith { op: aop, trunc }),
                        _,
                        _,
                        _,
                    ) => (
                        Some(OpKind::LoadFloatArith {
                            size: *size,
                            op: *aop,
                            trunc: *trunc,
                            c2,
                        }),
                        1,
                    ),
                    _ => (None, 0),
                }
            } else {
                (None, 0)
            };
            if ext.0.is_some() {
                ext
            } else {
                match (&op.kind, o1.map(|o| &o.kind), o2.map(|o| &o.kind)) {
                    // Triples first: a full comparison-and-branch condition.
                    (
                        OpKind::LoadReg(l, zk),
                        Some(OpKind::BinCmp(c)),
                        Some(OpKind::BranchIfZero(t)),
                    ) => (
                        Some(OpKind::RegCmpBranch {
                            l: *l,
                            zk: *zk,
                            op: *c,
                            target: *t,
                            c2,
                            c3,
                        }),
                        2,
                    ),
                    (
                        OpKind::Push(Value::Int(v)),
                        Some(OpKind::BinCmp(c)),
                        Some(OpKind::BranchIfZero(t)),
                    ) => (
                        Some(OpKind::PushCmpBranch {
                            v: *v,
                            op: *c,
                            target: *t,
                            c2,
                            c3,
                        }),
                        2,
                    ),
                    // Pairs: fold the right operand into the consumer…
                    (OpKind::LoadReg(l, zk), Some(OpKind::BinArith { op, trunc }), _) => (
                        Some(OpKind::RegBinArith {
                            l: *l,
                            zk: *zk,
                            op: *op,
                            trunc: *trunc,
                            c2,
                        }),
                        1,
                    ),
                    (OpKind::LoadReg(l, zk), Some(OpKind::BinCmp(c)), _) => (
                        Some(OpKind::RegBinCmp {
                            l: *l,
                            zk: *zk,
                            op: *c,
                            c2,
                        }),
                        1,
                    ),
                    (OpKind::LoadReg(s, zk), Some(OpKind::StoreReg(d, norm)), _) => (
                        Some(OpKind::RegStoreReg {
                            src: *s,
                            zk: *zk,
                            dst: *d,
                            norm: *norm,
                            c2,
                        }),
                        1,
                    ),
                    (OpKind::Push(Value::Int(v)), Some(OpKind::BinArith { op, trunc }), _) => (
                        Some(OpKind::PushBinArith {
                            v: *v,
                            op: *op,
                            trunc: *trunc,
                            c2,
                        }),
                        1,
                    ),
                    (OpKind::Push(Value::Int(v)), Some(OpKind::BinCmp(c)), _) => {
                        (Some(OpKind::PushBinCmp { v: *v, op: *c, c2 }), 1)
                    }
                    (OpKind::Push(Value::Int(v)), Some(OpKind::StoreReg(l, norm)), _) => (
                        Some(OpKind::PushStoreReg {
                            v: *v,
                            l: *l,
                            norm: *norm,
                            c2,
                        }),
                        1,
                    ),
                    (OpKind::LoadInt { size, signed }, Some(OpKind::BinArith { op, trunc }), _) => {
                        (
                            Some(OpKind::LoadIntArith {
                                size: *size,
                                signed: *signed,
                                op: *op,
                                trunc: *trunc,
                                c2,
                            }),
                            1,
                        )
                    }
                    (OpKind::LoadInt { size, signed }, Some(OpKind::StoreReg(l, norm)), _) => (
                        Some(OpKind::LoadIntStoreReg {
                            size: *size,
                            signed: *signed,
                            l: *l,
                            norm: *norm,
                            c2,
                        }),
                        1,
                    ),
                    // …and the consumers of a finished comparison/arithmetic.
                    (OpKind::BinCmp(c), Some(OpKind::BranchIfZero(t)), _) => (
                        Some(OpKind::CmpBranch {
                            op: *c,
                            target: *t,
                            c2,
                        }),
                        1,
                    ),
                    (OpKind::BinArith { op, trunc }, Some(OpKind::StoreReg(l, norm)), _) => (
                        Some(OpKind::ArithStoreReg {
                            op: *op,
                            trunc: *trunc,
                            l: *l,
                            norm: *norm,
                            c2,
                        }),
                        1,
                    ),
                    _ => (None, 0),
                }
            }
        };
        match fused {
            Some(kind) => {
                for j in 1..=consumed {
                    src[i + j] = None;
                    map[i + j] = new_idx;
                }
                out.push(Op {
                    cost: op.cost,
                    kind,
                });
                i += consumed + 1;
            }
            None => {
                out.push(op);
                i += 1;
            }
        }
    }
    map[n] = out.len() as u32;
    if std::env::var_os("CCURED_FUSE_DEBUG").is_some() {
        eprintln!("fuse: {} ops -> {}", n, out.len());
    }
    (out, map)
}

/// The hot tier's second pass: fuses guard-machinery `Hook`s into their
/// neighbors. The widener always inserts a `Probe` immediately before the
/// `Guarded` residual it covers, so (Hook, Hook) adjacency is the common
/// win; (RegCmpBranch, Hook) catches a hook on a branch's fall-through.
/// Labels must already be in pass-1 indices; same target-spanning rule
/// and cost protocol as [`fuse`].
fn fuse_hooks<'p>(ops: Vec<Op<'p>>, labels: &[u32]) -> (Vec<Op<'p>>, Vec<u32>) {
    let n = ops.len();
    let mut is_target = vec![false; n + 1];
    for &l in labels {
        if l != u32::MAX {
            is_target[l as usize] = true;
        }
    }
    let mut src: Vec<Option<Op<'p>>> = ops.into_iter().map(Some).collect();
    let mut out: Vec<Op<'p>> = Vec::with_capacity(n);
    let mut map = vec![0u32; n + 1];
    let mut i = 0;
    while i < n {
        let new_idx = out.len() as u32;
        map[i] = new_idx;
        let op = src[i].take().expect("each op consumed once");
        let fused: Option<OpKind<'p>> = {
            let o1 = if i + 1 < n && !is_target[i + 1] {
                src[i + 1].as_ref()
            } else {
                None
            };
            let c = o1.map_or(0, |o| o.cost);
            match (&op.kind, o1.map(|o| &o.kind)) {
                (OpKind::Hook(a, sa), Some(OpKind::Hook(b, sb))) => Some(OpKind::HookHook {
                    a,
                    sa: *sa,
                    b,
                    sb: *sb,
                    c2: c,
                }),
                (
                    OpKind::RegCmpBranch {
                        l,
                        zk,
                        op: cop,
                        target,
                        c2,
                        c3,
                    },
                    Some(OpKind::Hook(h, hs)),
                ) => Some(OpKind::RegCmpBranchHook {
                    l: *l,
                    zk: *zk,
                    op: *cop,
                    target: *target,
                    c2: *c2,
                    c3: *c3,
                    h,
                    hs: *hs,
                    c4: c,
                }),
                _ => None,
            }
        };
        match fused {
            Some(kind) => {
                src[i + 1] = None;
                map[i + 1] = new_idx;
                out.push(Op {
                    cost: op.cost,
                    kind,
                });
                i += 2;
            }
            None => {
                out.push(op);
                i += 1;
            }
        }
    }
    map[n] = out.len() as u32;
    (out, map)
}

/// Marker: a `Fail` op was emitted; the rest of the aborted evaluation is
/// unreachable and must not be compiled.
struct Stuck;

type CResult = Result<(), Stuck>;

/// Where a compiled lvalue lives: a register, or an address left on the
/// address stack by the emitted ops.
enum CPlace {
    Reg(LocalId),
    Mem,
}

struct Cc<'a, 'p> {
    it: &'a Interp<'p>,
    prog: &'p Program,
    func: &'p Function,
    mem_locals: &'a [bool],
    ops: Vec<Op<'p>>,
    pending: u32,
    /// Label slot -> instruction index (`u32::MAX` until bound).
    labels: Vec<u32>,
    /// One scope per statement slice: direct-child label name -> slot.
    scopes: Vec<HashMap<&'p str, u32>>,
    brk: Vec<u32>,
    cont: Vec<u32>,
}

impl<'p> Cc<'_, 'p> {
    fn emit(&mut self, kind: OpKind<'p>) {
        self.ops.push(Op {
            cost: self.pending,
            kind,
        });
        self.pending = 0;
    }

    fn new_label(&mut self) -> u32 {
        self.labels.push(u32::MAX);
        (self.labels.len() - 1) as u32
    }

    /// Binds `slot` to the next instruction, first flushing pending steps
    /// into a `Nop` so jumps to the label skip the fall-through charge.
    fn bind(&mut self, slot: u32) {
        if self.pending > 0 {
            self.emit(OpKind::Nop);
        }
        debug_assert_eq!(self.labels[slot as usize], u32::MAX, "label bound twice");
        self.labels[slot as usize] = self.ops.len() as u32;
    }

    fn fail(&mut self, e: RtError) -> Stuck {
        self.emit(OpKind::Fail(e));
        Stuck
    }

    fn unsupported(&mut self, msg: impl Into<String>) -> Stuck {
        self.fail(RtError::Unsupported(msg.into()))
    }

    // ------------------------------------------------------------ statements

    fn block(&mut self, stmts: &'p [Stmt]) {
        // Pre-scan the slice's direct-child labels (first occurrence wins,
        // like the tree engine's `label_pos`), so forward gotos resolve.
        let mut scope: HashMap<&'p str, u32> = HashMap::new();
        for s in stmts {
            if let Stmt::Label(name) = s {
                if !scope.contains_key(name.as_str()) {
                    let slot = self.new_label();
                    scope.insert(name.as_str(), slot);
                }
            }
        }
        self.scopes.push(scope);
        for s in stmts {
            self.stmt(s);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, s: &'p Stmt) {
        match s {
            Stmt::Instr(is) => {
                self.pending += 1;
                for i in is {
                    self.pending += 1;
                    if self.instr(i).is_err() {
                        // The instruction always aborts; its successors in
                        // this list are unreachable (no labels inside
                        // instruction lists), so skip them.
                        break;
                    }
                }
            }
            Stmt::Block(b) => {
                self.pending += 1;
                self.block(b);
            }
            Stmt::If(c, t, e) => {
                self.pending += 1;
                let else_l = self.new_label();
                let end = self.new_label();
                // A stuck condition always aborts, but the branches may
                // contain labels reachable by goto: compile them anyway.
                if self.exp(c).is_ok() {
                    self.emit(OpKind::BranchIfZero(else_l));
                }
                self.block(t);
                self.emit(OpKind::Jump(end));
                self.bind(else_l);
                self.block(e);
                self.bind(end);
            }
            Stmt::Loop(b) => {
                // The loop statement's own step is paid once on entry; the
                // flush-before-bind puts it *before* the head label, so
                // back edges don't re-pay it.
                self.pending += 1;
                let head = self.new_label();
                let exit = self.new_label();
                self.bind(head);
                self.brk.push(exit);
                self.cont.push(head);
                self.block(b);
                self.emit(OpKind::Jump(head));
                self.cont.pop();
                self.brk.pop();
                self.bind(exit);
            }
            Stmt::Break => {
                self.pending += 1;
                let t = *self.brk.last().expect("break stack is seeded");
                self.emit(OpKind::Jump(t));
            }
            Stmt::Continue => {
                self.pending += 1;
                let t = *self.cont.last().expect("continue stack is seeded");
                self.emit(OpKind::Jump(t));
            }
            Stmt::Return(e) => {
                self.pending += 1;
                match e {
                    Some(e) => {
                        if self.exp(e).is_ok() {
                            self.emit(OpKind::Ret { has_value: true });
                        }
                    }
                    None => self.emit(OpKind::Ret { has_value: false }),
                }
            }
            Stmt::Goto(name) => {
                self.pending += 1;
                let slot = self
                    .scopes
                    .iter()
                    .rev()
                    .find_map(|sc| sc.get(name.as_str()).copied());
                match slot {
                    Some(t) => self.emit(OpKind::Jump(t)),
                    None => {
                        // The tree engine bubbles the goto to function level
                        // and errors there, at no extra step cost.
                        let _ = self.unsupported(format!(
                            "goto to label `{name}` that is not visible from the jump site"
                        ));
                    }
                }
            }
            Stmt::Label(name) => {
                // Bind first, then charge: both fall-through and jumpers
                // execute the label statement's step.
                let slot = self
                    .scopes
                    .last()
                    .and_then(|sc| sc.get(name.as_str()).copied())
                    .expect("label pre-scanned in its slice");
                if self.labels[slot as usize] == u32::MAX {
                    self.bind(slot);
                }
                self.pending += 1;
            }
            Stmt::Switch(scrut, arms) => {
                self.pending += 1;
                let end = self.new_label();
                let arm_labels: Vec<u32> = arms.iter().map(|_| self.new_label()).collect();
                if self.exp(scrut).is_ok() {
                    // First arm listing a value wins; first empty-values arm
                    // is the default — the tree engine's in-order scan.
                    let mut cases: Vec<(i128, u32)> = Vec::new();
                    for (ai, arm) in arms.iter().enumerate() {
                        for &v in &arm.values {
                            if !cases.iter().any(|&(x, _)| x == v) {
                                cases.push((v, arm_labels[ai]));
                            }
                        }
                    }
                    cases.sort_unstable_by_key(|&(v, _)| v);
                    let default = arms
                        .iter()
                        .position(|a| a.values.is_empty())
                        .map(|i| arm_labels[i])
                        .unwrap_or(end);
                    self.emit(OpKind::Switch(Box::new(SwitchTable { cases, default })));
                }
                self.brk.push(end);
                for (ai, arm) in arms.iter().enumerate() {
                    self.bind(arm_labels[ai]);
                    self.block(&arm.body);
                    // Natural fall-through into the next arm.
                }
                self.brk.pop();
                self.bind(end);
            }
        }
    }

    // ---------------------------------------------------------- instructions

    fn instr(&mut self, i: &'p Instr) -> CResult {
        match i {
            Instr::Set(lv, e, _) => {
                let ty = self.lval_type(lv);
                if matches!(self.prog.types.get(ty), Type::Comp(_) | Type::Array(..)) {
                    return self.copy_aggregate(lv, e, ty);
                }
                self.exp(e)?;
                self.store(lv, ty)
            }
            Instr::Call(ret, callee, args, _) => {
                for a in args {
                    if matches!(self.prog.types.get(a.ty()), Type::Comp(_) | Type::Array(..)) {
                        // Aggregates pass by value as a source address; the
                        // tree engine charges no step for the Load node.
                        let lv = match a {
                            Exp::Load(lv, _) => lv,
                            _ => {
                                return Err(self.unsupported("aggregate argument is not an lvalue"))
                            }
                        };
                        match self.lval(lv)? {
                            CPlace::Mem => self.emit(OpKind::AddrAsVal),
                            CPlace::Reg(_) => {
                                return Err(self.unsupported("aggregate argument in register"))
                            }
                        }
                        continue;
                    }
                    self.exp(a)?;
                }
                let argc = args.len() as u32;
                match callee {
                    Callee::Func(f) => self.emit(OpKind::CallStatic { f: *f, argc }),
                    Callee::Extern(x) => self.emit(OpKind::CallExtern { x: x.0, argc }),
                    Callee::Ptr(e) => {
                        // The function-pointer expression evaluates after
                        // the arguments, like the tree engine.
                        self.exp(e)?;
                        self.emit(OpKind::CallPtr { argc });
                    }
                }
                if let Some(lv) = ret {
                    let ty = self.lval_type(lv);
                    self.emit(OpKind::PushResult);
                    self.store(lv, ty)?;
                }
                Ok(())
            }
            Instr::Check(c, _, site) => {
                match check_operand(c) {
                    Some(operand) => {
                        self.emit(OpKind::CheckBegin(c, *site));
                        self.exp(operand)?;
                        self.emit(OpKind::CheckEnd(c, *site));
                    }
                    // Guard machinery (probe/guarded/reset) has no single
                    // operand; the VM hands the whole check to the shared
                    // structural executor.
                    None => self.emit(OpKind::Hook(c, *site)),
                }
                Ok(())
            }
        }
    }

    fn copy_aggregate(&mut self, lv: &'p Lval, e: &'p Exp, ty: TypeId) -> CResult {
        let src = match e {
            Exp::Load(src_lv, _) => src_lv,
            _ => return Err(self.unsupported("aggregate rvalue is not an lvalue")),
        };
        let size = match self.prog.types.size_of(ty) {
            Ok(s) => s,
            Err(e) => return Err(self.unsupported(format!("aggregate copy: {e}"))),
        };
        match self.lval(lv)? {
            CPlace::Mem => {}
            CPlace::Reg(_) => return Err(self.unsupported("aggregate in register")),
        }
        match self.lval(src)? {
            CPlace::Mem => {}
            CPlace::Reg(_) => return Err(self.unsupported("aggregate in register")),
        }
        self.emit(OpKind::CopyAgg { size });
        Ok(())
    }

    /// Emits the store of the value on top of the stack into `lv` (resolved
    /// after the value, like the tree engine's `store_lval`).
    fn store(&mut self, lv: &'p Lval, ty: TypeId) -> CResult {
        match self.lval(lv)? {
            CPlace::Reg(l) => {
                let norm = match self.prog.types.get(ty) {
                    Type::Int(k) => RegNorm::Int(*k),
                    Type::Float(ccured_cil::types::FloatKind::Float) => RegNorm::Float32,
                    Type::Float(_) => RegNorm::Float64,
                    _ => RegNorm::Pass,
                };
                self.emit(OpKind::StoreReg(l, norm));
            }
            CPlace::Mem => {
                // WILD stores through a deref pay tag-bitmap upkeep; the
                // qualifier is static, so decide here.
                let wild_tag = match (&self.it.mode, &lv.base) {
                    (ExecMode::Cured { sol, .. }, LvBase::Deref(e)) if lv.is_deref() => self
                        .prog
                        .types
                        .ptr_parts(e.ty())
                        .map(|(_, q)| sol.kind(q) == PtrKind::Wild)
                        .unwrap_or(false),
                    _ => false,
                };
                // Resolve the scalar layout now so the dispatch loop skips
                // the per-store type walk; non-scalar targets keep the
                // generic op (it raises the tree engine's exact error).
                let machine = &self.prog.types.machine;
                match self.prog.types.get(ty) {
                    Type::Int(k) => self.emit(OpKind::StoreInt {
                        k: *k,
                        size: machine.int_size(*k),
                        wild_tag,
                    }),
                    Type::Float(fk) => self.emit(OpKind::StoreFloat {
                        size: machine.float_size(*fk),
                        wild_tag,
                    }),
                    Type::Ptr(_, q) => self.emit(OpKind::StorePtr { q: *q, wild_tag }),
                    _ => self.emit(OpKind::StoreMem { ty, wild_tag }),
                }
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------- expressions

    fn exp(&mut self, e: &'p Exp) -> CResult {
        self.pending += 1;
        match e {
            Exp::Const(Const::Int(v, _), _) => self.emit(OpKind::Push(Value::Int(*v))),
            Exp::Const(Const::Float(v, _), _) => self.emit(OpKind::Push(Value::Float(*v))),
            Exp::SizeOf(_, n, _) => self.emit(OpKind::Push(Value::Int(*n as i128))),
            Exp::FnAddr(f, _) => self.emit(OpKind::Push(Value::Ptr(PtrVal::Fn(*f)))),
            Exp::Load(lv, ty) => match self.lval(lv)? {
                CPlace::Reg(l) => {
                    // Compressed form of `zero_value(*ty)`.
                    let zk = match self.prog.types.get(*ty) {
                        Type::Float(_) => ZeroKind::Float,
                        Type::Ptr(..) => ZeroKind::Ptr,
                        _ => ZeroKind::Int,
                    };
                    self.emit(OpKind::LoadReg(l, zk));
                }
                CPlace::Mem => {
                    let machine = &self.prog.types.machine;
                    match self.prog.types.get(*ty) {
                        Type::Int(k) => self.emit(OpKind::LoadInt {
                            size: machine.int_size(*k),
                            signed: k.is_signed(),
                        }),
                        Type::Float(fk) => self.emit(OpKind::LoadFloat {
                            size: machine.float_size(*fk),
                        }),
                        Type::Ptr(_, q) => self.emit(OpKind::LoadPtr { q: *q }),
                        _ => self.emit(OpKind::LoadMem(*ty)),
                    }
                }
            },
            Exp::AddrOf(lv, ty) => match self.lval(lv)? {
                CPlace::Mem => self.emit(OpKind::MakePtr {
                    ty: *ty,
                    extent: None,
                }),
                CPlace::Reg(_) => {
                    return Err(self.unsupported("address of register-allocated local"))
                }
            },
            Exp::StartOf(lv, ty) => {
                let arr_ty = self.lval_type(lv);
                match self.lval(lv)? {
                    CPlace::Mem => {}
                    CPlace::Reg(_) => return Err(self.unsupported("array in register")),
                }
                let extent = match self.prog.types.get(arr_ty) {
                    Type::Array(elem, Some(n)) => match self.it.elem_size(*elem) {
                        Ok(es) => Some(n * es),
                        Err(e) => return Err(self.fail(e)),
                    },
                    _ => None,
                };
                self.emit(OpKind::MakePtr { ty: *ty, extent });
            }
            Exp::Unop(op, x, ty) => {
                self.exp(x)?;
                self.emit(OpKind::Unop(*op, *ty));
            }
            Exp::Binop(op, a, b, ty) => {
                self.exp(a)?;
                self.exp(b)?;
                self.emit(self.binop_kind(*op, a.ty(), *ty));
            }
            Exp::Cast(id, x, _) => {
                self.exp(x)?;
                self.emit(self.cast_kind(*id));
            }
        }
        Ok(())
    }

    /// Specializes a binary operator: comparisons carry no type data,
    /// arithmetic pre-resolves the result truncation, and pointer bumps
    /// pre-resolve the element size. Shapes the fast ops do not reproduce
    /// exactly (`MinusPP`, unsized elements) keep the generic op, whose
    /// dispatch calls the reference `apply_binop` unchanged.
    fn binop_kind(&self, op: BinOp, a_ty: TypeId, res_ty: TypeId) -> OpKind<'p> {
        use ccured_cil::ir::BinOp::*;
        let generic = OpKind::Binop { op, a_ty, res_ty };
        match op {
            Lt | Gt | Le | Ge | Eq | Ne => OpKind::BinCmp(op),
            PlusPI | MinusPI => {
                let elem = match self.prog.types.ptr_parts(a_ty) {
                    Some((t, _)) => match self.it.elem_size(t) {
                        Ok(es) => es,
                        // The tree engine raises the sizing error inside
                        // `apply_binop`, after both operands: keep generic.
                        Err(_) => return generic,
                    },
                    None => 1,
                };
                OpKind::PtrAdd {
                    elem,
                    neg: op == MinusPI,
                }
            }
            MinusPP => generic,
            _ => OpKind::BinArith {
                op,
                trunc: match self.prog.types.get(res_ty) {
                    Type::Int(k) => Some(*k),
                    _ => None,
                },
            },
        }
    }

    /// Specializes a cast: when neither side is a pointer the conversion is
    /// a static scalar-normalization rule; every pointer shape keeps the
    /// generic op (representation conversion needs the full cast site).
    fn cast_kind(&self, id: CastId) -> OpKind<'p> {
        let site = &self.prog.casts[id.idx()];
        let types = &self.prog.types;
        if types.ptr_parts(site.from).is_some() || types.ptr_parts(site.to).is_some() {
            return OpKind::Cast(id);
        }
        OpKind::CastNum(match types.get(site.to) {
            Type::Int(k) => RegNorm::Int(*k),
            Type::Float(ccured_cil::types::FloatKind::Float) => RegNorm::Float32,
            Type::Float(_) => RegNorm::Float64,
            _ => RegNorm::Pass,
        })
    }

    // --------------------------------------------------------------- lvalues

    fn lval_type(&self, lv: &Lval) -> TypeId {
        ccured_infer::gen::lval_type(self.prog, self.func, lv)
    }

    /// Compiles lvalue resolution. For a `Mem` place the emitted ops leave
    /// the address on the address stack; a `Reg` place emits nothing.
    fn lval(&mut self, lv: &'p Lval) -> Result<CPlace, Stuck> {
        let mut ty: TypeId;
        match &lv.base {
            LvBase::Local(l) => {
                ty = self.func.locals[l.idx()].ty;
                if self.mem_locals[l.idx()] {
                    self.emit(OpKind::LocalAddr(*l));
                } else if lv.offsets.is_empty() {
                    return Ok(CPlace::Reg(*l));
                } else {
                    return Err(self.unsupported("offsets into register-allocated local"));
                }
            }
            LvBase::Global(g) => {
                ty = self.prog.globals[g.idx()].ty;
                self.emit(OpKind::GlobalAddr(g.0));
            }
            LvBase::Deref(e) => {
                // The static type test precedes the operand evaluation.
                ty = match self.prog.types.ptr_parts(e.ty()) {
                    Some((t, _)) => t,
                    None => return Err(self.unsupported("deref of non-pointer type")),
                };
                self.exp(e)?;
                self.emit(OpKind::Deref);
            }
        }
        for off in &lv.offsets {
            match off {
                Offset::Field(cid, idx) => {
                    let f = &self.prog.types.comp(*cid).fields[*idx];
                    self.emit(OpKind::FieldAdd(f.offset as i64));
                    ty = f.ty;
                }
                Offset::Index(e) => {
                    // Array-ness and element sizing are static and precede
                    // the index evaluation, like the tree engine.
                    let (elem, es) = match self.prog.types.get(ty) {
                        Type::Array(elem, _) => match self.prog.types.size_of(*elem) {
                            Ok(es) => (*elem, es),
                            Err(e) => return Err(self.unsupported(format!("array element: {e}"))),
                        },
                        _ => return Err(self.unsupported("index into non-array")),
                    };
                    self.exp(e)?;
                    self.emit(OpKind::IndexAdd(es));
                    ty = elem;
                }
            }
        }
        Ok(CPlace::Mem)
    }
}
