//! Run-time error taxonomy.
//!
//! Two layers matter for the soundness experiments:
//!
//! * [`RtError::CheckFailed`] — a **CCured check** caught the violation
//!   before any memory was harmed: the defined, graceful outcome of a cured
//!   program.
//! * The remaining memory variants are **ground truth** from the memory
//!   model: in real C these would be undefined behaviour. A cured program
//!   must never produce them (tested by the soundness property tests).

use std::fmt;

/// A run-time error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// A CCured run-time check failed (graceful, defined behaviour).
    CheckFailed {
        /// Stable check name (e.g. `seq_bounds`).
        check: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Dereference of a null pointer.
    NullDeref,
    /// Access outside an allocation.
    OutOfBounds {
        /// Offset of the attempted access.
        offset: i64,
        /// Size of the attempted access.
        size: u64,
        /// Size of the allocation.
        alloc_size: u64,
    },
    /// Access to a freed heap allocation.
    UseAfterFree,
    /// Access to a stack allocation whose frame has returned.
    UseAfterReturn,
    /// `free` of a heap allocation that was already freed.
    DoubleFree,
    /// `free` of memory that was never a heap allocation (stack or global).
    FreeOfNonHeap,
    /// Read of an uninitialized location.
    UninitRead,
    /// A non-pointer value was used as a pointer.
    InvalidPointer(String),
    /// Called something that is not a function.
    NotAFunction,
    /// Division or remainder by zero.
    DivByZero,
    /// The program called an unknown external function.
    UnknownExternal(String),
    /// An external was called with an incompatible representation
    /// (the "fails to link" guarantee of paper Section 4.1).
    LinkError(String),
    /// The instruction budget was exhausted (runaway loop guard).
    OutOfFuel,
    /// A sandbox resource limit was hit (graceful, defined behaviour —
    /// see [`crate::Limits`]).
    LimitExceeded {
        /// Stable limit name: `stack_limit`, `heap_limit`, or `deadline`.
        limit: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// An internal interpreter invariant was violated (a bug in *us*, or a
    /// malformed program slipping past the frontend). Reported instead of
    /// panicking so one poisoned input cannot take down a batch.
    Internal(String),
    /// The program called `abort()` or an assertion builtin failed.
    Abort(String),
    /// A construct the interpreter does not support.
    Unsupported(String),
    /// The program called `exit(code)` (not an error; unwinds the run).
    Exit(i64),
}

impl RtError {
    /// True when a CCured check (not the raw memory model) caught the error.
    pub fn is_check_failure(&self) -> bool {
        matches!(self, RtError::CheckFailed { .. })
    }

    /// True for ground-truth memory errors (undefined behaviour in real C).
    pub fn is_memory_error(&self) -> bool {
        matches!(
            self,
            RtError::NullDeref
                | RtError::OutOfBounds { .. }
                | RtError::UseAfterFree
                | RtError::UseAfterReturn
                | RtError::DoubleFree
                | RtError::FreeOfNonHeap
                | RtError::UninitRead
                | RtError::InvalidPointer(_)
        )
    }

    /// True when a sandbox resource limit (fuel, stack, heap, or wall-clock
    /// deadline) stopped the run — neither a caught violation nor a memory
    /// error, but a defined, graceful outcome.
    pub fn is_resource_limit(&self) -> bool {
        matches!(self, RtError::OutOfFuel | RtError::LimitExceeded { .. })
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::CheckFailed { check, detail } => {
                write!(f, "ccured check `{check}` failed: {detail}")
            }
            RtError::NullDeref => write!(f, "null pointer dereference"),
            RtError::OutOfBounds {
                offset,
                size,
                alloc_size,
            } => write!(
                f,
                "out-of-bounds access at offset {offset} (size {size}) in allocation of {alloc_size} bytes"
            ),
            RtError::UseAfterFree => write!(f, "use after free"),
            RtError::UseAfterReturn => write!(f, "use of stack memory after return"),
            RtError::DoubleFree => write!(f, "double free of heap allocation"),
            RtError::FreeOfNonHeap => write!(f, "free of non-heap memory"),
            RtError::UninitRead => write!(f, "read of uninitialized memory"),
            RtError::InvalidPointer(d) => write!(f, "invalid pointer: {d}"),
            RtError::NotAFunction => write!(f, "called value is not a function"),
            RtError::DivByZero => write!(f, "division by zero"),
            RtError::UnknownExternal(n) => write!(f, "unknown external function `{n}`"),
            RtError::LinkError(d) => write!(f, "link error: {d}"),
            RtError::OutOfFuel => write!(f, "instruction budget exhausted"),
            RtError::LimitExceeded { limit, detail } => {
                write!(f, "resource limit `{limit}` exceeded: {detail}")
            }
            RtError::Internal(d) => write!(f, "internal interpreter error: {d}"),
            RtError::Abort(d) => write!(f, "program aborted: {d}"),
            RtError::Unsupported(d) => write!(f, "unsupported: {d}"),
            RtError::Exit(code) => write!(f, "exit({code})"),
        }
    }
}

impl std::error::Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(RtError::CheckFailed {
            check: "null",
            detail: String::new()
        }
        .is_check_failure());
        assert!(RtError::NullDeref.is_memory_error());
        assert!(RtError::UseAfterFree.is_memory_error());
        assert!(RtError::DoubleFree.is_memory_error());
        assert!(RtError::FreeOfNonHeap.is_memory_error());
        assert!(!RtError::DivByZero.is_memory_error());
        assert!(!RtError::NullDeref.is_check_failure());
        assert!(RtError::OutOfFuel.is_resource_limit());
        let stack = RtError::LimitExceeded {
            limit: "stack_limit",
            detail: String::new(),
        };
        assert!(stack.is_resource_limit());
        assert!(!stack.is_memory_error() && !stack.is_check_failure());
        let internal = RtError::Internal("invariant".into());
        assert!(!internal.is_resource_limit() && !internal.is_memory_error());
    }

    #[test]
    fn display_is_informative() {
        let e = RtError::OutOfBounds {
            offset: 12,
            size: 4,
            alloc_size: 8,
        };
        let s = format!("{e}");
        assert!(s.contains("12") && s.contains("8"));
    }
}
