//! Runtime values, including the CCured fat-pointer representations of
//! paper Figure 1 (and the RTTI representation of Section 3.2).

use crate::mem::Pointer;
use ccured_cil::ir::FnRef;

/// A pointer value in one of the CCured representations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PtrVal {
    /// The null pointer (all representations share it).
    Null,
    /// A thin SAFE pointer.
    Safe(Pointer),
    /// A SEQ fat pointer: the pointer plus its home-area byte range
    /// `[lo, hi)` within the same allocation. The pointer may stray outside
    /// the range (legal until dereferenced).
    Seq {
        /// Current position.
        p: Pointer,
        /// Inclusive lower bound offset of the home area.
        lo: i64,
        /// Exclusive upper bound offset of the home area.
        hi: i64,
    },
    /// A WILD pointer: position plus home-area range, with tags maintained
    /// in the referenced allocation.
    Wild {
        /// Current position.
        p: Pointer,
        /// Inclusive lower bound offset of the home area.
        lo: i64,
        /// Exclusive upper bound offset of the home area.
        hi: i64,
    },
    /// An RTTI pointer: position plus the node of its dynamic type in the
    /// physical-subtype hierarchy.
    Rtti {
        /// Current position.
        p: Pointer,
        /// Hierarchy node of the value's dynamic (allocation-time) type.
        node: u32,
    },
    /// A function pointer.
    Fn(FnRef),
    /// An integer disguised as a pointer (the `b = null` case of Figure 10):
    /// representable but never dereferenceable.
    IntVal(u64),
}

impl PtrVal {
    /// The thin view of this pointer: its current memory position, if any.
    pub fn thin(&self) -> Option<Pointer> {
        match self {
            PtrVal::Safe(p)
            | PtrVal::Seq { p, .. }
            | PtrVal::Wild { p, .. }
            | PtrVal::Rtti { p, .. } => Some(*p),
            PtrVal::Null | PtrVal::Fn(_) | PtrVal::IntVal(_) => None,
        }
    }

    /// Whether this value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, PtrVal::Null)
    }

    /// Moves the pointer by `delta` bytes, preserving the representation.
    pub fn offset_by(&self, delta: i64) -> PtrVal {
        match *self {
            PtrVal::Safe(p) => PtrVal::Safe(p.offset_by(delta)),
            PtrVal::Seq { p, lo, hi } => PtrVal::Seq {
                p: p.offset_by(delta),
                lo,
                hi,
            },
            PtrVal::Wild { p, lo, hi } => PtrVal::Wild {
                p: p.offset_by(delta),
                lo,
                hi,
            },
            PtrVal::Rtti { p, node } => PtrVal::Rtti {
                p: p.offset_by(delta),
                node,
            },
            other => other,
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// An integer (width/signedness normalized on store by the target kind).
    Int(i128),
    /// A floating-point value.
    Float(f64),
    /// A pointer.
    Ptr(PtrVal),
}

impl Value {
    /// The null pointer value.
    pub const NULL: Value = Value::Ptr(PtrVal::Null);

    /// Truthiness for conditions (C semantics).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Ptr(PtrVal::Null) => false,
            Value::Ptr(PtrVal::IntVal(v)) => *v != 0,
            Value::Ptr(_) => true,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The pointer payload, if this is a pointer.
    pub fn as_ptr(&self) -> Option<PtrVal> {
        match self {
            Value::Ptr(p) => Some(*p),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::AllocId;

    fn ptr(off: i64) -> Pointer {
        Pointer {
            alloc: AllocId(1),
            offset: off,
        }
    }

    #[test]
    fn thin_views() {
        assert_eq!(PtrVal::Null.thin(), None);
        assert_eq!(PtrVal::Safe(ptr(4)).thin(), Some(ptr(4)));
        assert_eq!(
            PtrVal::Seq {
                p: ptr(8),
                lo: 0,
                hi: 16
            }
            .thin(),
            Some(ptr(8))
        );
        assert_eq!(PtrVal::IntVal(42).thin(), None);
    }

    #[test]
    fn offset_preserves_bounds() {
        let s = PtrVal::Seq {
            p: ptr(4),
            lo: 0,
            hi: 16,
        };
        match s.offset_by(8) {
            PtrVal::Seq { p, lo, hi } => {
                assert_eq!(p.offset, 12);
                assert_eq!((lo, hi), (0, 16));
            }
            other => panic!("wrong representation: {other:?}"),
        }
        // Straying past the bounds is representable.
        match s.offset_by(100) {
            PtrVal::Seq { p, .. } => assert_eq!(p.offset, 104),
            other => panic!("wrong representation: {other:?}"),
        }
    }

    #[test]
    fn truthiness() {
        assert!(!Value::NULL.is_truthy());
        assert!(Value::Int(3).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Ptr(PtrVal::Safe(ptr(0))).is_truthy());
        assert!(!Value::Ptr(PtrVal::IntVal(0)).is_truthy());
    }
}
