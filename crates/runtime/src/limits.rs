//! The execution sandbox: resource limits enforced by the interpreter.
//!
//! The interpreter backs every experiment in this repo and is routinely fed
//! adversarial inputs (the fuzz corpus, the fault-injection harness). The
//! sandbox guarantees that no guest program — however hostile — can wedge or
//! crash the *host*: every limit trips gracefully as an
//! [`RtError`](crate::RtError) instead of a panic, a blown host stack, or an
//! OOM kill.
//!
//! Each limit maps to a stable error:
//!
//! | limit             | error                                           |
//! |-------------------|-------------------------------------------------|
//! | `fuel`            | [`RtError::OutOfFuel`](crate::RtError::OutOfFuel)|
//! | `max_stack_depth` | `LimitExceeded { limit: "stack_limit" }`        |
//! | `max_heap_bytes`  | `LimitExceeded { limit: "heap_limit" }`         |
//! | `deadline`        | `LimitExceeded { limit: "deadline" }`           |

use std::time::Duration;

/// Resource limits for one interpreter run.
///
/// The defaults are deliberately generous — every workload and paper
/// experiment in the repo fits comfortably — while still bounding runaway
/// guests. Deterministic harnesses (crash-test, fuzzing) should leave
/// `deadline` unset: fuel already bounds run time, and wall-clock cutoffs
/// make outcomes machine-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Instruction budget (runaway-loop guard).
    pub fuel: u64,
    /// Maximum interpreter call-stack depth. The interpreter recurses on
    /// guest calls, so this also protects the host stack: `f(){f();}` must
    /// trip this limit, not crash the process.
    pub max_stack_depth: usize,
    /// Cap on total live guest memory in bytes.
    pub max_heap_bytes: u64,
    /// Optional wall-clock deadline, polled periodically during execution.
    /// `None` (the default) keeps runs fully deterministic.
    pub deadline: Option<Duration>,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            // The interpreter spends several host frames (~10 KiB of host
            // stack in debug builds) per guest frame, and test threads get
            // only 2 MiB: empirically, 192 guest frames trip this limit
            // cleanly while 256 blow the host stack. 128 keeps a healthy
            // margin below that cliff while still exceeding the deepest
            // corpus recursion (olden treeadd, ~12 frames) by 10x.
            fuel: 500_000_000,
            max_stack_depth: 128,
            max_heap_bytes: 256 << 20,
            deadline: None,
        }
    }
}

impl Limits {
    /// Tight limits for adversarial batches (fault injection, fuzzing):
    /// small enough that a hostile mutant exhausts them quickly, large
    /// enough that every legitimate workload in the corpus passes.
    pub fn strict() -> Self {
        Limits {
            fuel: 50_000_000,
            max_stack_depth: 96,
            max_heap_bytes: 64 << 20,
            deadline: None,
        }
    }

    /// These limits with a wall-clock deadline of `ms` milliseconds (the
    /// `--deadline-ms` CLI flag; `0` means a zero budget, which trips at
    /// the first boundary — useful for deterministic tests).
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous_but_finite() {
        let l = Limits::default();
        assert!(l.fuel >= 1_000_000);
        assert!(l.max_stack_depth >= 64);
        assert!(l.max_heap_bytes >= 1 << 20);
        assert!(l.deadline.is_none(), "default must stay deterministic");
        let s = Limits::strict();
        assert!(s.fuel < l.fuel && s.max_heap_bytes < l.max_heap_bytes);
        assert!(s.max_stack_depth < l.max_stack_depth);
    }
}
