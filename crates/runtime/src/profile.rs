//! Per-check-site execution profiles.
//!
//! The instrumentation stamps every emitted check with a stable
//! [`SiteId`](ccured_cil::ir::SiteId); when an [`Interp`](crate::Interp) has
//! profiling enabled (see [`Interp::enable_profile`](crate::Interp::enable_profile))
//! both engines record per-site hit/fail counts and RTTI walk steps through
//! the same shared helpers that maintain the aggregate
//! [`Counters`](crate::Counters). Profiling is observation-only: it never
//! touches the counters, the output, or the verdict, so a profiled run is
//! byte-identical to an unprofiled one (asserted by the differential tests).
//!
//! [`rank_sites`] joins the dynamic profile with the static
//! [`CheckSite`](ccured::instrument::CheckSite) table and the abstract
//! [`CostModel`] into a deterministically ranked hot-site report. Cost is
//! *attributed* at render time (hits × the per-kind check cost, plus walked
//! RTTI steps) rather than measured, so the ranking is identical across the
//! tree and VM engines by construction.

use crate::cost::CostModel;
use ccured::instrument::CheckSite;
use std::collections::HashSet;

/// Schema tag stamped into `ccured profile --json` output and required by
/// [`Profile::from_pgo_json`]. Bump the version when the JSON layout
/// changes incompatibly.
pub const PGO_SCHEMA: &str = "ccured-profile/v1";

/// Dynamic counters for one check site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCounters {
    /// Times a check of this site executed.
    pub hits: u64,
    /// Times it failed (aborting the program; at most 1 per run in
    /// practice, but fault injection can observe more across restarts).
    pub fails: u64,
    /// RTTI parent-chain steps walked by this site's checks.
    pub walk_steps: u64,
}

/// The per-site profile of one run. Indexed by the raw
/// [`SiteId`](ccured_cil::ir::SiteId) value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// One slot per site, in site-table order.
    pub sites: Vec<SiteCounters>,
}

impl Profile {
    /// A profile with `n_sites` zeroed slots.
    pub fn new(n_sites: usize) -> Self {
        Profile {
            sites: vec![SiteCounters::default(); n_sites],
        }
    }

    /// Total hits across all sites.
    pub fn total_hits(&self) -> u64 {
        self.sites.iter().map(|s| s.hits).sum()
    }

    pub(crate) fn slot(&mut self, i: usize) -> &mut SiteCounters {
        // Defensive: an id past the preallocated table (e.g. a profile
        // enabled with a stale site count) grows the vector rather than
        // dropping the event.
        if i >= self.sites.len() {
            self.sites.resize(i + 1, SiteCounters::default());
        }
        &mut self.sites[i]
    }

    /// Reconstructs a profile from `ccured profile --json` output, for
    /// `--pgo`. Checks the [`PGO_SCHEMA`] tag first and reports a
    /// mismatch in terms of what to do about it. Rows truncated away by
    /// `--top` are simply absent — the plan is built from what survived.
    ///
    /// # Errors
    ///
    /// A human-readable message when the schema tag is missing or wrong,
    /// or the `rows` array is malformed.
    pub fn from_pgo_json(text: &str) -> Result<Profile, String> {
        match json_str(text, "schema") {
            Some(s) if s == PGO_SCHEMA => {}
            Some(s) => {
                return Err(format!(
                    "profile schema mismatch: file says `{s}`, this build reads `{PGO_SCHEMA}` \
                     — regenerate it with this binary's `ccured profile --json`"
                ))
            }
            None => {
                return Err(format!(
                    "not a ccured profile: no `schema` field (expected `{PGO_SCHEMA}`; \
                     produce one with `ccured profile --json`)"
                ))
            }
        }
        let mut prof = Profile::default();
        for obj in row_objects(text)? {
            let site = match json_u64(obj, "site") {
                Some(s) => s,
                // Synthetic sites never reach the table; a site-less row
                // is from a foreign tool — skip rather than misattribute.
                None => continue,
            };
            let slot = prof.slot(site as usize);
            slot.hits = json_u64(obj, "hits").unwrap_or(0);
            slot.fails = json_u64(obj, "fails").unwrap_or(0);
            slot.walk_steps = json_u64(obj, "walk_steps").unwrap_or(0);
        }
        Ok(prof)
    }
}

/// Finds the string value of `"key"` in `text` (first occurrence). Good
/// for fixed tokens like the schema tag; does not unescape.
fn json_str<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix('"')?;
    rest.find('"').map(|e| &rest[..e])
}

/// Finds the unsigned integer value of `"key"` in `obj`.
fn json_u64(obj: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Splits the `rows` array of a profile JSON into its top-level objects.
/// String contents (function names, keep reasons) may contain braces, so
/// the scan tracks string state and escapes.
fn row_objects(text: &str) -> Result<Vec<&str>, String> {
    let malformed = |why: &str| format!("malformed profile JSON: {why}");
    let at = text
        .find("\"rows\"")
        .ok_or_else(|| malformed("no `rows` array"))?;
    let rest = &text[at..];
    let open = rest.find('[').ok_or_else(|| malformed("no `rows` array"))?;
    let bytes = rest.as_bytes();
    let mut objs = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut in_str = false;
    let mut esc = false;
    for i in open + 1..bytes.len() {
        let b = bytes[i];
        if in_str {
            if esc {
                esc = false;
            } else if b == b'\\' {
                esc = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            b'}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| malformed("unbalanced braces in `rows`"))?;
                if depth == 0 {
                    objs.push(&rest[start..=i]);
                }
            }
            b']' if depth == 0 => return Ok(objs),
            _ => {}
        }
    }
    Err(malformed("unterminated `rows` array"))
}

/// Checks that a saved `ccured-profile/v1` file still describes `sites` —
/// the unit may have been edited since the profile was recorded, silently
/// shifting site ids onto different functions. Every row naming a site must
/// name one that exists, and its `func` field (when present and comparable)
/// must match the function the site table attributes that id to.
///
/// # Errors
///
/// A human-readable description of the first mismatch, for the caller to
/// warn with before falling back to online heat. Never errs on rows without
/// a site id (foreign/synthetic rows are skipped, matching
/// [`Profile::from_pgo_json`]).
pub fn validate_pgo_against_sites(text: &str, sites: &[CheckSite]) -> Result<(), String> {
    for obj in row_objects(text)? {
        let Some(site) = json_u64(obj, "site") else {
            continue;
        };
        let Some(s) = sites.get(site as usize) else {
            return Err(format!(
                "profile row names site {site}, but this unit has only {} check sites \
                 — the source changed since the profile was recorded",
                sites.len()
            ));
        };
        if let Some(func) = json_str(obj, "func") {
            // Escaped names can't be compared textually; skip those rows
            // rather than false-positive on them.
            if !func.contains('\\') && func != s.func {
                return Err(format!(
                    "profile row attributes site {site} to `{func}`, but this unit's site \
                     table says `{}` — the source changed since the profile was recorded",
                    s.func
                ));
            }
        }
    }
    Ok(())
}

/// The offline tiering decisions distilled from a saved profile: which
/// functions go straight to the hot tier and which sites are eligible for
/// check fusion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierPlan {
    /// Functions containing at least one executed check site.
    pub hot_funcs: HashSet<String>,
    /// Executed check sites, by raw site id.
    pub hot_sites: HashSet<u32>,
}

/// Distills a tiering plan from a profile joined with the cure's static
/// site table. Hot means "executed at all" (`hits >= 1`): a baseline
/// compile already amortizes truly-cold code, so any observed execution
/// is worth the extended compile. A pure function of its inputs — and the
/// profile itself is engine-independent — so tree- and VM-recorded
/// profiles produce identical plans.
pub fn tier_plan(sites: &[CheckSite], profile: &Profile) -> TierPlan {
    let mut plan = TierPlan::default();
    for s in sites {
        if let Some(i) = s.id.index() {
            if profile.sites.get(i).is_some_and(|c| c.hits > 0) {
                plan.hot_sites.insert(i as u32);
                plan.hot_funcs.insert(s.func.clone());
            }
        }
    }
    plan
}

/// One row of a rendered profile: static site metadata joined with the
/// dynamic counters and the abstract cost attributed to the site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteReport {
    /// The static site (span, function, kinds, elision data).
    pub site: CheckSite,
    /// Dynamic executions of this site's checks.
    pub hits: u64,
    /// Dynamic failures.
    pub fails: u64,
    /// RTTI walk steps attributed to this site.
    pub walk_steps: u64,
    /// Abstract cycles attributed to this site under the [`CostModel`].
    pub cost: f64,
}

/// The abstract cost of executing one check of the named kind once,
/// excluding RTTI walk steps (attributed separately).
pub fn check_unit_cost(model: &CostModel, kind: &str) -> f64 {
    match kind {
        "null" => model.null_check,
        "seq_bounds" => model.seq_bounds_check,
        "seq_to_safe" => model.seq_to_safe_check,
        "wild_bounds" => model.wild_bounds_check,
        "wild_tag" => model.wild_tag_check,
        "rtti" => model.rtti_check,
        "no_stack_escape" => model.escape_check,
        "index_bound" => model.index_check,
        "temporal" => model.temporal_check,
        _ => 0.0,
    }
}

/// Joins the static site table with a run's [`Profile`] and ranks the rows
/// hottest-first. Ordering: attributed cost, then hits, then site id — the
/// id tiebreak makes the ranking total, hence deterministic and identical
/// for any two runs (on any engine) that produced the same counts.
pub fn rank_sites(sites: &[CheckSite], profile: &Profile, model: &CostModel) -> Vec<SiteReport> {
    let mut rows: Vec<SiteReport> = sites
        .iter()
        .map(|s| {
            let c =
                s.id.index()
                    .and_then(|i| profile.sites.get(i))
                    .copied()
                    .unwrap_or_default();
            SiteReport {
                cost: c.hits as f64 * check_unit_cost(model, s.check)
                    + c.walk_steps as f64 * model.rtti_walk_step,
                hits: c.hits,
                fails: c.fails,
                walk_steps: c.walk_steps,
                site: s.clone(),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.cost
            .total_cmp(&a.cost)
            .then(b.hits.cmp(&a.hits))
            .then(a.site.id.cmp(&b.site.id))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccured_cil::ir::SiteId;

    fn site(id: u32, check: &'static str) -> CheckSite {
        CheckSite {
            id: SiteId(id),
            func: "f".into(),
            span: ccured_ast::Span::DUMMY,
            check,
            ptr_kind: "safe",
            static_count: 1,
            elided: 0,
            keep_reason: None,
            opt_action: None,
        }
    }

    #[test]
    fn ranking_orders_by_attributed_cost_with_id_tiebreak() {
        let sites = vec![site(0, "null"), site(1, "wild_bounds"), site(2, "null")];
        let mut prof = Profile::new(3);
        prof.sites[0].hits = 10; // 10 × 1.0 = 10 cycles
        prof.sites[1].hits = 2; // 2 × 9.0 = 18 cycles
        prof.sites[2].hits = 10; // ties with site 0 → id order
        let rows = rank_sites(&sites, &prof, &CostModel::default());
        let ids: Vec<u32> = rows.iter().map(|r| r.site.id.0).collect();
        assert_eq!(ids, vec![1, 0, 2]);
        assert!(rows[0].cost > rows[1].cost);
        assert_eq!(rows[1].cost, rows[2].cost);
    }

    #[test]
    fn rtti_walk_steps_add_attributed_cost() {
        let sites = vec![site(0, "rtti"), site(1, "rtti")];
        let mut prof = Profile::new(2);
        prof.sites[0].hits = 1;
        prof.sites[1].hits = 1;
        prof.sites[1].walk_steps = 5;
        let rows = rank_sites(&sites, &prof, &CostModel::default());
        assert_eq!(rows[0].site.id.0, 1, "walk steps make site 1 hotter");
        let m = CostModel::default();
        assert_eq!(rows[0].cost, m.rtti_check + 5.0 * m.rtti_walk_step);
    }

    #[test]
    fn profile_slot_grows_on_demand() {
        let mut p = Profile::new(1);
        p.slot(4).hits += 1;
        assert_eq!(p.sites.len(), 5);
        assert_eq!(p.total_hits(), 1);
    }

    #[test]
    fn pgo_json_round_trips_site_counters() {
        // Function names with braces and escapes must not derail the row
        // scanner.
        let text = format!(
            "{{\"schema\":\"{PGO_SCHEMA}\",\"file\":\"x.c\",\"engine\":\"vm\",\"rows\":[\
             {{\"rank\":1,\"site\":3,\"func\":\"f{{un}}c\",\"hits\":7,\"fails\":1,\
             \"walk_steps\":2,\"cost\":9.5,\"keep_reason\":\"a \\\"b}}\\\" c\"}},\
             {{\"rank\":2,\"site\":0,\"func\":\"g\",\"hits\":1,\"fails\":0,\
             \"walk_steps\":0,\"cost\":1.0,\"keep_reason\":null}}]}}\n"
        );
        let p = Profile::from_pgo_json(&text).unwrap();
        assert_eq!(p.sites.len(), 4);
        assert_eq!(p.sites[3].hits, 7);
        assert_eq!(p.sites[3].fails, 1);
        assert_eq!(p.sites[3].walk_steps, 2);
        assert_eq!(p.sites[0].hits, 1);
        assert_eq!(p.sites[1].hits, 0);
    }

    #[test]
    fn pgo_schema_mismatch_is_a_clear_error() {
        let wrong = "{\"schema\":\"ccured-profile/v0\",\"rows\":[]}";
        let e = Profile::from_pgo_json(wrong).unwrap_err();
        assert!(
            e.contains("ccured-profile/v0") && e.contains(PGO_SCHEMA),
            "{e}"
        );
        let missing = "{\"rows\":[]}";
        let e = Profile::from_pgo_json(missing).unwrap_err();
        assert!(e.contains(PGO_SCHEMA), "{e}");
    }

    #[test]
    fn stale_pgo_is_rejected_after_source_edit() {
        // A profile recorded before an edit: site 1 used to live in `g`.
        let text = format!(
            "{{\"schema\":\"{PGO_SCHEMA}\",\"rows\":[\
             {{\"rank\":1,\"site\":0,\"func\":\"f\",\"hits\":5,\"fails\":0,\"walk_steps\":0}},\
             {{\"rank\":2,\"site\":1,\"func\":\"g\",\"hits\":2,\"fails\":0,\"walk_steps\":0}}]}}"
        );
        // Round trip against the matching table: fine.
        let mut s1 = site(1, "seq_bounds");
        s1.func = "g".into();
        let good = vec![site(0, "null"), s1];
        validate_pgo_against_sites(&text, &good).expect("matching table validates");
        assert_eq!(Profile::from_pgo_json(&text).unwrap().sites[1].hits, 2);

        // After an edit, site 1 now belongs to `h`: same ids, wrong owner.
        let mut s1h = site(1, "seq_bounds");
        s1h.func = "h".into();
        let edited = vec![site(0, "null"), s1h];
        let e = validate_pgo_against_sites(&text, &edited).unwrap_err();
        assert!(
            e.contains("site 1") && e.contains("`g`") && e.contains("`h`"),
            "{e}"
        );

        // After a bigger edit the unit only has one site left.
        let shrunk = vec![site(0, "null")];
        let e = validate_pgo_against_sites(&text, &shrunk).unwrap_err();
        assert!(e.contains("only 1 check sites"), "{e}");
    }

    #[test]
    fn tier_plan_marks_executed_sites_and_their_functions() {
        let mut cold = site(0, "null");
        cold.func = "coldfn".into();
        let mut hot = site(1, "seq_bounds");
        hot.func = "hotfn".into();
        let mut prof = Profile::new(2);
        prof.sites[1].hits = 1;
        let plan = tier_plan(&[cold, hot], &prof);
        assert!(plan.hot_sites.contains(&1) && !plan.hot_sites.contains(&0));
        assert!(plan.hot_funcs.contains("hotfn") && !plan.hot_funcs.contains("coldfn"));
    }
}
