//! Per-check-site execution profiles.
//!
//! The instrumentation stamps every emitted check with a stable
//! [`SiteId`](ccured_cil::ir::SiteId); when an [`Interp`](crate::Interp) has
//! profiling enabled (see [`Interp::enable_profile`](crate::Interp::enable_profile))
//! both engines record per-site hit/fail counts and RTTI walk steps through
//! the same shared helpers that maintain the aggregate
//! [`Counters`](crate::Counters). Profiling is observation-only: it never
//! touches the counters, the output, or the verdict, so a profiled run is
//! byte-identical to an unprofiled one (asserted by the differential tests).
//!
//! [`rank_sites`] joins the dynamic profile with the static
//! [`CheckSite`](ccured::instrument::CheckSite) table and the abstract
//! [`CostModel`] into a deterministically ranked hot-site report. Cost is
//! *attributed* at render time (hits × the per-kind check cost, plus walked
//! RTTI steps) rather than measured, so the ranking is identical across the
//! tree and VM engines by construction.

use crate::cost::CostModel;
use ccured::instrument::CheckSite;

/// Dynamic counters for one check site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCounters {
    /// Times a check of this site executed.
    pub hits: u64,
    /// Times it failed (aborting the program; at most 1 per run in
    /// practice, but fault injection can observe more across restarts).
    pub fails: u64,
    /// RTTI parent-chain steps walked by this site's checks.
    pub walk_steps: u64,
}

/// The per-site profile of one run. Indexed by the raw
/// [`SiteId`](ccured_cil::ir::SiteId) value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// One slot per site, in site-table order.
    pub sites: Vec<SiteCounters>,
}

impl Profile {
    /// A profile with `n_sites` zeroed slots.
    pub fn new(n_sites: usize) -> Self {
        Profile {
            sites: vec![SiteCounters::default(); n_sites],
        }
    }

    /// Total hits across all sites.
    pub fn total_hits(&self) -> u64 {
        self.sites.iter().map(|s| s.hits).sum()
    }

    pub(crate) fn slot(&mut self, i: usize) -> &mut SiteCounters {
        // Defensive: an id past the preallocated table (e.g. a profile
        // enabled with a stale site count) grows the vector rather than
        // dropping the event.
        if i >= self.sites.len() {
            self.sites.resize(i + 1, SiteCounters::default());
        }
        &mut self.sites[i]
    }
}

/// One row of a rendered profile: static site metadata joined with the
/// dynamic counters and the abstract cost attributed to the site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteReport {
    /// The static site (span, function, kinds, elision data).
    pub site: CheckSite,
    /// Dynamic executions of this site's checks.
    pub hits: u64,
    /// Dynamic failures.
    pub fails: u64,
    /// RTTI walk steps attributed to this site.
    pub walk_steps: u64,
    /// Abstract cycles attributed to this site under the [`CostModel`].
    pub cost: f64,
}

/// The abstract cost of executing one check of the named kind once,
/// excluding RTTI walk steps (attributed separately).
pub fn check_unit_cost(model: &CostModel, kind: &str) -> f64 {
    match kind {
        "null" => model.null_check,
        "seq_bounds" => model.seq_bounds_check,
        "seq_to_safe" => model.seq_to_safe_check,
        "wild_bounds" => model.wild_bounds_check,
        "wild_tag" => model.wild_tag_check,
        "rtti" => model.rtti_check,
        "no_stack_escape" => model.escape_check,
        "index_bound" => model.index_check,
        _ => 0.0,
    }
}

/// Joins the static site table with a run's [`Profile`] and ranks the rows
/// hottest-first. Ordering: attributed cost, then hits, then site id — the
/// id tiebreak makes the ranking total, hence deterministic and identical
/// for any two runs (on any engine) that produced the same counts.
pub fn rank_sites(sites: &[CheckSite], profile: &Profile, model: &CostModel) -> Vec<SiteReport> {
    let mut rows: Vec<SiteReport> = sites
        .iter()
        .map(|s| {
            let c =
                s.id.index()
                    .and_then(|i| profile.sites.get(i))
                    .copied()
                    .unwrap_or_default();
            SiteReport {
                cost: c.hits as f64 * check_unit_cost(model, s.check)
                    + c.walk_steps as f64 * model.rtti_walk_step,
                hits: c.hits,
                fails: c.fails,
                walk_steps: c.walk_steps,
                site: s.clone(),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.cost
            .total_cmp(&a.cost)
            .then(b.hits.cmp(&a.hits))
            .then(a.site.id.cmp(&b.site.id))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccured_cil::ir::SiteId;

    fn site(id: u32, check: &'static str) -> CheckSite {
        CheckSite {
            id: SiteId(id),
            func: "f".into(),
            span: ccured_ast::Span::DUMMY,
            check,
            ptr_kind: "safe",
            static_count: 1,
            elided: 0,
            keep_reason: None,
            opt_action: None,
        }
    }

    #[test]
    fn ranking_orders_by_attributed_cost_with_id_tiebreak() {
        let sites = vec![site(0, "null"), site(1, "wild_bounds"), site(2, "null")];
        let mut prof = Profile::new(3);
        prof.sites[0].hits = 10; // 10 × 1.0 = 10 cycles
        prof.sites[1].hits = 2; // 2 × 9.0 = 18 cycles
        prof.sites[2].hits = 10; // ties with site 0 → id order
        let rows = rank_sites(&sites, &prof, &CostModel::default());
        let ids: Vec<u32> = rows.iter().map(|r| r.site.id.0).collect();
        assert_eq!(ids, vec![1, 0, 2]);
        assert!(rows[0].cost > rows[1].cost);
        assert_eq!(rows[1].cost, rows[2].cost);
    }

    #[test]
    fn rtti_walk_steps_add_attributed_cost() {
        let sites = vec![site(0, "rtti"), site(1, "rtti")];
        let mut prof = Profile::new(2);
        prof.sites[0].hits = 1;
        prof.sites[1].hits = 1;
        prof.sites[1].walk_steps = 5;
        let rows = rank_sites(&sites, &prof, &CostModel::default());
        assert_eq!(rows[0].site.id.0, 1, "walk steps make site 1 hotter");
        let m = CostModel::default();
        assert_eq!(rows[0].cost, m.rtti_check + 5.0 * m.rtti_walk_step);
    }

    #[test]
    fn profile_slot_grows_on_demand() {
        let mut p = Profile::new(1);
        p.slot(4).hits += 1;
        assert_eq!(p.sites.len(), 5);
        assert_eq!(p.total_hits(), 1);
    }
}
