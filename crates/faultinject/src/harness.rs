//! The crash-test driver: mutate → ground truth → cure → cured run →
//! classify, for a whole seeded batch.
//!
//! Each mutant follows the same four-step protocol:
//!
//! 1. **Seed** one fault into a fresh copy of the lowered (pre-cure)
//!    program, using a per-mutant PRNG derived from the batch seed.
//! 2. **Ground truth**: run the mutant *uncured* under the raw memory
//!    model, recording whether plain C semantics hit a memory error.
//! 3. **Cure** the mutant with the default curer, isolated against panics
//!    ([`ccured::isolated`]) so one poisoned program cannot abort the batch.
//! 4. **Cured run**: execute under the sandbox ([`Limits`]) with the
//!    zeroing allocator on (cured deployments zero-initialize heap memory,
//!    paper Section 3.3), and classify the result.
//!
//! Classification looks only at the cured run: a failed CCured check is
//! [`Outcome::Caught`]; a ground-truth memory error is [`Outcome::Escaped`]
//! (a soundness bug in the cure); a defined completion — including faults
//! neutralized by the GC-backed `free` or the zeroing allocator — is
//! [`Outcome::Masked`].

use ccured::{isolated, CureError, Curer};
use ccured_cil::Program;
use ccured_rt::{Engine, ExecMode, Interp, Limits, RtError};
use ccured_workloads::prng::SplitMix64;
use ccured_workloads::Workload;

use crate::mutate::{mutate, FaultClass};
use crate::report::{CrashTestReport, MutantRun, Outcome};

/// Odd constant from SplitMix64's stream derivation; spreads consecutive
/// mutant ids into unrelated seeds.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration for one crash-test batch.
#[derive(Debug, Clone)]
pub struct CrashTest {
    /// How many mutants to generate across the workload set.
    pub mutants: usize,
    /// Batch seed; the same seed reproduces every mutant exactly.
    pub seed: u64,
    /// Sandbox limits for both the ground-truth and the cured run.
    pub limits: Limits,
    /// Execution engine for both runs (the differential suite holds the
    /// two engines to identical verdicts, so the default VM is safe here).
    pub engine: Engine,
    /// Rotates the round-robin fault-class preference: mutant `id` prefers
    /// class `(id + class_offset) % NCLASSES`. Campaigns that seed only a
    /// couple of mutants per unit vary this per unit so the whole matrix
    /// still covers every class.
    pub class_offset: usize,
    /// Cure mutants with temporal lock-and-key checks (`--temporal`): a
    /// premature `free` flips from Masked (GC keeps the bytes alive) to
    /// Caught (the next dereference fails its `CHECK_TEMPORAL`).
    pub temporal: bool,
}

impl CrashTest {
    /// A batch of `mutants` mutants from `seed`, with limits tight enough
    /// that a runaway mutant (e.g. a weakened loop bound spinning forever)
    /// exhausts its fuel in well under a second.
    pub fn new(mutants: usize, seed: u64) -> Self {
        CrashTest {
            mutants,
            seed,
            limits: Limits {
                fuel: 2_000_000,
                max_stack_depth: 96,
                max_heap_bytes: 32 << 20,
                deadline: None,
            },
            engine: Engine::default(),
            class_offset: 0,
            temporal: false,
        }
    }

    /// Replaces the sandbox limits (e.g. for larger workloads).
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Selects the execution engine (`tree` is the reference oracle).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Rotates the class-preference cycle (see [`CrashTest::class_offset`]).
    pub fn with_class_offset(mut self, offset: usize) -> Self {
        self.class_offset = offset;
        self
    }

    /// Enables temporal lock-and-key checking on the cure and the cured run
    /// (see [`CrashTest::temporal`]).
    pub fn with_temporal(mut self, on: bool) -> Self {
        self.temporal = on;
        self
    }
}

/// Runs a crash-test batch over `ws`, cycling mutants through the fault
/// classes and workloads round-robin.
///
/// # Errors
///
/// Frontend errors lowering a *pristine* workload only — per-mutant
/// failures (cure errors, panics, runs) are recorded in the report, never
/// propagated.
///
/// # Panics
///
/// Panics if `ws` is empty.
pub fn crash_test(ws: &[Workload], cfg: &CrashTest) -> Result<CrashTestReport, CureError> {
    assert!(!ws.is_empty(), "crash_test needs at least one workload");
    let mut bases = Vec::with_capacity(ws.len());
    for w in ws {
        bases.push((w.name.clone(), w.input.clone(), lower(w)?));
    }

    let ncls = FaultClass::ALL.len();
    let mut runs = Vec::with_capacity(cfg.mutants);
    for id in 0..cfg.mutants {
        let mut rng = SplitMix64::new(cfg.seed ^ (id as u64).wrapping_mul(GOLDEN));
        let (wname, input, base) = &bases[(id / ncls) % bases.len()];
        let pref = (id + cfg.class_offset) % ncls;

        // Prefer the round-robin class; when the program offers no site for
        // it (surgical operators can come up empty), fall through the other
        // classes in order. Synthetic classes always apply, so a program
        // with a `main` never yields an unseedable mutant.
        let mut seeded = None;
        for k in 0..ncls {
            let class = FaultClass::ALL[(pref + k) % ncls];
            let mut prog = base.clone();
            if let Some(m) = mutate(&mut prog, class, &mut rng) {
                seeded = Some((m, prog));
                break;
            }
        }
        let Some((mutation, prog)) = seeded else {
            runs.push(MutantRun {
                id,
                workload: wname.clone(),
                class: FaultClass::ALL[pref],
                description: "no candidate site in any fault class".into(),
                outcome: Outcome::Invalid,
                ground_truth: "not run".into(),
                gt_memory_error: false,
                cured: "not run".into(),
                uaf_traps: 0,
            });
            continue;
        };

        // Ground truth: plain C semantics, no zeroing allocator, no
        // temporal keys.
        let (gt, _) = run_prog(
            &prog,
            ExecMode::Original,
            cfg.engine,
            input,
            cfg.limits,
            false,
            false,
        );
        let gt_memory_error = matches!(&gt, Ok(Err(e)) if e.is_memory_error());

        // Cure (isolated: a curer panic becomes CureError::Internal), then
        // run the cured program with the zeroing allocator on.
        let temporal = cfg.temporal;
        let cured = isolated(move || Curer::new().temporal(temporal).cure_program(prog));
        let (outcome, cured_str, uaf_traps) = match &cured {
            Err(e) => (Outcome::Invalid, format!("cure failed: {e}"), 0),
            Ok(c) => {
                let (r, traps) = run_prog(
                    &c.program,
                    ExecMode::cured(c),
                    cfg.engine,
                    input,
                    cfg.limits,
                    true,
                    c.temporal,
                );
                (classify(&r), fmt_run(&r), traps)
            }
        };

        runs.push(MutantRun {
            id,
            workload: wname.clone(),
            class: mutation.class,
            description: mutation.description,
            outcome,
            ground_truth: fmt_run(&gt),
            gt_memory_error,
            cured: cured_str,
            uaf_traps,
        });
    }
    Ok(CrashTestReport {
        seed: cfg.seed,
        runs,
    })
}

/// Crash-tests a single C source (the CLI entry point). Stdlib wrappers are
/// prepended, matching how `ccured run` treats input files.
///
/// # Errors
///
/// Frontend errors lowering the pristine source.
pub fn crash_test_source(
    name: &str,
    source: &str,
    input: &[u8],
    cfg: &CrashTest,
) -> Result<CrashTestReport, CureError> {
    let w = Workload::new(name, source).with_input(input.to_vec());
    crash_test(&[w], cfg)
}

/// Lowers a workload to pre-cure CIL, with the stdlib wrapper prelude when
/// the workload asks for it (mirrors the runner in `ccured-workloads`, which
/// keeps its version private).
fn lower(w: &Workload) -> Result<Program, CureError> {
    let full = if w.with_wrappers {
        format!(
            "{}\n{}",
            ccured::wrappers::stdlib_wrapper_source(),
            w.source
        )
    } else {
        w.source.clone()
    };
    let tu = ccured_ast::parse_translation_unit(&full).map_err(CureError::Frontend)?;
    ccured_cil::lower_translation_unit(&tu).map_err(CureError::Frontend)
}

/// One sandboxed interpreter run, returning the result and the machine's
/// ground-truth dead-memory trap count (the temporal experiments assert it
/// stays zero: a `CHECK_TEMPORAL` must fire *before* the abstract machine
/// would have trapped). The outer `Err` is a panic payload — the hardened
/// interpreter should never produce one, and the harness records it as
/// [`Outcome::Invalid`] rather than crashing the batch.
#[allow(clippy::too_many_arguments)]
fn run_prog(
    prog: &Program,
    mode: ExecMode<'_>,
    engine: Engine,
    input: &[u8],
    limits: Limits,
    zero_init: bool,
    temporal: bool,
) -> (Result<Result<i64, RtError>, String>, u64) {
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut interp = Interp::new(prog, mode);
        interp.set_engine(engine);
        interp.set_limits(limits);
        interp.set_zero_init(zero_init);
        interp.set_temporal(temporal);
        interp.set_input(input.to_vec());
        let res = interp.run();
        (res, interp.uaf_traps())
    }));
    match r {
        Ok((res, traps)) => (Ok(res), traps),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            (Err(msg), 0)
        }
    }
}

/// The verdict, from the cured run alone.
fn classify(cured: &Result<Result<i64, RtError>, String>) -> Outcome {
    match cured {
        Err(_) => Outcome::Invalid,
        Ok(Err(RtError::CheckFailed { .. })) => Outcome::Caught,
        Ok(Err(e)) if e.is_memory_error() => Outcome::Escaped,
        Ok(Err(e)) if e.is_resource_limit() => Outcome::ResourceExhausted,
        Ok(Err(RtError::Internal(_) | RtError::Unsupported(_))) => Outcome::Invalid,
        Ok(_) => Outcome::Masked,
    }
}

/// Renders a run result for the report.
fn fmt_run(r: &Result<Result<i64, RtError>, String>) -> String {
    match r {
        Ok(Ok(code)) => format!("exit {code}"),
        Ok(Err(e)) => e.to_string(),
        Err(p) => format!("panic: {p}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccured_workloads::micro;

    #[test]
    fn batch_has_no_escapes_and_is_deterministic() {
        let ws = [micro::seq_index(8), micro::ptr_store(4)];
        let cfg = CrashTest::new(24, 7);
        let a = crash_test(&ws, &cfg).expect("lower");
        assert_eq!(a.runs.len(), 24);
        assert!(a.escaped().is_empty(), "escapes:\n{}", a.render());
        let b = crash_test(&ws, &cfg).expect("lower");
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.class, y.class, "#{}", x.id);
            assert_eq!(x.description, y.description, "#{}", x.id);
            assert_eq!(x.outcome, y.outcome, "#{}", x.id);
            assert_eq!(x.cured, y.cured, "#{}", x.id);
        }
    }

    #[test]
    fn synthetic_classes_are_caught_or_neutralized() {
        let ws = [micro::safe_deref(4)];
        let rep = crash_test(&ws, &CrashTest::new(18, 3)).expect("lower");
        assert!(rep.escaped().is_empty(), "{}", rep.render());
        // Synthetic injectors always apply, so three rounds of the class
        // rotation must surface all three of them.
        for class in [
            FaultClass::BadDowncast,
            FaultClass::PrematureFree,
            FaultClass::PtrSmuggle,
        ] {
            assert!(
                rep.classes_present().contains(&class),
                "missing {class}:\n{}",
                rep.render()
            );
        }
    }

    #[test]
    fn temporal_flips_premature_free_from_masked_to_caught() {
        // The acceptance bar of the temporal experiment: without keys the
        // GC-backed `free` masks every premature free; with `--temporal`
        // every one of those mutants is Caught by an *emitted check* —
        // the abstract machine's own dead-memory trap never fires.
        let ws = [micro::safe_deref(4)];
        let plain = crash_test(&ws, &CrashTest::new(30, 5)).expect("lower");
        let cured = crash_test(&ws, &CrashTest::new(30, 5).with_temporal(true)).expect("lower");
        assert!(plain.escaped().is_empty(), "{}", plain.render());
        assert!(cured.escaped().is_empty(), "{}", cured.render());
        // Only mutants whose fault actually executed can flip: an injector
        // is free to plant the triple after `return`, and dead code stays
        // Masked under any check regime. `gt_memory_error` is the
        // discriminator — plain C semantics faulted, so the free ran.
        let reached = |rep: &CrashTestReport, outcome| {
            rep.runs
                .iter()
                .filter(|r| {
                    r.class == FaultClass::PrematureFree
                        && r.gt_memory_error
                        && r.outcome == outcome
                })
                .count()
        };
        let masked_before = reached(&plain, Outcome::Masked);
        assert!(masked_before > 0, "{}", plain.render());
        assert_eq!(
            reached(&cured, Outcome::Masked),
            0,
            "temporal checks must not leave a reached premature free masked:\n{}",
            cured.render()
        );
        assert_eq!(
            reached(&cured, Outcome::Caught),
            masked_before,
            "{}",
            cured.render()
        );
        for r in &cured.runs {
            assert_eq!(
                r.uaf_traps, 0,
                "mutant #{} reached the machine's dead-memory trap before \
                 any emitted check fired:\n{}",
                r.id, r.cured
            );
        }
        // The checks blame the free, not the machine: every caught
        // premature-free verdict is a temporal check failure.
        for r in &cured.runs {
            if r.class == FaultClass::PrematureFree && r.outcome == Outcome::Caught {
                assert!(r.cured.contains("temporal"), "#{}: {}", r.id, r.cured);
            }
        }
    }

    #[test]
    fn temporal_batch_is_engine_independent() {
        let ws = [micro::seq_index(8), micro::safe_deref(4)];
        let cfg = CrashTest::new(20, 13).with_temporal(true);
        let vm = crash_test(&ws, &cfg).expect("lower");
        let tree = crash_test(&ws, &cfg.clone().with_engine(Engine::Tree)).expect("lower");
        for (x, y) in vm.runs.iter().zip(&tree.runs) {
            assert_eq!(x.outcome, y.outcome, "#{}", x.id);
            assert_eq!(x.cured, y.cured, "#{}", x.id);
            assert_eq!(x.uaf_traps, y.uaf_traps, "#{}", x.id);
        }
    }

    #[test]
    fn off_by_one_mutants_are_caught_on_seq_workload() {
        // seq_index walks an array behind a SEQ pointer; a weakened bound
        // or bumped index must trip the bounds check, not escape.
        let ws = [micro::seq_index(8)];
        let rep = crash_test(&ws, &CrashTest::new(12, 11)).expect("lower");
        assert!(rep.escaped().is_empty(), "{}", rep.render());
        let caught = rep.count(FaultClass::OffByOne, Outcome::Caught);
        let masked = rep.count(FaultClass::OffByOne, Outcome::Masked);
        let limit = rep.count(FaultClass::OffByOne, Outcome::ResourceExhausted);
        assert!(
            caught + masked + limit > 0,
            "no off-by-one mutants reached a verdict:\n{}",
            rep.render()
        );
    }
}
