//! # ccured-faultinject
//!
//! A deterministic fault-injection crash-test harness: the adversarial
//! complement to the soundness property tests. It seeds classic C
//! memory-safety faults into lowered (pre-cure) CIL programs, cures each
//! mutant, and runs it under the hardened interpreter, verifying that every
//! injected fault is either **caught** by a CCured run-time check,
//! **neutralized** by the cured semantics (the GC-backed `free`, the zeroing
//! allocator), or **masked** (never triggered) — and never **escapes** as a
//! raw memory error, which would be a soundness bug in the cure.
//!
//! The fault classes mirror the bug taxonomy of the paper's evaluation
//! (Section 5's ftpd/bind/sendmail bugs and the Figure 2 downcast idiom):
//!
//! | class | seeded fault | expected cured outcome |
//! |---|---|---|
//! | `off_by_one` | `<` weakened to `<=`, or `[i]` bumped to `[i+1]` | bounds check fails |
//! | `null_guard` | null guard dropped / pointer nulled | null check fails |
//! | `bad_downcast` | struct downcast to a wider type | RTTI/WILD check fails |
//! | `premature_free` | `free` before last use | neutralized (GC `free` no-op) |
//! | `uninit_read` | an initializing store deleted | neutralized (zeroing allocator) |
//! | `ptr_smuggle` | integer smuggled into a pointer | WILD/null check fails |
//!
//! Everything is seeded: mutant `i` of seed `s` is reproduced exactly by
//! re-running with the same seed, making every reported escape a one-line
//! repro.
//!
//! # Examples
//!
//! ```
//! use ccured_faultinject::{crash_test, CrashTest};
//! use ccured_workloads::micro;
//!
//! let report = crash_test(&[micro::seq_index(8)], &CrashTest::new(12, 42)).unwrap();
//! assert_eq!(report.runs.len(), 12);
//! assert!(report.escaped().is_empty(), "{}", report.render());
//! ```

pub mod harness;
pub mod mutate;
pub mod report;

pub use harness::{crash_test, CrashTest};
pub use mutate::{mutate, FaultClass, Mutation};
pub use report::{CrashTestReport, MutantRun, Outcome};
