//! The mutation engine: seeds one memory-safety fault into a lowered
//! (pre-cure) CIL program.
//!
//! Two families of operators:
//!
//! * **Surgical** operators mutate IR the program already has: weakening a
//!   comparison, bumping an array index, dropping a null guard, nulling a
//!   pointer assignment, deleting an initializing store. They return `None`
//!   when the program has no candidate site.
//! * **Synthetic** operators inject a short self-contained faulty snippet
//!   into `main` at a seeded position: a bad struct downcast, a
//!   malloc/free/use triple, an integer smuggled into a pointer. They apply
//!   to any program with a `main`.
//!
//! All randomness comes from the caller's [`SplitMix64`], so a `(seed,
//! mutant-index)` pair reproduces the exact mutation.

use ccured_ast::Span;
use ccured_cil::ir::*;
use ccured_cil::types::{FuncSig, IntKind, TypeId, TypeTable};
use ccured_workloads::prng::SplitMix64;

/// The classes of memory-safety faults the harness can seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A loop/array bound weakened by one (`<` → `<=`, or `[i]` → `[i+1]`).
    OffByOne,
    /// A null guard dropped, or a pointer assignment replaced with null.
    NullGuard,
    /// A struct pointer downcast to a physically wider type, then used.
    BadDowncast,
    /// Heap memory freed before its last use.
    PrematureFree,
    /// An initializing store deleted, leaving a later read uninitialized.
    UninitRead,
    /// An integer value smuggled into a pointer and dereferenced.
    PtrSmuggle,
}

impl FaultClass {
    /// Every fault class, in the round-robin order the harness uses.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::OffByOne,
        FaultClass::NullGuard,
        FaultClass::BadDowncast,
        FaultClass::PrematureFree,
        FaultClass::UninitRead,
        FaultClass::PtrSmuggle,
    ];

    /// Stable snake_case name (report rows, JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::OffByOne => "off_by_one",
            FaultClass::NullGuard => "null_guard",
            FaultClass::BadDowncast => "bad_downcast",
            FaultClass::PrematureFree => "premature_free",
            FaultClass::UninitRead => "uninit_read",
            FaultClass::PtrSmuggle => "ptr_smuggle",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fault successfully seeded into a program.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// The class of the seeded fault.
    pub class: FaultClass,
    /// Human-readable description of what was changed, and where.
    pub description: String,
}

/// Seeds one fault of `class` into `prog`, choosing among candidate sites
/// with `rng`. Returns `None` when the program offers no site for this
/// class (synthetic classes only fail when there is no `main`).
pub fn mutate(prog: &mut Program, class: FaultClass, rng: &mut SplitMix64) -> Option<Mutation> {
    let description = match class {
        FaultClass::OffByOne => surgical(prog, Op::OffByOne, rng),
        FaultClass::NullGuard => surgical(prog, Op::NullGuard, rng),
        FaultClass::UninitRead => surgical(prog, Op::DropInit, rng),
        FaultClass::BadDowncast => inject_bad_downcast(prog, rng),
        FaultClass::PrematureFree => inject_premature_free(prog, rng),
        FaultClass::PtrSmuggle => inject_ptr_smuggle(prog, rng),
    }?;
    Some(Mutation { class, description })
}

// ------------------------------------------------------- surgical operators

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    OffByOne,
    NullGuard,
    DropInit,
}

/// Per-function context threaded through the walk (avoids borrowing the
/// function mutably and immutably at once).
struct Cx<'f> {
    fname: &'f str,
    locals: &'f [Local],
}

/// Two-pass site picker: pass 1 (`target == None`) counts candidate sites
/// without touching anything; pass 2 applies the mutation at the chosen
/// index. Both passes run the same walk, so the site numbering is identical.
struct Surgeon<'a> {
    op: Op,
    types: &'a TypeTable,
    casts: &'a mut Vec<CastSite>,
    int_ty: TypeId,
    seen: usize,
    target: Option<usize>,
    done: Option<String>,
}

fn surgical(prog: &mut Program, op: Op, rng: &mut SplitMix64) -> Option<String> {
    let int_ty = prog.types.mk_int(IntKind::Int);
    // Wrapper and trusted functions are the trusted computing base: the
    // curer deliberately does not check their bodies, so a fault seeded
    // there says nothing about the soundness of the cure. Skip them.
    let excluded: std::collections::HashSet<String> = prog
        .pragmas
        .iter()
        .filter_map(|p| match p {
            CcuredPragma::WrapperOf { wrapper, .. } => Some(wrapper.clone()),
            CcuredPragma::TrustedFn(name) => Some(name.clone()),
            _ => None,
        })
        .collect();
    let Program {
        types,
        casts,
        functions,
        ..
    } = prog;
    let mut s = Surgeon {
        op,
        types,
        casts,
        int_ty,
        seen: 0,
        target: None,
        done: None,
    };
    for f in functions.iter_mut().filter(|f| !excluded.contains(&f.name)) {
        s.walk_function(f);
    }
    if s.seen == 0 {
        return None;
    }
    s.target = Some(rng.below(s.seen as u64) as usize);
    s.seen = 0;
    for f in functions.iter_mut().filter(|f| !excluded.contains(&f.name)) {
        s.walk_function(f);
        if s.done.is_some() {
            break;
        }
    }
    s.done.take()
}

impl Surgeon<'_> {
    /// Increments the site counter; true exactly when this site is the
    /// apply-pass target.
    fn claim(&mut self) -> bool {
        let mine = self.target == Some(self.seen);
        self.seen += 1;
        mine
    }

    fn walk_function(&mut self, f: &mut Function) {
        let Function {
            name, locals, body, ..
        } = f;
        let cx = Cx {
            fname: name,
            locals,
        };
        for s in body.iter_mut() {
            self.walk_stmt(s, &cx);
        }
    }

    fn walk_stmt(&mut self, s: &mut Stmt, cx: &Cx<'_>) {
        if self.done.is_some() {
            return;
        }
        match s {
            Stmt::Instr(is) => {
                if self.op == Op::DropInit {
                    self.drop_init_in(is, cx);
                } else {
                    for i in is {
                        self.walk_instr(i, cx);
                    }
                }
            }
            Stmt::If(c, t, e) => {
                if self.op == Op::NullGuard {
                    if let Some(force) = self.guard_polarity(c) {
                        if self.claim() {
                            *c = Exp::int(i128::from(force), IntKind::Int, self.int_ty);
                            self.done = Some(format!(
                                "{}: null guard forced {}",
                                cx.fname,
                                if force { "through" } else { "around" }
                            ));
                            return;
                        }
                    }
                }
                self.walk_exp(c, cx);
                for st in t.iter_mut().chain(e.iter_mut()) {
                    self.walk_stmt(st, cx);
                }
            }
            Stmt::Loop(b) | Stmt::Block(b) => {
                for st in b {
                    self.walk_stmt(st, cx);
                }
            }
            Stmt::Return(Some(e)) => self.walk_exp(e, cx),
            Stmt::Switch(e, arms) => {
                self.walk_exp(e, cx);
                for a in arms {
                    for st in &mut a.body {
                        self.walk_stmt(st, cx);
                    }
                }
            }
            _ => {}
        }
    }

    /// `DropInit`: a candidate is a whole-variable store to a named
    /// (non-temporary, non-parameter) local — the shape of `x = init;`.
    fn drop_init_in(&mut self, is: &mut Vec<Instr>, cx: &Cx<'_>) {
        for idx in 0..is.len() {
            let Instr::Set(lv, _, _) = &is[idx] else {
                continue;
            };
            if !lv.offsets.is_empty() {
                continue;
            }
            let LvBase::Local(l) = lv.base else {
                continue;
            };
            let loc = &cx.locals[l.idx()];
            if loc.is_temp || loc.is_param {
                continue;
            }
            if self.claim() {
                self.done = Some(format!(
                    "{}: deleted initialization of `{}`",
                    cx.fname, loc.name
                ));
                is.remove(idx);
                return;
            }
        }
    }

    /// Recognizes a null-guard condition and returns the constant that
    /// *drops* the guard: `if (p)` / `if (p != 0)` forced true executes the
    /// guarded use even when `p` is null; `if (!p)` / `if (p == 0)` forced
    /// false skips the bail-out branch.
    fn guard_polarity(&self, c: &Exp) -> Option<bool> {
        let is_null_const = |e: &Exp| e.is_zero() || matches!(e, Exp::Cast(_, x, _) if x.is_zero());
        match c {
            Exp::Load(_, t) if self.types.is_ptr(*t) => Some(true),
            Exp::Unop(UnOp::Not, x, _) if self.types.is_ptr(x.ty()) => Some(false),
            Exp::Binop(op @ (BinOp::Eq | BinOp::Ne), a, b, _)
                if (self.types.is_ptr(a.ty()) && is_null_const(b))
                    || (self.types.is_ptr(b.ty()) && is_null_const(a)) =>
            {
                Some(*op == BinOp::Ne)
            }
            _ => None,
        }
    }

    fn walk_instr(&mut self, i: &mut Instr, cx: &Cx<'_>) {
        if self.done.is_some() {
            return;
        }
        match i {
            Instr::Set(lv, e, span) => {
                if self.op == Op::NullGuard
                    && self.types.is_ptr(e.ty())
                    && !e.is_zero()
                    && self.claim()
                {
                    let to = e.ty();
                    let cid = CastId(self.casts.len() as u32);
                    self.casts.push(CastSite {
                        from: self.int_ty,
                        to,
                        trusted: false,
                        implicit: true,
                        from_zero: true,
                        alloc: false,
                        span: *span,
                    });
                    *e = Exp::Cast(cid, Box::new(Exp::int(0, IntKind::Int, self.int_ty)), to);
                    self.done = Some(format!("{}: pointer assignment nulled", cx.fname));
                    return;
                }
                self.walk_lval(lv, cx);
                self.walk_exp(e, cx);
            }
            Instr::Call(ret, callee, args, _) => {
                if let Some(lv) = ret {
                    self.walk_lval(lv, cx);
                }
                if let Callee::Ptr(e) = callee {
                    self.walk_exp(e, cx);
                }
                for a in args {
                    self.walk_exp(a, cx);
                }
            }
            Instr::Check(..) => {}
        }
    }

    fn walk_lval(&mut self, lv: &mut Lval, cx: &Cx<'_>) {
        if self.done.is_some() {
            return;
        }
        if let LvBase::Deref(e) = &mut lv.base {
            self.walk_exp(e, cx);
        }
        for off in &mut lv.offsets {
            let Offset::Index(ie) = off else { continue };
            if self.op == Op::OffByOne && self.claim() {
                let t = ie.ty();
                let bumped = Exp::Binop(
                    BinOp::Add,
                    Box::new(ie.clone()),
                    Box::new(Exp::int(1, IntKind::Int, t)),
                    t,
                );
                *ie = bumped;
                self.done = Some(format!(
                    "{}: array index incremented past the end",
                    cx.fname
                ));
                return;
            }
            self.walk_exp(ie, cx);
        }
    }

    fn walk_exp(&mut self, e: &mut Exp, cx: &Cx<'_>) {
        if self.done.is_some() {
            return;
        }
        if self.op == Op::OffByOne {
            if let Exp::Binop(bop @ (BinOp::Lt | BinOp::Gt), a, _, _) = e {
                if self.types.is_integer(a.ty()) && self.claim() {
                    let (old, new) = match bop {
                        BinOp::Lt => ("<", "<="),
                        _ => (">", ">="),
                    };
                    *bop = if *bop == BinOp::Lt {
                        BinOp::Le
                    } else {
                        BinOp::Ge
                    };
                    self.done = Some(format!(
                        "{}: comparison `{old}` weakened to `{new}`",
                        cx.fname
                    ));
                    return;
                }
            }
        }
        match e {
            Exp::Load(lv, _) | Exp::AddrOf(lv, _) | Exp::StartOf(lv, _) => self.walk_lval(lv, cx),
            Exp::Unop(_, x, _) | Exp::Cast(_, x, _) => self.walk_exp(x, cx),
            Exp::Binop(_, a, b, _) => {
                self.walk_exp(a, cx);
                self.walk_exp(b, cx);
            }
            Exp::Const(..) | Exp::FnAddr(..) | Exp::SizeOf(..) => {}
        }
    }
}

// ------------------------------------------------------ synthetic operators

/// Adds a named, non-temporary local to `f` and returns its id.
fn add_local(f: &mut Function, name: &str, ty: TypeId, q: ccured_cil::types::QualId) -> LocalId {
    let id = LocalId(f.locals.len() as u32);
    f.locals.push(Local {
        name: name.to_string(),
        ty,
        addr_qual: q,
        is_param: false,
        is_temp: false,
    });
    id
}

/// Inserts `stmt` at a seeded position in the top-level body of `main`
/// (statement boundaries are always safe insertion points in this IR).
fn insert_in_main(prog: &mut Program, rng: &mut SplitMix64, stmt: Stmt) -> Option<usize> {
    let mi = prog.find_function("main")?.idx();
    let body = &mut prog.functions[mi].body;
    let pos = rng.below(body.len() as u64 + 1) as usize;
    body.insert(pos, stmt);
    Some(pos)
}

fn load(lv: Lval, ty: TypeId) -> Exp {
    Exp::Load(Box::new(lv), ty)
}

/// Figure 2's unsound idiom: take a `Small*` to a `Small`, downcast it to a
/// physically wider `Big*`, and write the field beyond the common prefix.
/// Cured, the RTTI (or WILD bounds) check fails; original, the write lands
/// out of bounds.
fn inject_bad_downcast(prog: &mut Program, rng: &mut SplitMix64) -> Option<String> {
    let mi = prog.find_function("main")?.idx();
    let int_ty = prog.types.mk_int(IntKind::Int);
    let cs = prog.types.declare_comp("__fi_small", false);
    let q = prog.types.fresh_qual();
    prog.types
        .define_comp(cs, vec![("a".to_string(), int_ty, q)])
        .ok()?;
    let cb = prog.types.declare_comp("__fi_big", false);
    let (qa, qb) = (prog.types.fresh_qual(), prog.types.fresh_qual());
    prog.types
        .define_comp(
            cb,
            vec![("a".to_string(), int_ty, qa), ("b".to_string(), int_ty, qb)],
        )
        .ok()?;
    let small_t = prog.types.mk_comp(cs);
    let big_t = prog.types.mk_comp(cb);
    let sp_t = prog.types.mk_ptr(small_t);
    let bp_t = prog.types.mk_ptr(big_t);
    let (qs, qsp, qbp) = (
        prog.types.fresh_qual(),
        prog.types.fresh_qual(),
        prog.types.fresh_qual(),
    );

    let f = &mut prog.functions[mi];
    let s = add_local(f, "__fi_s", small_t, qs);
    let sp = add_local(f, "__fi_sp", sp_t, qsp);
    let bp = add_local(f, "__fi_bp", bp_t, qbp);

    let cid = CastId(prog.casts.len() as u32);
    prog.casts.push(CastSite {
        from: sp_t,
        to: bp_t,
        trusted: false,
        implicit: false,
        from_zero: false,
        alloc: false,
        span: Span::DUMMY,
    });

    let sp_lv = Lval::local(sp);
    let s_field_a = Lval {
        base: LvBase::Local(s),
        offsets: vec![Offset::Field(cs, 0)],
    };
    let big_field_b = Lval {
        base: LvBase::Deref(Box::new(load(Lval::local(bp), bp_t))),
        offsets: vec![Offset::Field(cb, 1)],
    };
    let stmt = Stmt::Instr(vec![
        Instr::Set(s_field_a, Exp::int(0, IntKind::Int, int_ty), Span::DUMMY),
        Instr::Set(
            sp_lv.clone(),
            Exp::AddrOf(Box::new(Lval::local(s)), sp_t),
            Span::DUMMY,
        ),
        Instr::Set(
            Lval::local(bp),
            Exp::Cast(cid, Box::new(load(sp_lv, sp_t)), bp_t),
            Span::DUMMY,
        ),
        Instr::Set(big_field_b, Exp::int(1, IntKind::Int, int_ty), Span::DUMMY),
    ]);
    let pos = insert_in_main(prog, rng, stmt)?;
    Some(format!(
        "main: injected Small*→Big* downcast and wrote past the prefix (stmt {pos})"
    ))
}

/// The use-after-free triple: `p = malloc(..); free(p); *p = ..;`. Original
/// semantics fault with a use-after-free; the cured runtime's GC-backed
/// `free` is a no-op, neutralizing the fault by construction.
fn inject_premature_free(prog: &mut Program, rng: &mut SplitMix64) -> Option<String> {
    let mi = prog.find_function("main")?.idx();
    let int_ty = prog.types.mk_int(IntKind::Int);
    let ulong_ty = prog.types.mk_int(IntKind::ULong);
    let void_ty = prog.types.mk_void();
    let voidp_t = prog.types.mk_ptr(void_ty);
    let intp_t = prog.types.mk_ptr(int_ty);
    let malloc_ty = {
        let sig = FuncSig {
            ret: voidp_t,
            params: vec![ulong_ty],
            varargs: false,
        };
        prog.types.mk_func(sig)
    };
    let free_ty = {
        let sig = FuncSig {
            ret: void_ty,
            params: vec![voidp_t],
            varargs: false,
        };
        prog.types.mk_func(sig)
    };
    let malloc_id = prog.find_external("malloc").unwrap_or_else(|| {
        prog.externals.push(ExternDecl {
            name: "malloc".to_string(),
            ty: malloc_ty,
            span: Span::DUMMY,
        });
        ExternId(prog.externals.len() as u32 - 1)
    });
    let free_id = prog.find_external("free").unwrap_or_else(|| {
        prog.externals.push(ExternDecl {
            name: "free".to_string(),
            ty: free_ty,
            span: Span::DUMMY,
        });
        ExternId(prog.externals.len() as u32 - 1)
    });
    let (qv_q, q_q) = (prog.types.fresh_qual(), prog.types.fresh_qual());
    let f = &mut prog.functions[mi];
    let qv = add_local(f, "__fi_raw", voidp_t, qv_q);
    let q = add_local(f, "__fi_p", intp_t, q_q);

    let cid = CastId(prog.casts.len() as u32);
    prog.casts.push(CastSite {
        from: voidp_t,
        to: intp_t,
        trusted: false,
        implicit: false,
        from_zero: false,
        alloc: true,
        span: Span::DUMMY,
    });

    let stmt = Stmt::Instr(vec![
        Instr::Call(
            Some(Lval::local(qv)),
            Callee::Extern(malloc_id),
            vec![Exp::int(16, IntKind::ULong, ulong_ty)],
            Span::DUMMY,
        ),
        Instr::Set(
            Lval::local(q),
            Exp::Cast(cid, Box::new(load(Lval::local(qv), voidp_t)), intp_t),
            Span::DUMMY,
        ),
        Instr::Call(
            None,
            Callee::Extern(free_id),
            vec![load(Lval::local(qv), voidp_t)],
            Span::DUMMY,
        ),
        Instr::Set(
            Lval::deref(load(Lval::local(q), intp_t)),
            Exp::int(7, IntKind::Int, int_ty),
            Span::DUMMY,
        ),
    ]);
    let pos = insert_in_main(prog, rng, stmt)?;
    Some(format!(
        "main: injected malloc/free/store use-after-free triple (stmt {pos})"
    ))
}

/// Smuggles a plain integer into a pointer (`p = (int*)0x7EADBEEF; *p = ..`).
/// Cured, the pointer is a disguised integer that every check rejects;
/// original, the dereference is an invalid-pointer fault.
fn inject_ptr_smuggle(prog: &mut Program, rng: &mut SplitMix64) -> Option<String> {
    let mi = prog.find_function("main")?.idx();
    let int_ty = prog.types.mk_int(IntKind::Int);
    let intp_t = prog.types.mk_ptr(int_ty);
    let (qx, qp) = (prog.types.fresh_qual(), prog.types.fresh_qual());
    let f = &mut prog.functions[mi];
    let x = add_local(f, "__fi_x", int_ty, qx);
    let p = add_local(f, "__fi_q", intp_t, qp);

    let cid = CastId(prog.casts.len() as u32);
    prog.casts.push(CastSite {
        from: int_ty,
        to: intp_t,
        trusted: false,
        implicit: false,
        from_zero: false,
        alloc: false,
        span: Span::DUMMY,
    });

    let stmt = Stmt::Instr(vec![
        Instr::Set(
            Lval::local(x),
            Exp::int(0x7EAD_BEEF, IntKind::Int, int_ty),
            Span::DUMMY,
        ),
        Instr::Set(
            Lval::local(p),
            Exp::Cast(cid, Box::new(load(Lval::local(x), int_ty)), intp_t),
            Span::DUMMY,
        ),
        Instr::Set(
            Lval::deref(load(Lval::local(p), intp_t)),
            Exp::int(7, IntKind::Int, int_ty),
            Span::DUMMY,
        ),
    ]);
    let pos = insert_in_main(prog, rng, stmt)?;
    Some(format!(
        "main: injected integer→pointer smuggle and store (stmt {pos})"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower(src: &str) -> Program {
        let tu = ccured_ast::parse_translation_unit(src).unwrap();
        ccured_cil::lower_translation_unit(&tu).unwrap()
    }

    #[test]
    fn surgical_classes_find_sites_and_are_deterministic() {
        let src = "int main(void) {\n\
                     int a[4]; int x; int *p; x = 0; p = &x;\n\
                     for (int i = 0; i < 4; i++) a[i] = i;\n\
                     if (p) x = *p;\n\
                     return a[3] + x;\n\
                   }";
        for class in [
            FaultClass::OffByOne,
            FaultClass::NullGuard,
            FaultClass::UninitRead,
        ] {
            let mut p1 = lower(src);
            let m1 = mutate(&mut p1, class, &mut SplitMix64::new(7)).expect("site exists");
            let mut p2 = lower(src);
            let m2 = mutate(&mut p2, class, &mut SplitMix64::new(7)).unwrap();
            assert_eq!(m1.description, m2.description, "deterministic per seed");
            assert_eq!(m1.class, class);
        }
    }

    #[test]
    fn surgical_returns_none_without_sites() {
        let mut p = lower("int main(void) { return 0; }");
        assert!(mutate(&mut p, FaultClass::NullGuard, &mut SplitMix64::new(1)).is_none());
    }

    #[test]
    fn synthetic_classes_always_apply_with_main() {
        for class in [
            FaultClass::BadDowncast,
            FaultClass::PrematureFree,
            FaultClass::PtrSmuggle,
        ] {
            let mut p = lower("int main(void) { return 0; }");
            let funcs_before = p.functions[0].body.len();
            let m = mutate(&mut p, class, &mut SplitMix64::new(3)).expect("injectable");
            assert_eq!(m.class, class);
            assert_eq!(p.functions[0].body.len(), funcs_before + 1);
        }
        let mut no_main = lower("int f(void) { return 0; }");
        assert!(mutate(
            &mut no_main,
            FaultClass::PtrSmuggle,
            &mut SplitMix64::new(3)
        )
        .is_none());
    }
}
